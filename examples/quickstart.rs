//! Quickstart: simulate one Duplexity dyad against the baseline.
//!
//! Runs the McRouter microservice at 50% load on a plain out-of-order core
//! and on a Duplexity dyad, and prints the utilization and latency story the
//! paper tells: Duplexity fills the µs-scale holes with filler-thread work
//! while leaving the microservice's latency essentially untouched.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use duplexity::{Design, ServerSim, Workload};

fn main() {
    let workload = Workload::McRouter;
    let load = 0.5;
    println!(
        "Workload: {workload} (mean service {:.1}µs, {:.0}% of it µs-scale stall), load {:.0}%\n",
        workload.nominal_service_us(),
        workload.service_model().stall_fraction() * 100.0,
        load * 100.0
    );

    for design in [Design::Baseline, Design::Smt, Design::Duplexity] {
        let m = ServerSim::new(design, workload)
            .load(load)
            .horizon_cycles(3_000_000)
            .seed(42)
            .run();
        let mean_latency = m.mean_latency_us().unwrap_or(f64::NAN);
        println!("{design:>10}:");
        println!(
            "  master-core utilization : {:>6.1}%",
            m.utilization(4) * 100.0
        );
        println!("  master-thread ops       : {:>10}", m.master_retired);
        println!("  co-located batch ops    : {:>10}", m.colocated_retired);
        println!("  lender-core ops         : {:>10}", m.lender_retired);
        println!("  morphs                  : {:>10}", m.morphs);
        println!("  mean request latency    : {mean_latency:>8.2}µs");
        println!();
    }
    println!("Duplexity recovers the killer-microsecond holes (higher utilization)");
    println!("without the latency damage an SMT co-runner inflicts.");
}
