//! Capacity planning with Duplexity's analytic models.
//!
//! Answers three provisioning questions an operator would ask, using the
//! paper's own models:
//!
//! 1. How many virtual contexts does a dyad need for a given stall profile?
//!    (the Figure 2(b) binomial model, §III-A)
//! 2. How long are the idle holes my microservice will have at a given load?
//!    (the M/G/1 idle-period law, §II-A)
//! 3. How many dyads can share one InfiniBand port? (the §VIII NIC budget)
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use duplexity_net::NicModel;
use duplexity_queueing::mg1::{idle_period_cdf, mean_idle_period_us};
use duplexity_stats::binomial::required_virtual_contexts;

fn main() {
    println!("== Virtual-context provisioning (Fig 2(b) model) ==");
    println!("target: keep 8 physical contexts >=90% occupied\n");
    for stall_p in [0.1, 0.25, 0.5, 0.7] {
        match required_virtual_contexts(8, stall_p, 0.9, 128) {
            Some(n) => println!(
                "  threads stalled {:>3.0}% of the time -> {n} virtual contexts",
                stall_p * 100.0
            ),
            None => println!(
                "  threads stalled {:>3.0}% of the time -> not reachable",
                stall_p * 100.0
            ),
        }
    }

    println!("\n== Idle-period structure (M/G/1, §II-A) ==");
    for (qps, label) in [(200_000.0, "200K QPS"), (1_000_000.0, "1M QPS")] {
        for load in [0.3, 0.5, 0.7] {
            println!(
                "  {label} @ {:>2.0}% load: mean idle {:>5.1}µs, P(idle <= 5µs) = {:.2}",
                load * 100.0,
                mean_idle_period_us(qps, load),
                idle_period_cdf(qps, load, 5.0)
            );
        }
    }
    println!("  -> idle holes are microseconds long even when the server is half idle.");

    println!("\n== NIC budget (FDR 4x InfiniBand, §VIII) ==");
    let nic = NicModel::fdr_4x();
    for dyad_mops in [1.0, 3.0, 6.4] {
        let ops = dyad_mops * 1e6;
        println!(
            "  dyad issuing {dyad_mops:>4.1}M remote ops/s: {:>5.2}% of one port, {} dyads/port",
            nic.utilization(ops, 64.0) * 100.0,
            nic.sources_per_port(ops, 64.0)
        );
    }
    println!(
        "  single-cache-line traffic is IOPS-limited: {}",
        nic.iops_limited(64.0)
    );
}
