//! Chip scale: many dyads, one NIC, and the OS provisioning loop.
//!
//! Exercises the reproduction's §IV/§VIII extensions end to end:
//!
//! 1. simulate a Figure 4(c)-style chip of dyads in parallel and check the
//!    shared FDR 4× port's IOPS budget and queueing delay;
//! 2. size the virtual-context pool with the Figure 2(b) model;
//! 3. show the tail-at-scale amplification a mid-tier service would face if
//!    it fanned out to many leaves synchronously.
//!
//! ```text
//! cargo run --release --example chip_scale
//! ```

use duplexity::{recommend_contexts, ProvisionerConfig};
use duplexity::{simulate_chip, ChipConfig, Design, Workload};
use duplexity_queueing::fanout::{exponential_fanout_quantile, tail_amplification};

fn main() {
    println!("== A chip of dyads sharing one FDR 4x port (§VIII) ==\n");
    for dyads in [4, 8, 14] {
        let m = simulate_chip(&ChipConfig {
            dyads,
            horizon_cycles: 800_000,
            ..ChipConfig::paper_scale(Design::Duplexity, Workload::FlannLl)
        });
        println!(
            "{dyads:>3} dyads: mean util {:.1}%, batch {:.0} ops/µs, NIC {:>5.1}% \
             ({:.1}M ops/s), port queueing {:.3}µs",
            m.mean_utilization * 100.0,
            m.batch_ops_per_us,
            m.nic_utilization * 100.0,
            m.nic_ops_per_second / 1e6,
            m.nic_queueing_delay_us
        );
    }

    println!("\n== Provisioning the virtual-context pool (§IV + Fig 2(b)) ==\n");
    let cfg = ProvisionerConfig::default();
    for (profile, stall) in [
        ("compute-heavy batch (10% stalled)", 0.1),
        ("paper filler profile (~40% stalled)", 0.4),
        ("stall-dominated batch (60% stalled)", 0.6),
    ] {
        println!(
            "  {profile:<38} -> {} virtual contexts per core",
            recommend_contexts(stall, &cfg)
        );
    }

    println!("\n== Tail at scale: synchronous fan-out amplification ==\n");
    println!("p99 of max-of-k exponential leaf waits (1µs mean):");
    for k in [1usize, 10, 40, 100] {
        println!(
            "  k = {k:>3}: p99 = {:>5.2}µs ({:.2}x one leaf)",
            exponential_fanout_quantile(1.0, k, 0.99),
            tail_amplification(k)
        );
    }
    println!("\nWide synchronous fan-out amplifies leaf tails — one more reason");
    println!("mid-tier holes are µs-scale and worth filling rather than spinning.");
}
