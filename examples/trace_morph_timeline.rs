//! Observe one Duplexity dyad morphing in cycle-domain traces.
//!
//! A single dyad serves a bimodal service: most requests carry a short
//! (~1.5µs) remote stall, every fourth one a long (~10µs) stall. The long
//! stalls push the master-core past its morph threshold, so the trace shows
//! the paper's §IV sequence directly: the master-thread stalls, the core
//! **morphs in**, filler contexts are **borrowed** from the lender's run
//! queue, and on wakeup the core **morphs out** and evicts the fillers.
//!
//! ```text
//! cargo run --example trace_morph_timeline
//! ```
//!
//! The example asserts the morph-in → borrow → morph-out ordering in the
//! recorded events, prints an event census, and writes a Chrome
//! `trace_event` JSON file you can open in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use duplexity_cpu::op::{InstructionStream, LoopedTrace, MicroOp, Op, RequestKernel};
use duplexity_cpu::{run_design_traced, Design, Scenario};
use duplexity_obs::{chrome_trace_json, TraceEvent, Tracer};
use duplexity_stats::rng::SimRng;
use std::collections::BTreeMap;

/// ~0.05µs of compute, then a remote stall that is usually short (1.5µs)
/// and occasionally long (10µs) — the bimodal mix that makes morphing both
/// worthwhile and visible.
#[derive(Debug, Default)]
struct BimodalService {
    calls: u64,
}

impl RequestKernel for BimodalService {
    fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
        for i in 0..600u64 {
            out.push(MicroOp::new(0x4000 + i * 8, Op::IntAlu));
        }
        let latency_us = if self.calls.is_multiple_of(4) {
            10.0
        } else {
            1.5
        };
        self.calls += 1;
        out.push(MicroOp::new(0x9000, Op::RemoteLoad { latency_us }));
    }

    fn nominal_service_us(&self) -> f64 {
        // mean stall (10 + 3·1.5)/4 ≈ 3.6µs plus the compute leg.
        3.7
    }
}

fn main() {
    let tracer = Tracer::enabled(1 << 16, 1000.0);
    let scenario = Scenario {
        load: Some(0.5),
        service_us: 3.7,
        horizon_cycles: 2_000_000,
        seed: 7,
    };
    let batch = |id: usize| -> Box<dyn InstructionStream> {
        let base = 0x100_0000 * (id as u64 + 1);
        Box::new(LoopedTrace::new(
            (0..96)
                .map(|i| MicroOp::new(base + i * 8, Op::IntAlu))
                .collect(),
        ))
    };
    let metrics = run_design_traced(
        Design::Duplexity,
        &scenario,
        Box::new(BimodalService::default()),
        batch,
        &tracer,
    );
    let log = tracer.take();

    println!(
        "simulated {} cycles: {} morphs, {} master requests, {} trace events ({} dropped)",
        metrics.wall_cycles,
        metrics.morphs,
        metrics.request_latencies_us.len(),
        log.events.len(),
        log.dropped,
    );

    // Event census by name, in deterministic order.
    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    for ev in &log.events {
        *census.entry(ev.name()).or_default() += 1;
    }
    for (name, count) in &census {
        println!("  {name:<18} {count}");
    }

    // The §IV morph protocol must be observable in event order:
    // morph_in, then a filler borrow inside the window, then morph_out.
    let morph_in = log
        .events
        .iter()
        .position(|e| matches!(e, TraceEvent::MorphIn { .. }))
        .expect("the long stalls must trigger at least one morph");
    let borrow = log.events[morph_in..]
        .iter()
        .position(|e| matches!(e, TraceEvent::FillerBorrow { .. }))
        .map(|i| i + morph_in)
        .expect("a morphed master-core must borrow filler contexts");
    let morph_out = log.events[borrow..]
        .iter()
        .position(|e| matches!(e, TraceEvent::MorphOut { .. }))
        .map(|i| i + borrow)
        .expect("the master-thread's wakeup must morph the core back");
    println!(
        "morph protocol observed: morph_in @ event {morph_in} → filler_borrow @ {borrow} → morph_out @ {morph_out}"
    );
    assert!(metrics.morphs > 0);

    // Per-phase registry: native vs morphed cycle accounting.
    println!("\nregistry:");
    print!("{}", log.registry.to_json());

    // Export for chrome://tracing or ui.perfetto.dev, and prove it parses.
    let cells = vec![("duplexity-dyad".to_string(), log)];
    let json = chrome_trace_json(&cells);
    serde_json::parse_value(&json).expect("chrome trace JSON must parse");
    let path = std::env::temp_dir().join("trace_morph_timeline.json");
    std::fs::write(&path, &json).expect("write trace file");
    println!("\nwrote {} ({} bytes)", path.display(), json.len());
}
