//! Why SMT alone cannot hide killer microseconds (Figure 1(c) in miniature).
//!
//! Sweeps SMT thread count on a single 4-wide OoO core for the four FLANN
//! compute-to-stall variants. The no-stall baseline saturates around 8
//! threads; the stalled variants keep needing more threads and still never
//! recover the baseline's throughput — the observation that motivates HSMT
//! lender-cores.
//!
//! ```text
//! cargo run --release --example flann_smt_scaling
//! ```

use duplexity::experiments::fig1::{fig1c, peak_threads, FlannVariant};

fn main() {
    println!("FLANN throughput vs SMT thread count (normalized to the baseline peak)\n");
    let points = fig1c(16, 600_000, 42);

    print!("{:<14}", "threads");
    for t in 1..=16 {
        print!(" {t:>5}");
    }
    println!();
    for variant in FlannVariant::ALL {
        print!("{:<14}", variant.name());
        for t in 1..=16 {
            let p = points
                .iter()
                .find(|p| p.variant == variant && p.threads == t)
                .expect("full sweep");
            print!(" {:>5.2}", p.normalized);
        }
        println!();
    }

    println!();
    for variant in FlannVariant::ALL {
        if let Some(peak) = peak_threads(&points, variant) {
            println!("{:<14} peaks at {peak} threads", variant.name());
        }
    }
    println!("\nStalled variants demand more threads than any practical SMT core offers,");
    println!("and their peaks still trail the stall-free baseline (§II-B).");
}
