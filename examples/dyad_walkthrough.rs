//! Inside a dyad: drive the master-core/lender-core pair cycle by cycle.
//!
//! Uses the low-level `duplexity-cpu` API directly — building a Duplexity
//! dyad, attaching a microservice master-thread and 32 graph-analytics
//! virtual contexts, and stepping it — to show where the morphs happen, who
//! retires what, and why the master's caches stay clean.
//!
//! ```text
//! cargo run --release --example dyad_walkthrough
//! ```

use duplexity_cpu::dyad::{DyadConfig, DyadSim};
use duplexity_cpu::request::RequestStream;
use duplexity_stats::rng::rng_from_seed;
use duplexity_workloads::graph::FillerFactory;
use duplexity_workloads::Workload;

fn main() {
    let workload = Workload::Rsc; // 3µs lookup + 8µs Optane stall + 4µs copy
    let cfg = DyadConfig::duplexity();
    println!("Dyad walkthrough: {workload} on a Duplexity master/lender pair\n");
    println!(
        "morph-in {} cycles, resume penalty {} cycles, HSMT swap {} cycles\n",
        cfg.morph_in_cycles, cfg.morph_out_cycles, cfg.swap_latency
    );

    let master = RequestStream::open_loop(
        workload.kernel(1),
        0.5,
        workload.nominal_service_us(),
        cfg.machine.cycles_per_us(),
    );
    let mut dyad = DyadSim::new(cfg, Box::new(master));
    let fillers = FillerFactory::paper(1);
    for id in 0..32 {
        dyad.add_batch_thread(id, fillers.stream(id));
    }

    let mut rng = rng_from_seed(9);
    let checkpoints = 8;
    let step = 400_000u64;
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "cycle", "morphs", "master ops", "filler ops", "lender ops", "requests"
    );
    for i in 1..=checkpoints {
        dyad.run(i * step, &mut rng);
        let m = dyad.metrics();
        println!(
            "{:>10} {:>8} {:>12} {:>12} {:>12} {:>10}",
            dyad.now(),
            m.morphs,
            m.master_retired,
            m.filler_retired_on_master,
            m.lender_retired,
            m.request_latencies_cycles.len()
        );
    }

    let m = dyad.metrics();
    let util = m.master_core_utilization(4);
    let solo = m.master_retired as f64 / (m.wall_cycles as f64 * 4.0);
    println!(
        "\nmaster-core utilization {:.1}% (master-thread alone would be {:.1}%)",
        util * 100.0,
        solo * 100.0
    );
    println!(
        "filler mode occupied {:.1}% of wall-clock time across {} morphs",
        m.filler_mode_cycles as f64 / m.wall_cycles as f64 * 100.0,
        m.morphs
    );
    println!(
        "master L1 misses: {} — filler traffic went to the lender's caches",
        dyad.master_mem().l1_misses()
    );

    println!("\nfirst morph episodes (cause, trigger cycle, hole length):");
    for e in dyad.morph_log().iter().take(6) {
        println!(
            "  {:<6?} at t={:<9} ({:.2}µs hole)",
            e.cause,
            e.at,
            e.hole_cycles() as f64 / cfg.machine.cycles_per_us()
        );
    }
}
