//! Tail-latency study: McRouter p99 across designs and loads.
//!
//! Follows the paper's two-level methodology end to end: the cycle simulator
//! measures each design's service-time inflation, and a BigHouse-style
//! M/G/1 simulation turns that into 99th-percentile latencies at 30/50/70%
//! load — the Figure 5(d) story for one microservice.
//!
//! ```text
//! cargo run --release --example mcrouter_tail_latency
//! ```

use duplexity::experiments::fig5::{run_fig5, Fig5Options};
use duplexity::{Design, Workload};
use duplexity_queueing::des::Mg1Options;

fn main() {
    let opts = Fig5Options {
        loads: vec![0.3, 0.5, 0.7],
        workloads: vec![Workload::McRouter],
        designs: vec![
            Design::Baseline,
            Design::Smt,
            Design::SmtPlus,
            Design::Duplexity,
        ],
        horizon_cycles: 2_500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 400_000,
            ..Mg1Options::default()
        },
        ..Fig5Options::default()
    };
    println!("McRouter p99 latency (µs) by design and load:\n");
    let cells = run_fig5(&opts);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "design", "load", "p99 µs", "p99 norm", "iso-p99 norm", "slowdown"
    );
    for c in &cells {
        println!(
            "{:<12} {:>9.0}% {:>10.2} {:>10.2} {:>12.2} {:>10.2}",
            c.design.name(),
            c.load * 100.0,
            c.p99_us,
            c.p99_norm,
            c.iso_p99_norm,
            c.service_slowdown
        );
    }
    println!("\np99 norm < 1 means better than the baseline at the same load;");
    println!("iso-p99 norm compares at equal cost (load scaled by performance density).");
}
