//! SLO capacity: how much load fits inside a tail budget?
//!
//! Sweeps offered load for several designs on one microservice and reports
//! each design's p99-vs-load curve plus its *SLO capacity* — the highest
//! load whose 99th-percentile latency stays inside a budget. This is the
//! operator-facing inverse of the paper's fixed-load Figure 5(d).
//!
//! ```text
//! cargo run --release --example slo_capacity
//! ```

use duplexity::experiments::sweep::{latency_load_sweep, slo_capacity, SweepOptions};
use duplexity::{Design, Workload};

fn main() {
    let opts = SweepOptions {
        workload: Workload::McRouter,
        designs: vec![
            Design::Baseline,
            Design::Smt,
            Design::SmtPlus,
            Design::Duplexity,
        ],
        ..SweepOptions::default()
    };
    println!(
        "p99 (µs) vs offered load for {} ({} loads swept)\n",
        opts.workload,
        opts.loads.len()
    );
    let points = latency_load_sweep(&opts);

    print!("{:<12}", "load");
    for &l in &opts.loads {
        if ((l * 100.0) as u32).is_multiple_of(10) {
            print!(" {:>6.0}%", l * 100.0);
        }
    }
    println!();
    for &design in &opts.designs {
        print!("{:<12}", design.name());
        for &l in &opts.loads {
            if !((l * 100.0) as u32).is_multiple_of(10) {
                continue;
            }
            let p = points
                .iter()
                .find(|p| p.design == design && (p.load - l).abs() < 1e-9)
                .expect("swept point");
            if p.saturated {
                print!(" {:>7}", "sat");
            } else {
                print!(" {:>7.1}", p.p99_us);
            }
        }
        println!();
    }

    let budget = 40.0;
    println!("\nSLO capacity at a {budget}µs p99 budget:");
    for &design in &opts.designs {
        match slo_capacity(&points, design, budget) {
            Some(cap) => println!(
                "  {:<12} sustains {:>3.0}% load",
                design.name(),
                cap * 100.0
            ),
            None => println!("  {:<12} cannot meet the budget at any load", design.name()),
        }
    }
    println!("\n(Iso-load capacities are close by design — Duplexity's win is that it");
    println!("fills the unused cycles with batch work; see Figure 5(e) for the");
    println!("equal-cost comparison where that shows up as lower tails.)");
}
