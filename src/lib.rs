//! Workspace umbrella for the Duplexity reproduction.
//!
//! Re-exports every workspace crate under one roof so the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`) have a single
//! dependency. Library users should depend on the individual crates —
//! start with [`duplexity`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use duplexity;
pub use duplexity_cpu;
pub use duplexity_net;
pub use duplexity_power;
pub use duplexity_queueing;
pub use duplexity_stats;
pub use duplexity_uarch;
pub use duplexity_workloads;
