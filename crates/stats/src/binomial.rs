//! Binomial distribution, used by the HSMT provisioning model.
//!
//! §III-A of the paper develops "a simple analytic model to determine how many
//! virtual contexts are needed to fill eight physical contexts": with `n`
//! virtual contexts each independently stalled with probability `p`, the
//! number of ready threads is `k ~ Binomial(n, 1-p)`, and Figure 2(b) plots
//! `P(k >= 8)` against `n` for `p ∈ {0.1, 0.5}`.

use serde::{Deserialize, Serialize};

/// A binomial distribution `Binomial(n, p)` over the number of successes in
/// `n` independent trials with success probability `p`.
///
/// # Examples
///
/// ```
/// use duplexity_stats::binomial::Binomial;
///
/// // 11 virtual contexts, each ready with probability 0.9 (Figure 2(b)):
/// let ready = Binomial::new(11, 0.9);
/// assert!(ready.sf_at_least(8) > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Binomial {
    n: u32,
    p: f64,
}

impl Binomial {
    /// Creates a `Binomial(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `\[0, 1\]`.
    #[must_use]
    pub fn new(n: u32, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        Self { n, p }
    }

    /// Number of trials.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Success probability per trial.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n * p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        f64::from(self.n) * self.p
    }

    /// Variance `n * p * (1 - p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        f64::from(self.n) * self.p * (1.0 - self.p)
    }

    /// Probability mass function `P(X = k)`.
    ///
    /// Computed in log space for numerical stability at large `n`.
    #[must_use]
    pub fn pmf(&self, k: u32) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let n = f64::from(self.n);
        let kf = f64::from(k);
        let log_pmf = ln_choose(self.n, k) + kf * self.p.ln() + (n - kf) * (1.0 - self.p).ln();
        log_pmf.exp()
    }

    /// Cumulative distribution function `P(X <= k)`.
    #[must_use]
    pub fn cdf(&self, k: u32) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Survival function `P(X >= k)` — the Figure 2(b) quantity.
    #[must_use]
    pub fn sf_at_least(&self, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        (k..=self.n).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }
}

/// Returns the number of virtual contexts needed so that at least `physical`
/// threads are ready with probability `target`, given per-thread stall
/// probability `stall_p`.
///
/// This is the design question Figure 2(b) answers: at 10% stall probability
/// 11 virtual contexts keep 8 physical contexts ≥90% utilized; at 50%, 21 are
/// needed.
///
/// Returns `None` if no `n <= max_n` achieves the target.
///
/// # Examples
///
/// ```
/// use duplexity_stats::binomial::required_virtual_contexts;
///
/// assert_eq!(required_virtual_contexts(8, 0.5, 0.9, 64), Some(21));
/// ```
#[must_use]
pub fn required_virtual_contexts(
    physical: u32,
    stall_p: f64,
    target: f64,
    max_n: u32,
) -> Option<u32> {
    (physical..=max_n).find(|&n| Binomial::new(n, 1.0 - stall_p).sf_at_least(physical) >= target)
}

/// Natural log of the binomial coefficient `C(n, k)`.
fn ln_choose(n: u32, k: u32) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` via Stirling's series for large `n`, exact for small.
fn ln_factorial(n: u32) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|i| f64::from(i).ln()).sum();
    }
    let x = f64::from(n) + 1.0;
    // Stirling series for ln Γ(x).
    (x - 0.5) * x.ln() - x + 0.5 * (std::f64::consts::TAU).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3);
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn pmf_matches_small_case() {
        // Binomial(2, 0.5): 0.25, 0.5, 0.25
        let b = Binomial::new(2, 0.5);
        assert!((b.pmf(0) - 0.25).abs() < 1e-12);
        assert!((b.pmf(1) - 0.5).abs() < 1e-12);
        assert!((b.pmf(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_probabilities() {
        let b0 = Binomial::new(5, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(3), 0.0);
        let b1 = Binomial::new(5, 1.0);
        assert_eq!(b1.pmf(5), 1.0);
        assert_eq!(b1.sf_at_least(5), 1.0);
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let b = Binomial::new(30, 0.6);
        for k in 1..=30 {
            let lhs = b.cdf(k - 1) + b.sf_at_least(k);
            assert!((lhs - 1.0).abs() < 1e-9, "k={k}: {lhs}");
        }
    }

    #[test]
    fn sf_monotone_in_n() {
        // More virtual contexts can only help.
        let mut prev = 0.0;
        for n in 8..40 {
            let sf = Binomial::new(n, 0.9).sf_at_least(8);
            assert!(sf >= prev - 1e-12, "n={n}");
            prev = sf;
        }
    }

    #[test]
    fn paper_figure_2b_anchor_points() {
        // §III-A: "When threads are stalled only 10% of the time, 11 virtual
        // contexts are sufficient to keep the 8 physical contexts 90%
        // utilized. However, when threads are 50% stalled, 21 virtual contexts
        // are needed."
        //
        // The exact 0.9 crossing for p=0.1 is n=10 (P = 0.930); the paper's
        // "11" is read off Figure 2(b) and at n=11 P(k>=8) = 0.981, so 11 is
        // indeed "sufficient". The p=0.5 anchor matches exactly.
        let n_low_stall = required_virtual_contexts(8, 0.1, 0.9, 64).unwrap();
        assert!(n_low_stall <= 11, "n={n_low_stall}");
        assert!(Binomial::new(11, 0.9).sf_at_least(8) >= 0.9);
        assert_eq!(required_virtual_contexts(8, 0.5, 0.9, 64), Some(21));
    }

    #[test]
    fn required_contexts_none_when_unreachable() {
        assert_eq!(required_virtual_contexts(8, 0.99, 0.9, 32), None);
    }

    #[test]
    fn ln_factorial_consistent_across_regimes() {
        // Compare exact summation vs Stirling at the crossover.
        let exact: f64 = (2..=300u32).map(|i| f64::from(i).ln()).sum();
        let approx = ln_factorial(300);
        assert!((exact - approx).abs() / exact < 1e-10);
    }

    #[test]
    fn large_n_pmf_stable() {
        let b = Binomial::new(10_000, 0.5);
        let p = b.pmf(5_000);
        assert!(p > 0.0 && p < 1.0);
        // Normal approximation of the mode: 1/sqrt(2 pi n p q)
        let expect = 1.0 / (std::f64::consts::TAU * 2500.0).sqrt();
        assert!((p - expect).abs() / expect < 1e-3, "p {p} expect {expect}");
    }
}
