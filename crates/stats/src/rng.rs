//! Deterministic random-number generation for reproducible simulation.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed so
//! that experiments are reproducible bit-for-bit. [`SimRng`] is the single RNG
//! type used throughout; [`rng_from_seed`] and [`derive_stream`] construct
//! independent streams from human-readable seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The random-number generator used by all Duplexity simulators.
///
/// A type alias for [`rand::rngs::StdRng`] so the concrete algorithm can be
/// swapped in one place without touching call sites.
pub type SimRng = StdRng;

/// Creates a [`SimRng`] from a 64-bit seed.
///
/// The seed is expanded with SplitMix64 to fill the generator's full seed
/// width so that nearby seeds (0, 1, 2, ...) still yield decorrelated streams.
///
/// # Examples
///
/// ```
/// use duplexity_stats::rng::rng_from_seed;
/// use rand::RngExt;
///
/// let mut a = rng_from_seed(7);
/// let mut b = rng_from_seed(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> SimRng {
    let mut state = seed;
    let mut bytes = [0u8; 32];
    for chunk in bytes.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    SimRng::from_seed(bytes)
}

/// Derives an independent sub-stream seed from a parent seed and a label.
///
/// Used when one experiment fans out into several stochastic components (e.g.
/// one stream for arrivals, one for service times, one for stall durations)
/// that must not share a generator.
///
/// # Examples
///
/// ```
/// use duplexity_stats::rng::derive_stream;
///
/// let arrivals = derive_stream(42, 0);
/// let services = derive_stream(42, 1);
/// assert_ne!(arrivals, services);
/// ```
#[must_use]
pub fn derive_stream(seed: u64, stream: u64) -> u64 {
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Two rounds decorrelate (seed, stream) pairs that differ in few bits.
    let a = splitmix64(&mut state);
    splitmix64(&mut state) ^ a.rotate_left(17)
}

/// Draws `n` values into `buf` (cleared first) by calling `draw`
/// sequentially on `rng`.
///
/// This is the batched-draw primitive the DES hot paths use to fill
/// pre-sized buffers per arrival burst: it is *defined* as `n` sequential
/// draws, so the consumed RNG stream is bitwise identical to `n` separate
/// calls — batching can never perturb a golden fixture. The buffer is
/// reused across bursts (capacity is reserved, never shrunk) to keep the
/// hot loop allocation-free.
pub fn draw_batch<F>(rng: &mut SimRng, n: usize, buf: &mut Vec<f64>, mut draw: F)
where
    F: FnMut(&mut SimRng) -> f64,
{
    buf.clear();
    buf.reserve(n);
    for _ in 0..n {
        buf.push(draw(rng));
    }
}

/// One step of the SplitMix64 sequence, advancing `state`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..256 {
            assert!(seen.insert(derive_stream(99, stream)));
        }
    }

    #[test]
    fn derived_stream_depends_on_parent() {
        assert_ne!(derive_stream(1, 0), derive_stream(2, 0));
    }

    #[test]
    fn draw_batch_consumes_the_sequential_stream_bitwise() {
        let mut batched = rng_from_seed(77);
        let mut sequential = rng_from_seed(77);
        let mut buf = Vec::new();
        draw_batch(&mut batched, 64, &mut buf, |r| r.random::<f64>());
        let expect: Vec<f64> = (0..64).map(|_| sequential.random::<f64>()).collect();
        assert_eq!(buf.len(), 64);
        for (a, b) in buf.iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The generators end in the same state, too.
        assert_eq!(batched.random::<u64>(), sequential.random::<u64>());
    }

    #[test]
    fn draw_batch_reuses_capacity_and_clears() {
        let mut rng = rng_from_seed(5);
        let mut buf = Vec::new();
        draw_batch(&mut rng, 512, &mut buf, |r| r.random::<f64>());
        let cap = buf.capacity();
        draw_batch(&mut rng, 8, &mut buf, |r| r.random::<f64>());
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.capacity(), cap, "batch buffer must not shrink");
    }

    #[test]
    fn uniform_doubles_in_unit_interval() {
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
