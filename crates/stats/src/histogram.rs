//! Fixed-bin histograms for idle-period and latency distributions.
//!
//! Figure 1(b) plots the cumulative distribution of idle-period durations;
//! [`Histogram`] accumulates the simulated durations and exposes the CDF.

use serde::{Deserialize, Serialize};

/// A histogram with uniform-width bins over `[low, high)` plus overflow and
/// underflow counters.
///
/// # Examples
///
/// ```
/// use duplexity_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.7, 9.9, 12.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0`.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "need low < high");
        assert!(bins > 0, "need at least one bin");
        Self {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let frac = (x - self.low) / (self.high - self.low);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the histogram range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The left edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_edge(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin index out of range");
        self.low + (self.high - self.low) * i as f64 / self.bins.len() as f64
    }

    /// Raw bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Empirical CDF sampled at each bin's *right* edge: element `i` is the
    /// fraction of observations `< right_edge(i)` (underflow included).
    ///
    /// Returns an empty vector if no observations were recorded.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.count();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = self.underflow;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect()
    }

    /// Merges another histogram with identical binning.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.low, other.low, "histogram ranges differ");
        assert_eq!(self.high, other.high, "histogram ranges differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_exact() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.999);
        h.record(1.0);
        h.record(9.999);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.record(0.5);
        h.record(2.0);
        h.record(3.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn cdf_reaches_one_without_overflow() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.record(x);
        }
        let cdf = h.cdf();
        assert_eq!(cdf, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn cdf_empty_histogram() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn bin_edges_uniform() {
        let h = Histogram::new(2.0, 12.0, 5);
        assert_eq!(h.bin_edge(0), 2.0);
        assert_eq!(h.bin_edge(4), 10.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(1.5);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.bins()[1], 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "histogram ranges differ")]
    fn merge_rejects_mismatched_ranges() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 5.0, 10);
        a.merge(&b);
    }
}
