//! Statistical foundations for the Duplexity reproduction.
//!
//! This crate provides the probability distributions, streaming summary
//! statistics, quantile estimation, and confidence-interval machinery used by
//! both simulation granularities in the paper's methodology (HPCA 2019,
//! "Enhancing Server Efficiency in the Face of Killer Microseconds"):
//!
//! * the cycle-level CPU simulator draws µs-scale stall durations from
//!   [`dist`] distributions (e.g. exponential 1µs RDMA latency);
//! * the request-level queueing simulator (BigHouse methodology, §V) samples
//!   inter-arrival/service times and terminates once the 99th-percentile
//!   latency is known to within a 95%-confidence, 5%-error interval, using
//!   [`quantile`] and [`ci`];
//! * the analytic HSMT provisioning model of Figure 2(b) uses the
//!   [`binomial`] survival function.
//!
//! # Examples
//!
//! ```
//! use duplexity_stats::dist::{Distribution, Exponential};
//! use duplexity_stats::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(42);
//! let rdma = Exponential::new(1.0); // mean 1 µs
//! let stall = rdma.sample(&mut rng);
//! assert!(stall > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod ci;
pub mod dist;
pub mod histogram;
pub mod quantile;
pub mod rng;
pub mod summary;
pub mod zipf;

pub use binomial::Binomial;
pub use ci::ConfidenceInterval;
pub use dist::{
    BoundedPareto, Deterministic, Distribution, DynDistribution, Erlang, Exponential,
    Hyperexponential, LogNormal, Mixture, Shifted, Uniform,
};
pub use histogram::Histogram;
pub use quantile::QuantileEstimator;
pub use rng::{rng_from_seed, SimRng};
pub use summary::Summary;
pub use zipf::Zipf;
