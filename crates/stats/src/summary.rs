//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator.
///
/// Uses Welford's numerically stable recurrence, so it can absorb billions of
/// simulated observations without drift.
///
/// # Examples
///
/// ```
/// use duplexity_stats::summary::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Squared coefficient of variation (variance / mean²); 0 when mean is 0.
    #[must_use]
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let all: Summary = data.iter().copied().collect();
        let mut a: Summary = data[..400].iter().copied().collect();
        let b: Summary = data[400..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sum_matches() {
        let s: Summary = [1.5, 2.5, 3.0].into_iter().collect();
        assert!((s.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }
}
