//! Quantile estimation for tail-latency measurement.
//!
//! The BigHouse methodology (§V) reports the 99th-percentile latency with a
//! 95% confidence interval and stops simulating once the interval half-width
//! drops below 5% of the estimate. [`QuantileEstimator`] collects samples and
//! produces both the point estimate and the order-statistic confidence
//! interval required for that stopping rule.

use crate::ci::ConfidenceInterval;
use serde::{Deserialize, Serialize};

/// Collects samples and answers quantile queries with confidence intervals.
///
/// Samples are stored and sorted lazily; queries after large insert batches
/// cost one sort.
///
/// # Examples
///
/// ```
/// use duplexity_stats::quantile::QuantileEstimator;
///
/// let mut q = QuantileEstimator::new();
/// q.extend((1..=100).map(f64::from));
/// assert_eq!(q.quantile(0.5), Some(50.0));
/// assert_eq!(q.quantile(0.99), Some(99.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QuantileEstimator {
    samples: Vec<f64>,
    sorted: bool,
}

impl QuantileEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty estimator with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "quantile samples must be finite");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no observations are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 < q < 1) using the nearest-rank method, or `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// The sample mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Distribution-free confidence interval for the `q`-quantile at the given
    /// confidence level, via the normal approximation to order-statistic
    /// ranks: rank ± z·√(n·q·(1−q)).
    ///
    /// Returns `None` below 8 samples. With more, the bounding ranks are
    /// clamped to `[1, n]` — at small `n` an extreme quantile's nominal
    /// rank band extends past the order statistics that exist, and the
    /// clamped interval (pinned at the sample min/max) is the honest
    /// distribution-free answer. Clamping also guards the index
    /// arithmetic: an unclamped rank of 0 used to underflow
    /// `rank as usize - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)` or `confidence` outside `(0, 1)`.
    pub fn quantile_ci(&mut self, q: f64, confidence: f64) -> Option<ConfidenceInterval> {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        let n = self.samples.len();
        if n < 8 {
            return None;
        }
        self.ensure_sorted();
        let z = crate::ci::z_value(confidence);
        let nf = n as f64;
        let center = q * nf;
        let half = z * (nf * q * (1.0 - q)).sqrt();
        let lo_rank = (center - half).floor().clamp(1.0, nf);
        let hi_rank = (center + half).ceil().clamp(1.0, nf);
        let point = self.quantile(q).expect("non-empty");
        Some(ConfidenceInterval {
            point,
            low: self.samples[lo_rank as usize - 1],
            high: self.samples[hi_rank as usize - 1],
            confidence,
        })
    }

    /// Returns the empirical CDF evaluated at `x`.
    pub fn cdf(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Consumes the estimator, returning the sorted samples.
    #[must_use]
    pub fn into_sorted(mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }
}

impl FromIterator<f64> for QuantileEstimator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut q = QuantileEstimator::new();
        q.extend(iter);
        q
    }
}

impl Extend<f64> for QuantileEstimator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential};
    use crate::rng::rng_from_seed;

    #[test]
    fn empty_returns_none() {
        let mut q = QuantileEstimator::new();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.mean(), None);
    }

    #[test]
    fn nearest_rank_on_small_sets() {
        let mut q: QuantileEstimator = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(q.quantile(0.5), Some(20.0));
        assert_eq!(q.quantile(0.75), Some(30.0));
        assert_eq!(q.quantile(0.76), Some(40.0));
        assert_eq!(q.quantile(0.01), Some(10.0));
    }

    #[test]
    fn p99_of_uniform_ranks() {
        let mut q: QuantileEstimator = (1..=1000).map(f64::from).collect();
        assert_eq!(q.quantile(0.99), Some(990.0));
    }

    #[test]
    fn exponential_p99_matches_analytic() {
        // p99 of Exp(mean m) = m * ln(100).
        let d = Exponential::new(1.0);
        let mut rng = rng_from_seed(42);
        let mut q = QuantileEstimator::with_capacity(200_000);
        for _ in 0..200_000 {
            q.record(d.sample(&mut rng));
        }
        let p99 = q.quantile(0.99).unwrap();
        let analytic = 100.0_f64.ln();
        assert!(
            (p99 - analytic).abs() / analytic < 0.03,
            "p99 {p99} vs {analytic}"
        );
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let d = Exponential::new(1.0);
        let mut rng = rng_from_seed(7);
        let mut q = QuantileEstimator::new();
        for _ in 0..50_000 {
            q.record(d.sample(&mut rng));
        }
        let ci = q.quantile_ci(0.99, 0.95).unwrap();
        assert!(ci.low <= ci.point && ci.point <= ci.high);
        assert!(ci.relative_half_width() < 0.1);
    }

    #[test]
    fn ci_none_for_tiny_samples() {
        let mut q: QuantileEstimator = [1.0, 2.0, 3.0].into_iter().collect();
        assert!(q.quantile_ci(0.99, 0.95).is_none());
    }

    #[test]
    fn small_sample_extreme_quantile_ranks_clamp_instead_of_underflowing() {
        // Regression: at small n an extreme quantile's rank band extends
        // past the order statistics that exist. The low rank floors to ≤ 0
        // (which used to underflow `rank as usize - 1` once past the old
        // early-return) and the high rank exceeds n; both must clamp.
        let mut q: QuantileEstimator = (1..=10).map(f64::from).collect();
        // p99 at n=10: hi_rank = ceil(9.9 + 0.62) = 11 > n, clamps to max.
        let hi = q.quantile_ci(0.99, 0.95).expect("clamped CI at n=10");
        assert_eq!(hi.high, 10.0, "high rank clamps to the sample maximum");
        assert!(hi.low <= hi.point && hi.point <= hi.high);
        // p1 at n=10: lo_rank = floor(0.1 - 0.62) < 0, clamps to min —
        // the exact underflow case.
        let lo = q.quantile_ci(0.01, 0.95).expect("clamped CI at n=10");
        assert_eq!(lo.low, 1.0, "low rank clamps to the sample minimum");
        assert!(lo.low <= lo.point && lo.point <= lo.high);
        // Wide band at the minimum n: p20 at 99% confidence puts the
        // unclamped low rank at floor(1.6 - 2.91) = -2.
        let mut tiny: QuantileEstimator = (1..=8).map(f64::from).collect();
        let ci = tiny.quantile_ci(0.2, 0.99).expect("CI at n=8");
        assert_eq!(ci.low, 1.0);
        assert!(ci.low <= ci.point && ci.point <= ci.high);
    }

    #[test]
    fn large_sample_intervals_are_unaffected_by_clamping() {
        // At n where the rank band fits inside [1, n], clamping is a no-op:
        // the p99 CI of 1..=100_000 stays strictly inside the extremes.
        let mut q: QuantileEstimator = (1..=100_000).map(f64::from).collect();
        let ci = q.quantile_ci(0.99, 0.95).unwrap();
        assert!(ci.low > 1.0 && ci.high < 100_000.0);
        assert!(ci.low <= ci.point && ci.point <= ci.high);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut q: QuantileEstimator = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        assert_eq!(q.cdf(0.0), 0.0);
        assert_eq!(q.cdf(2.5), 0.4);
        assert_eq!(q.cdf(5.0), 1.0);
    }

    #[test]
    fn interleaved_insert_and_query() {
        let mut q = QuantileEstimator::new();
        q.record(5.0);
        assert_eq!(q.quantile(0.5), Some(5.0));
        q.record(1.0);
        q.record(9.0);
        assert_eq!(q.quantile(0.5), Some(5.0));
        assert_eq!(q.into_sorted(), vec![1.0, 5.0, 9.0]);
    }
}
