//! Continuous probability distributions for stall durations, service times,
//! and inter-arrival times.
//!
//! The paper's workloads are described by a small set of distribution shapes:
//! exponential stalls (RDMA, §V "single–cache-line RDMA read latency to be
//! exponentially distributed with a 1µs average"), deterministic compute
//! segments (3µs McRouter routing), and heavy-tailed service times typical of
//! cloud microservices (§II-A cites high service-time variability). All of
//! them implement [`Distribution`].

use crate::rng::SimRng;
use rand::RngExt;
use std::fmt;

/// A continuous, non-negative probability distribution that can be sampled.
///
/// Implementors must return samples in microseconds (the universal time unit
/// of the request-level simulators) or in whatever unit the caller has chosen
/// consistently; the trait itself is unit-agnostic.
pub trait Distribution: fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean.
    fn mean(&self) -> f64;

    /// The squared coefficient of variation (variance / mean²), if finite.
    ///
    /// Used by analytic M/G/1 formulas; defaults to `None` for distributions
    /// where it is unknown or infinite.
    fn scv(&self) -> Option<f64> {
        None
    }
}

/// A boxed, dynamically dispatched [`Distribution`].
pub type DynDistribution = Box<dyn Distribution>;

/// Exponential distribution with the given mean.
///
/// Idle periods of any M/G/1 queue are exponential (§II-A, Figure 1(b)), and
/// the paper models RDMA stall durations as exponential with a 1µs mean.
///
/// # Examples
///
/// ```
/// use duplexity_stats::dist::{Distribution, Exponential};
/// let d = Exponential::new(2.0);
/// assert_eq!(d.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Self { mean }
    }

    /// Creates an exponential distribution with rate `rate` (= 1/mean).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[must_use]
    pub fn from_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Self { mean: 1.0 / rate }
    }

    /// The rate parameter λ = 1/mean.
    #[must_use]
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }

    /// Cumulative distribution function `P(X <= x)`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-x / self.mean).exp()
        }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse-transform; 1 - u avoids ln(0).
        let u: f64 = rng.random();
        -self.mean * (1.0 - u).ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn scv(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Point mass: always returns the same value.
///
/// Models fixed compute segments such as McRouter's 3µs routing step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point-mass distribution at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0 && value.is_finite(), "value must be >= 0");
        Self { value }
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn scv(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Continuous uniform distribution on `[low, high)`.
///
/// Used for the McRouter leaf KV store's 3–5µs operation latency (§V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is negative/non-finite.
    #[must_use]
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low >= 0.0 && high.is_finite() && low < high,
            "need 0 <= low < high"
        );
        Self { low, high }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.random_range(self.low..self.high)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn scv(&self) -> Option<f64> {
        let m = self.mean();
        let var = (self.high - self.low).powi(2) / 12.0;
        Some(var / (m * m))
    }
}

/// Log-normal distribution parameterized by the mean and squared coefficient
/// of variation of the *resulting* (not underlying normal) distribution.
///
/// A standard model for service times of interactive cloud services, which
/// exhibit "high service time variability" (§II-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    mean: f64,
    scv: f64,
}

impl LogNormal {
    /// Creates a log-normal with target mean `mean` and squared coefficient of
    /// variation `scv`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `scv <= 0`.
    #[must_use]
    pub fn from_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        assert!(scv > 0.0 && scv.is_finite(), "scv must be positive");
        let sigma2 = (1.0 + scv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self {
            mu,
            sigma: sigma2.sqrt(),
            mean,
            scv,
        }
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn scv(&self) -> Option<f64> {
        Some(self.scv)
    }
}

/// Bounded Pareto distribution on `[low, high]` with shape `alpha`.
///
/// The canonical heavy-tailed service-time model in the data-center queueing
/// literature (Harchol-Balter, cited as \[69\] in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    low: f64,
    high: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[low, high]` with tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `low <= 0`, `high <= low`, or `alpha <= 0`.
    #[must_use]
    pub fn new(low: f64, high: f64, alpha: f64) -> Self {
        assert!(low > 0.0, "low must be positive");
        assert!(high > low, "high must exceed low");
        assert!(alpha > 0.0, "alpha must be positive");
        Self { low, high, alpha }
    }

    fn raw_moment(&self, k: f64) -> f64 {
        let (l, h, a) = (self.low, self.high, self.alpha);
        if (a - k).abs() < 1e-12 {
            // Degenerate case: E[X^k] for alpha == k.
            a * l.powf(a) * (h / l).ln() / (1.0 - (l / h).powf(a))
        } else {
            a * l.powf(a) / (1.0 - (l / h).powf(a)) * (h.powf(k - a) - l.powf(k - a)) / (k - a)
        }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF: X = L / (1 - U (1 - (L/H)^a))^(1/a).
        let u: f64 = rng.random();
        let (l, h, a) = (self.low, self.high, self.alpha);
        let lh = (l / h).powf(a);
        (l / (1.0 - u * (1.0 - lh)).powf(1.0 / a)).clamp(l, h)
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn scv(&self) -> Option<f64> {
        let m1 = self.raw_moment(1.0);
        let m2 = self.raw_moment(2.0);
        Some((m2 - m1 * m1) / (m1 * m1))
    }
}

/// Erlang-k distribution: the sum of `k` iid exponentials.
///
/// The low-variability complement to [`Hyperexponential`]: its squared
/// coefficient of variation is `1/k`, so pipelines of sequential µs-scale
/// steps (parse, hash, route) fit it naturally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    stage_mean: f64,
}

impl Erlang {
    /// Creates an Erlang-`k` with total mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `mean <= 0`.
    #[must_use]
    pub fn new(k: u32, mean: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Self {
            k,
            stage_mean: mean / f64::from(k),
        }
    }

    /// Two-moment fit for `scv <= 1`: picks `k = round(1/scv)` (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `scv <= 0` or `scv > 1`.
    #[must_use]
    pub fn from_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(scv > 0.0 && scv <= 1.0, "Erlang requires 0 < scv <= 1");
        let k = (1.0 / scv).round().max(1.0) as u32;
        Self::new(k, mean)
    }

    /// Number of stages.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl Distribution for Erlang {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Product-of-uniforms method: -stage_mean * ln(prod u_i).
        let mut prod: f64 = 1.0;
        for _ in 0..self.k {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            prod *= u;
        }
        -self.stage_mean * prod.ln()
    }

    fn mean(&self) -> f64 {
        self.stage_mean * f64::from(self.k)
    }

    fn scv(&self) -> Option<f64> {
        Some(1.0 / f64::from(self.k))
    }
}

/// Two-phase hyperexponential distribution.
///
/// With probability `p` samples from an exponential of mean `mean1`, otherwise
/// from an exponential of mean `mean2`. Produces SCV > 1 service processes —
/// the "heavy-tailed service distributions" of §II-A — while staying analytic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperexponential {
    p: f64,
    first: Exponential,
    second: Exponential,
}

impl Hyperexponential {
    /// Creates a two-phase hyperexponential.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `\[0, 1\]`.
    #[must_use]
    pub fn new(p: f64, mean1: f64, mean2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self {
            p,
            first: Exponential::new(mean1),
            second: Exponential::new(mean2),
        }
    }

    /// Builds a hyperexponential with the given mean and SCV using balanced
    /// means (a standard two-moment fit; requires `scv >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `scv < 1` or `mean <= 0`.
    #[must_use]
    pub fn from_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(scv >= 1.0, "hyperexponential requires scv >= 1");
        // Balanced-means fit: p1/mu1 = p2/mu2.
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let mean1 = mean / (2.0 * p);
        let mean2 = mean / (2.0 * (1.0 - p));
        Self {
            p,
            first: Exponential::new(mean1),
            second: Exponential::new(mean2),
        }
    }
}

impl Distribution for Hyperexponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if rng.random::<f64>() < self.p {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }

    fn mean(&self) -> f64 {
        self.p * self.first.mean() + (1.0 - self.p) * self.second.mean()
    }

    fn scv(&self) -> Option<f64> {
        let m1 = self.mean();
        let m2 = self.p * 2.0 * self.first.mean().powi(2)
            + (1.0 - self.p) * 2.0 * self.second.mean().powi(2);
        Some((m2 - m1 * m1) / (m1 * m1))
    }
}

/// Shifts another distribution right by a constant offset.
///
/// Models "fixed compute + random stall" service structures, e.g. RSC's 3µs
/// lookup followed by an Optane access.
#[derive(Debug)]
pub struct Shifted<D> {
    offset: f64,
    inner: D,
}

impl<D: Distribution> Shifted<D> {
    /// Wraps `inner`, adding `offset` to every sample.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is negative or non-finite.
    #[must_use]
    pub fn new(offset: f64, inner: D) -> Self {
        assert!(offset >= 0.0 && offset.is_finite(), "offset must be >= 0");
        Self { offset, inner }
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.offset + self.inner.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }

    fn scv(&self) -> Option<f64> {
        // Var unchanged by shift; SCV rescales with the new mean.
        let inner_scv = self.inner.scv()?;
        let inner_mean = self.inner.mean();
        let var = inner_scv * inner_mean * inner_mean;
        let m = self.mean();
        Some(var / (m * m))
    }
}

/// Finite mixture of boxed distributions with given weights.
#[derive(Debug)]
pub struct Mixture {
    components: Vec<(f64, DynDistribution)>,
}

impl Mixture {
    /// Creates a mixture; weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is negative, or if all
    /// weights are zero.
    #[must_use]
    pub fn new(components: Vec<(f64, DynDistribution)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0),
            "weights must be non-negative"
        );
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Self { components }
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let mut u: f64 = rng.random();
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall through to the last component.
        self.components.last().expect("non-empty").1.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn scv(&self) -> Option<f64> {
        let m1 = self.mean();
        let mut m2 = 0.0;
        for (w, d) in &self.components {
            let dm = d.mean();
            let dv = d.scv()? * dm * dm;
            m2 += w * (dv + dm * dm);
        }
        Some((m2 - m1 * m1) / (m1 * m1))
    }
}

/// Samples a standard normal variate via Box–Muller.
fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn sample_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(3.0);
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_cdf_median() {
        let d = Exponential::new(1.0);
        assert!((d.cdf(std::f64::consts::LN_2) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn exponential_from_rate() {
        let d = Exponential::from_rate(0.5);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(4.0);
        let mut rng = rng_from_seed(9);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4.0);
        }
        assert_eq!(d.scv(), Some(0.0));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(3.0, 5.0);
        let mut rng = rng_from_seed(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((3.0..5.0).contains(&x));
        }
        assert!((sample_mean(&d, 100_000, 3) - 4.0).abs() < 0.02);
    }

    #[test]
    fn lognormal_hits_target_moments() {
        let d = LogNormal::from_mean_scv(4.0, 2.0);
        let m = sample_mean(&d, 400_000, 4);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert_eq!(d.scv(), Some(2.0));
    }

    #[test]
    fn erlang_moments() {
        let d = Erlang::new(4, 8.0);
        assert!((d.mean() - 8.0).abs() < 1e-12);
        assert_eq!(d.scv(), Some(0.25));
        let m = sample_mean(&d, 200_000, 21);
        assert!((m - 8.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn erlang_two_moment_fit() {
        let d = Erlang::from_mean_scv(5.0, 0.2);
        assert_eq!(d.k(), 5);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        // k=1 degenerates to exponential.
        let e = Erlang::from_mean_scv(3.0, 1.0);
        assert_eq!(e.k(), 1);
        assert_eq!(e.scv(), Some(1.0));
    }

    #[test]
    fn erlang_has_lower_spread_than_exponential() {
        let exp = Exponential::new(4.0);
        let erl = Erlang::new(8, 4.0);
        let mut rng = rng_from_seed(22);
        let spread = |d: &dyn Distribution, rng: &mut crate::rng::SimRng| {
            let xs: Vec<f64> = (0..20_000).map(|_| d.sample(rng)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(spread(&erl, &mut rng) < 0.3 * spread(&exp, &mut rng));
    }

    #[test]
    fn hyperexponential_two_moment_fit() {
        let d = Hyperexponential::from_mean_scv(10.0, 4.0);
        assert!((d.mean() - 10.0).abs() < 1e-9);
        assert!((d.scv().unwrap() - 4.0).abs() < 1e-9);
        let m = sample_mean(&d, 400_000, 5);
        assert!((m - 10.0).abs() < 0.25, "mean {m}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.0, 100.0, 1.5);
        let mut rng = rng_from_seed(6);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn bounded_pareto_mean_close() {
        let d = BoundedPareto::new(1.0, 1000.0, 2.1);
        let analytic = d.mean();
        let empirical = sample_mean(&d, 400_000, 7);
        assert!(
            (analytic - empirical).abs() / analytic < 0.05,
            "analytic {analytic} empirical {empirical}"
        );
    }

    #[test]
    fn shifted_adds_offset() {
        let d = Shifted::new(3.0, Exponential::new(8.0));
        assert!((d.mean() - 11.0).abs() < 1e-12);
        let m = sample_mean(&d, 200_000, 8);
        assert!((m - 11.0).abs() < 0.15, "mean {m}");
        let mut rng = rng_from_seed(10);
        assert!(d.sample(&mut rng) >= 3.0);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let d = Mixture::new(vec![
            (1.0, Box::new(Deterministic::new(2.0)) as DynDistribution),
            (3.0, Box::new(Deterministic::new(6.0)) as DynDistribution),
        ]);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        let m = sample_mean(&d, 100_000, 11);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn mixture_scv_of_deterministics() {
        let d = Mixture::new(vec![
            (0.5, Box::new(Deterministic::new(1.0)) as DynDistribution),
            (0.5, Box::new(Deterministic::new(3.0)) as DynDistribution),
        ]);
        // mean 2, var 1 => scv 0.25
        assert!((d.scv().unwrap() - 0.25).abs() < 1e-12);
    }
}
