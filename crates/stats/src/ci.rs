//! Confidence intervals and the BigHouse stopping rule.
//!
//! §V: "We simulate the queuing system until we achieve 95% confidence
//! intervals of 5% error in reported results."

use serde::{Deserialize, Serialize};

/// A point estimate with a two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub point: f64,
    /// Lower bound of the interval.
    pub low: f64,
    /// Upper bound of the interval.
    pub high: f64,
    /// Confidence level in `(0, 1)`, e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half of the interval width.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        0.5 * (self.high - self.low)
    }

    /// Half-width relative to the point estimate; `inf` when the point is 0.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.point == 0.0 {
            f64::INFINITY
        } else {
            self.half_width() / self.point.abs()
        }
    }

    /// The BigHouse stopping criterion: true once the relative half-width is
    /// at or below `max_relative_error` (the paper uses 0.05).
    #[must_use]
    pub fn converged(&self, max_relative_error: f64) -> bool {
        self.relative_half_width() <= max_relative_error
    }

    /// Returns true if `value` lies within `[low, high]`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low && value <= self.high
    }
}

/// Two-sided standard-normal critical value for the given confidence level.
///
/// Computed by inverting Φ via bisection on a high-accuracy erf approximation,
/// so uncommon confidence levels work too.
///
/// # Panics
///
/// Panics if `confidence` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// let z = duplexity_stats::ci::z_value(0.95);
/// assert!((z - 1.96).abs() < 0.01);
/// ```
#[must_use]
pub fn z_value(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let target = 0.5 + confidence / 2.0; // Φ(z) target for two-sided interval
    let (mut lo, mut hi) = (0.0_f64, 10.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal CDF Φ(x).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7), with odd symmetry.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Mean confidence interval from streaming summary statistics (CLT-based).
///
/// # Panics
///
/// Panics if `confidence` is outside `(0, 1)`.
#[must_use]
pub fn mean_ci(summary: &crate::summary::Summary, confidence: f64) -> ConfidenceInterval {
    let n = summary.count().max(1) as f64;
    let half = z_value(confidence) * summary.std_dev() / n.sqrt();
    let point = summary.mean();
    ConfidenceInterval {
        point,
        low: point - half,
        high: point + half,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    #[test]
    fn z_values_match_tables() {
        assert!((z_value(0.90) - 1.6449).abs() < 1e-3);
        assert!((z_value(0.95) - 1.9600).abs() < 1e-3);
        assert!((z_value(0.99) - 2.5758).abs() < 1e-3);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [-3.0, -1.0, -0.2, 0.0, 0.5, 2.0] {
            let lhs: f64 = normal_cdf(x) + normal_cdf(-x);
            // Two erf evaluations, each accurate to 1.5e-7.
            assert!((lhs - 1.0).abs() < 5e-7);
        }
        // The A&S coefficients sum to 1 - 1e-9, so Φ(0) carries that residual.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn interval_queries() {
        let ci = ConfidenceInterval {
            point: 10.0,
            low: 9.5,
            high: 10.5,
            confidence: 0.95,
        };
        assert!((ci.half_width() - 0.5).abs() < 1e-12);
        assert!((ci.relative_half_width() - 0.05).abs() < 1e-12);
        assert!(ci.converged(0.05));
        assert!(!ci.converged(0.04));
        assert!(ci.contains(10.0));
        assert!(!ci.contains(8.0));
    }

    #[test]
    fn zero_point_never_converges() {
        let ci = ConfidenceInterval {
            point: 0.0,
            low: -1.0,
            high: 1.0,
            confidence: 0.95,
        };
        assert!(!ci.converged(0.05));
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let mut small = Summary::new();
        let mut big = Summary::new();
        for i in 0..100 {
            small.record(f64::from(i % 10));
        }
        for i in 0..10_000 {
            big.record(f64::from(i % 10));
        }
        let ci_small = mean_ci(&small, 0.95);
        let ci_big = mean_ci(&big, 0.95);
        assert!(ci_big.half_width() < ci_small.half_width());
        assert!(ci_big.contains(4.5));
    }
}
