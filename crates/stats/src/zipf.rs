//! Zipfian (power-law) discrete sampling.
//!
//! Key-value and block-cache request streams in data centers are famously
//! skewed; a Zipf distribution over item ranks is the standard model (e.g.
//! YCSB's default). The RSC and McRouter workload models use it so cache
//! behaviour reflects a realistic hot set rather than uniform traffic.

use crate::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Sampling uses inverse-transform over a precomputed CDF (O(log n) per
/// draw, exact).
///
/// # Examples
///
/// ```
/// use duplexity_stats::zipf::Zipf;
/// use duplexity_stats::rng::rng_from_seed;
///
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = rng_from_seed(1);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to uniform; YCSB's default skew is `s = 0.99`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf, s }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The skew exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `0..n` (rank 0 is the hottest item).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len(), "rank out of range");
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Fraction of probability mass held by the hottest `k` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    #[must_use]
    pub fn head_mass(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "bad head size");
        self.cdf[k - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.99);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(100, 0.0);
        for k in 0..100 {
            assert!((z.pmf(k) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_head_mass() {
        let uniform = Zipf::new(10_000, 0.0);
        let skewed = Zipf::new(10_000, 0.99);
        assert!(skewed.head_mass(100) > 5.0 * uniform.head_mass(100));
        // YCSB-style skew: top 1% of items draw a large chunk of traffic.
        assert!(
            skewed.head_mass(100) > 0.3,
            "head {}",
            skewed.head_mass(100)
        );
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(64, 1.2);
        let mut rng = rng_from_seed(5);
        let mut counts = [0u32; 64];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 7, 31] {
            let emp = f64::from(counts[k]) / f64::from(n);
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.01 + 0.1 * exp,
                "rank {k}: emp {emp} vs pmf {exp}"
            );
        }
    }

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(10, 2.0);
        let mut rng = rng_from_seed(6);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn monotone_pmf() {
        let z = Zipf::new(50, 0.8);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }
}
