//! Zipfian (power-law) discrete sampling.
//!
//! Key-value and block-cache request streams in data centers are famously
//! skewed; a Zipf distribution over item ranks is the standard model (e.g.
//! YCSB's default). The RSC and McRouter workload models use it so cache
//! behaviour reflects a realistic hot set rather than uniform traffic, and
//! the rack sweep uses it for per-tenant traffic skew.

use std::sync::Arc;

use crate::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Error, Serialize, Value};

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Sampling uses inverse-transform over a precomputed CDF (O(log n) per
/// draw, exact). The CDF table is shared behind an [`Arc`], so cloning a
/// `Zipf` — which grid drivers do once per replication — is O(1) regardless
/// of `n`; only construction pays the O(n) table build.
///
/// # Examples
///
/// ```
/// use duplexity_stats::zipf::Zipf;
/// use duplexity_stats::rng::rng_from_seed;
///
/// let z = Zipf::new(1000, 0.99);
/// let cheap = z.clone(); // shares the CDF table, no O(n) copy
/// let mut rng = rng_from_seed(1);
/// let rank = cheap.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Arc<[f64]>,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to uniform; YCSB's default skew is `s = 0.99`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf: cdf.into(), s }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The skew exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `0..n` (rank 0 is the hottest item).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len(), "rank out of range");
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Fraction of probability mass held by the hottest `k` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    #[must_use]
    pub fn head_mass(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "bad head size");
        self.cdf[k - 1]
    }
}

// Manual impls: the shared CDF table is an implementation detail, so the
// wire form is just `{n, s}` and deserialization rebuilds the table. (The
// vendored serde stub also has no blanket `Arc` support, by design — shared
// state should round-trip through its construction parameters.)
impl Serialize for Zipf {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_string(), self.n().to_value()),
            ("s".to_string(), self.s.to_value()),
        ])
    }
}

impl Deserialize for Zipf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = usize::from_value(v.get_field("n").ok_or_else(|| Error::missing("n"))?)?;
        let s = f64::from_value(v.get_field("s").ok_or_else(|| Error::missing("s"))?)?;
        if n == 0 {
            return Err(Error::msg("zipf: n must be positive"));
        }
        if s < 0.0 || !s.is_finite() {
            return Err(Error::msg("zipf: exponent must be non-negative and finite"));
        }
        Ok(Self::new(n, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use proptest::prelude::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.99);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(100, 0.0);
        for k in 0..100 {
            assert!((z.pmf(k) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_head_mass() {
        let uniform = Zipf::new(10_000, 0.0);
        let skewed = Zipf::new(10_000, 0.99);
        assert!(skewed.head_mass(100) > 5.0 * uniform.head_mass(100));
        // YCSB-style skew: top 1% of items draw a large chunk of traffic.
        assert!(
            skewed.head_mass(100) > 0.3,
            "head {}",
            skewed.head_mass(100)
        );
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(64, 1.2);
        let mut rng = rng_from_seed(5);
        let mut counts = [0u32; 64];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 7, 31] {
            let emp = f64::from(counts[k]) / f64::from(n);
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.01 + 0.1 * exp,
                "rank {k}: emp {emp} vs pmf {exp}"
            );
        }
    }

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(10, 2.0);
        let mut rng = rng_from_seed(6);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn monotone_pmf() {
        let z = Zipf::new(50, 0.8);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn clones_share_the_cdf_table() {
        let z = Zipf::new(100_000, 0.99);
        let c = z.clone();
        // O(1) clone: both handles point at the same allocation.
        assert!(Arc::ptr_eq(&z.cdf, &c.cdf));
        assert_eq!(z, c);
    }

    #[test]
    fn serde_round_trips_via_parameters() {
        let z = Zipf::new(777, 1.2);
        let v = z.to_value();
        assert_eq!(v.get_field("n"), Some(&777usize.to_value()));
        let back = Zipf::from_value(&v).expect("round trip");
        assert_eq!(back, z);

        assert!(
            Zipf::from_value(&Value::Object(vec![("n".to_string(), 0usize.to_value())])).is_err()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Empirical rank frequencies agree with `pmf` within a binomial
        /// confidence interval, across the skew regimes the rack sweep
        /// exercises (uniform, YCSB default, heavy tail).
        #[test]
        fn empirical_frequencies_match_pmf(seed in 1u64..10_000) {
            for s in [0.0, 0.99, 1.2] {
                let n_ranks = 64usize;
                let z = Zipf::new(n_ranks, s);
                let mut rng = rng_from_seed(seed);
                let draws = 50_000u32;
                let mut counts = vec![0u32; n_ranks];
                for _ in 0..draws {
                    counts[z.sample(&mut rng)] += 1;
                }
                for (k, &c) in counts.iter().enumerate() {
                    let p = z.pmf(k);
                    let emp = f64::from(c) / f64::from(draws);
                    // Binomial CI half-width: z·sqrt(p(1-p)/N) at z ≈ 5
                    // (p < 6e-7 per comparison) plus a continuity term, so
                    // 12 cases × 3 skews × 64 ranks stay flake-free.
                    let half = 5.0 * (p * (1.0 - p) / f64::from(draws)).sqrt()
                        + 1.0 / f64::from(draws);
                    prop_assert!(
                        (emp - p).abs() <= half,
                        "s={} rank={}: emp {} vs pmf {} (±{})", s, k, emp, p, half
                    );
                }
            }
        }
    }
}
