//! Cross-validation of the discrete-event simulator against the analytic
//! M/G/1 idle-period law (the Figure 1(b) foundation).

use duplexity_queueing::des::{simulate_mg1_dist, Mg1Options};
use duplexity_queueing::mg1::{idle_period_cdf, mean_idle_period_us, Mg1Analytic};
use duplexity_stats::dist::{Deterministic, Exponential, Hyperexponential};

fn opts(seed: u64) -> Mg1Options {
    Mg1Options {
        max_samples: 500_000,
        warmup: 2_000,
        seed,
        ..Mg1Options::default()
    }
}

/// The §II-A claim verified end to end: idle periods are exponential with
/// rate λ for three very different service distributions.
#[test]
fn idle_periods_exponential_for_any_service() {
    let lambda = 0.1; // per µs
    let services: [(&str, Box<dyn duplexity_stats::dist::Distribution>); 3] = [
        ("M/M/1", Box::new(Exponential::new(5.0))),
        ("M/D/1", Box::new(Deterministic::new(5.0))),
        (
            "M/H2/1",
            Box::new(Hyperexponential::from_mean_scv(5.0, 6.0)),
        ),
    ];
    for (name, service) in services {
        let r = simulate_mg1_dist(lambda, service.as_ref(), &opts(11));
        let expect = 1.0 / lambda;
        assert!(
            (r.idle.mean() - expect).abs() / expect < 0.05,
            "{name}: idle mean {} vs {expect}",
            r.idle.mean()
        );
        assert!(
            (r.idle.scv() - 1.0).abs() < 0.12,
            "{name}: idle scv {} should be ~1 (exponential)",
            r.idle.scv()
        );
    }
}

/// The simulated idle-period CDF matches the closed form at several probe
/// points (the actual Figure 1(b) series).
#[test]
fn simulated_idle_cdf_matches_analytic() {
    // A 1M QPS service (1µs mean) at 50% load.
    let q = Mg1Analytic::from_qps_load(1_000_000.0, 0.5, 1.0);
    let service = Exponential::new(q.mean_service_us);
    let r = simulate_mg1_dist(q.lambda_per_us, &service, &opts(13));
    let cdf = r.idle_histogram.cdf();
    assert!(!cdf.is_empty());
    for (i, probe_us) in [(3usize, 1.0), (7, 2.0), (19, 5.0)] {
        // Bin i's right edge is (i+1) * 0.25µs with the 0..100µs/400-bin
        // histogram.
        let right_edge = (i as f64 + 1.0) * 0.25;
        assert!((right_edge - probe_us).abs() < 0.26, "probe alignment");
        let analytic = idle_period_cdf(1_000_000.0, 0.5, right_edge);
        assert!(
            (cdf[i] - analytic).abs() < 0.03,
            "t={right_edge}µs: sim {} vs analytic {analytic}",
            cdf[i]
        );
    }
}

/// The paper's headline idle numbers drop out of the simulation, not just
/// the formula.
#[test]
fn paper_idle_anchors_from_simulation() {
    for (qps, expect_mean) in [(200_000.0, 10.0), (1_000_000.0, 2.0)] {
        let q = Mg1Analytic::from_qps_load(qps, 0.5, 1.0);
        let service = Exponential::new(q.mean_service_us);
        let r = simulate_mg1_dist(q.lambda_per_us, &service, &opts(17));
        assert!(
            (r.idle.mean() - expect_mean).abs() / expect_mean < 0.05,
            "{qps} QPS: idle mean {} vs {expect_mean}µs",
            r.idle.mean()
        );
        assert!(
            (mean_idle_period_us(qps, 0.5) - expect_mean).abs() < 1e-9,
            "analytic anchor"
        );
    }
}
