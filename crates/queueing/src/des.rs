//! Discrete-event M/G/1 FCFS simulation with BigHouse stopping.
//!
//! A single-server FCFS queue admits the Lindley recursion
//! `W(n+1) = max(0, W(n) + S(n) - A(n+1))`, which lets us simulate millions
//! of requests per second of host time while recording exactly what the
//! paper's methodology needs: per-request sojourn times (for the
//! 99th-percentile tail), idle-period durations (Figure 1(b)), and server
//! utilization. Simulation stops once the p99's 95% confidence interval is
//! within 5% relative error (§V), or at the sample cap.

use duplexity_stats::ci::ConfidenceInterval;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::histogram::Histogram;
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{rng_from_seed, SimRng};
use duplexity_stats::summary::Summary;

/// Simulation control parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1Options {
    /// Target quantile (the paper reports p99).
    pub quantile: f64,
    /// Confidence level for the stopping rule (0.95).
    pub confidence: f64,
    /// Maximum relative CI half-width before stopping (0.05).
    pub max_relative_error: f64,
    /// Requests discarded as warm-up before measuring.
    pub warmup: usize,
    /// Hard cap on measured requests.
    pub max_samples: usize,
    /// Convergence is checked every this many samples.
    pub check_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Mg1Options {
    fn default() -> Self {
        Self {
            quantile: 0.99,
            confidence: 0.95,
            max_relative_error: 0.05,
            warmup: 5_000,
            max_samples: 2_000_000,
            check_every: 20_000,
            seed: 0xB16_0915,
        }
    }
}

/// Results of one M/G/1 simulation.
#[derive(Debug, Clone)]
pub struct Mg1Result {
    /// The target quantile of sojourn time, µs.
    pub tail_us: f64,
    /// Confidence interval around [`Mg1Result::tail_us`], if computable.
    pub tail_ci: Option<ConfidenceInterval>,
    /// Mean sojourn time, µs.
    pub mean_sojourn_us: f64,
    /// Median sojourn time, µs.
    pub p50_us: f64,
    /// Server utilization (busy fraction).
    pub utilization: f64,
    /// Idle-period statistics, µs.
    pub idle: Summary,
    /// Idle-period histogram (for CDF plots), µs.
    pub idle_histogram: Histogram,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the cap.
    pub converged: bool,
}

/// Simulates an M/G/1 FCFS queue with Poisson arrivals at `lambda_per_us`
/// and service times drawn from `service`.
///
/// # Panics
///
/// Panics if `lambda_per_us` is not positive, or the implied load (from a
/// pilot service-mean estimate) is ≥ 1 — an unstable queue has no steady
/// state to report.
pub fn simulate_mg1(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    opts: &Mg1Options,
) -> Mg1Result {
    assert!(lambda_per_us > 0.0, "arrival rate must be positive");
    let mut rng = rng_from_seed(opts.seed);
    let interarrival = Exponential::from_rate(lambda_per_us);

    // Pilot: estimate the mean service time to reject unstable inputs early.
    let pilot: f64 = (0..512).map(|_| service(&mut rng)).sum::<f64>() / 512.0;
    let rho_estimate = lambda_per_us * pilot;
    assert!(
        rho_estimate < 1.0,
        "offered load {rho_estimate:.3} >= 1: the queue is unstable"
    );

    let mut wait = 0.0f64; // W(n)
    let mut sojourns = QuantileEstimator::with_capacity(opts.max_samples.min(1 << 20));
    let mut idle = Summary::new();
    let mut idle_hist = Histogram::new(0.0, 100.0, 400);
    let mut busy_time = 0.0f64;
    let mut clock = 0.0f64;
    let mut converged = false;

    let total = opts.warmup + opts.max_samples;
    for n in 0..total {
        let s = service(&mut rng);
        let measured = n >= opts.warmup;
        if measured {
            sojourns.record(wait + s);
            busy_time += s;
        }
        let a = interarrival.sample(&mut rng);
        if measured {
            clock += a;
            let slack = a - (wait + s);
            if slack > 0.0 {
                idle.record(slack);
                idle_hist.record(slack);
            }
        }
        wait = (wait + s - a).max(0.0);

        if measured && sojourns.count().is_multiple_of(opts.check_every) {
            if let Some(ci) = sojourns.quantile_ci(opts.quantile, opts.confidence) {
                if ci.converged(opts.max_relative_error) {
                    converged = true;
                    break;
                }
            }
        }
    }

    let samples = sojourns.count();
    let mean = sojourns.mean().unwrap_or(0.0);
    let tail_ci = sojourns.quantile_ci(opts.quantile, opts.confidence);
    let tail_us = sojourns.quantile(opts.quantile).unwrap_or(0.0);
    let p50_us = sojourns.quantile(0.5).unwrap_or(0.0);
    Mg1Result {
        tail_us,
        tail_ci,
        mean_sojourn_us: mean,
        p50_us,
        utilization: if clock > 0.0 {
            (busy_time / clock).min(1.0)
        } else {
            0.0
        },
        idle,
        idle_histogram: idle_hist,
        samples,
        converged,
    }
}

/// Convenience: simulate with a fixed service distribution.
pub fn simulate_mg1_dist(
    lambda_per_us: f64,
    service: &dyn Distribution,
    opts: &Mg1Options,
) -> Mg1Result {
    let mut f = |rng: &mut SimRng| service.sample(rng);
    simulate_mg1(lambda_per_us, &mut f, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1Analytic;
    use duplexity_stats::dist::Deterministic;

    fn fast_opts(seed: u64) -> Mg1Options {
        Mg1Options {
            max_samples: 400_000,
            warmup: 2_000,
            seed,
            ..Mg1Options::default()
        }
    }

    #[test]
    fn mm1_mean_sojourn_matches_analytic() {
        // M/M/1 at rho=0.5: E[T] = E[S]/(1-rho).
        let service = Exponential::new(5.0);
        let r = simulate_mg1_dist(0.1, &service, &fast_opts(1));
        let analytic = 5.0 / (1.0 - 0.5);
        assert!(
            (r.mean_sojourn_us - analytic).abs() / analytic < 0.05,
            "sim {} vs analytic {analytic}",
            r.mean_sojourn_us
        );
    }

    #[test]
    fn mm1_p99_matches_analytic() {
        // M/M/1 sojourn is exponential with mean E[S]/(1-rho):
        // p99 = mean * ln(100).
        let service = Exponential::new(2.0);
        let r = simulate_mg1_dist(0.25, &service, &fast_opts(2)); // rho=0.5
        let analytic = (2.0 / 0.5) * 100.0_f64.ln();
        assert!(
            (r.tail_us - analytic).abs() / analytic < 0.08,
            "sim {} vs analytic {analytic}",
            r.tail_us
        );
    }

    #[test]
    fn md1_wait_matches_pollaczek_khinchine() {
        let service = Deterministic::new(4.0);
        let lambda = 0.7 / 4.0;
        let r = simulate_mg1_dist(lambda, &service, &fast_opts(3));
        let analytic = Mg1Analytic {
            lambda_per_us: lambda,
            mean_service_us: 4.0,
            service_scv: 0.0,
        }
        .mean_sojourn_us();
        assert!(
            (r.mean_sojourn_us - analytic).abs() / analytic < 0.05,
            "sim {} vs analytic {analytic}",
            r.mean_sojourn_us
        );
    }

    #[test]
    fn utilization_matches_rho() {
        let service = Exponential::new(1.0);
        let r = simulate_mg1_dist(0.7, &service, &fast_opts(4));
        assert!(
            (r.utilization - 0.7).abs() < 0.03,
            "utilization {}",
            r.utilization
        );
    }

    #[test]
    fn idle_periods_are_exponential_with_rate_lambda() {
        // §II-A: idle periods ~ Exp(lambda) for ANY service distribution.
        let service = Deterministic::new(2.0); // decidedly non-exponential
        let lambda = 0.25; // rho = 0.5
        let r = simulate_mg1_dist(lambda, &service, &fast_opts(5));
        let expect_mean = 1.0 / lambda;
        assert!(
            (r.idle.mean() - expect_mean).abs() / expect_mean < 0.05,
            "idle mean {} vs {expect_mean}",
            r.idle.mean()
        );
        // Exponential: scv == 1.
        assert!(
            (r.idle.scv() - 1.0).abs() < 0.1,
            "idle scv {}",
            r.idle.scv()
        );
    }

    #[test]
    fn convergence_flag_set_on_easy_cases() {
        let service = Exponential::new(1.0);
        let r = simulate_mg1_dist(0.3, &service, &fast_opts(6));
        assert!(r.converged, "low-load M/M/1 must converge in 400k samples");
        assert!(r.tail_ci.is_some());
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overload() {
        let service = Exponential::new(2.0);
        let _ = simulate_mg1_dist(0.6, &service, &fast_opts(7)); // rho = 1.2
    }

    #[test]
    fn tail_exceeds_median_exceeds_service() {
        let service = Exponential::new(3.0);
        let r = simulate_mg1_dist(0.2, &service, &fast_opts(8)); // rho=0.6
        assert!(r.tail_us > r.p50_us);
        assert!(r.mean_sojourn_us > 3.0);
    }

    #[test]
    fn higher_load_means_higher_tail() {
        let service = Exponential::new(1.0);
        let lo = simulate_mg1_dist(0.3, &service, &fast_opts(9));
        let hi = simulate_mg1_dist(0.7, &service, &fast_opts(9));
        assert!(
            hi.tail_us > 1.5 * lo.tail_us,
            "lo {} hi {}",
            lo.tail_us,
            hi.tail_us
        );
    }
}
