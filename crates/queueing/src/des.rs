//! Discrete-event M/G/1 FCFS simulation with BigHouse stopping.
//!
//! A single-server FCFS queue admits the Lindley recursion
//! `W(n+1) = max(0, W(n) + S(n) - A(n+1))`, which lets us simulate millions
//! of requests per second of host time while recording exactly what the
//! paper's methodology needs: per-request sojourn times (for the
//! 99th-percentile tail), idle-period durations (Figure 1(b)), and server
//! utilization. Simulation stops once the p99's 95% confidence interval is
//! within 5% relative error (§V), or at the sample cap.

use duplexity_net::{trace_fault_events, EventKind, FaultPlan, LatencyDist};
use duplexity_obs::{TraceEvent, Tracer};
use duplexity_stats::ci::ConfidenceInterval;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::histogram::Histogram;
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{draw_batch, rng_from_seed, SimRng};
use duplexity_stats::summary::Summary;

/// Typed instability verdict: the pilot service-mean estimate implies an
/// offered load at or past 1, so the queue has no steady state to report.
///
/// Experiment drivers treat this as a *saturated cell* (rendered as `sat` /
/// `inf`), not a crash: one hopeless grid point must never abort a
/// multi-cell sweep, which probes loads arbitrarily close to ρ → 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unstable {
    /// The pilot estimate of the offered load ρ (≥ 1).
    pub rho_estimate: f64,
}

impl std::fmt::Display for Unstable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "offered load {:.3} >= 1: the queue is unstable",
            self.rho_estimate
        )
    }
}

impl std::error::Error for Unstable {}

/// Simulation control parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1Options {
    /// Target quantile (the paper reports p99).
    pub quantile: f64,
    /// Confidence level for the stopping rule (0.95).
    pub confidence: f64,
    /// Maximum relative CI half-width before stopping (0.05).
    pub max_relative_error: f64,
    /// Requests discarded as warm-up before measuring.
    pub warmup: usize,
    /// Hard cap on measured requests.
    pub max_samples: usize,
    /// Convergence is checked every this many samples.
    pub check_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Mg1Options {
    fn default() -> Self {
        Self {
            quantile: 0.99,
            confidence: 0.95,
            max_relative_error: 0.05,
            warmup: 5_000,
            max_samples: 2_000_000,
            check_every: 20_000,
            seed: 0xB16_0915,
        }
    }
}

/// Results of one M/G/1 simulation.
#[derive(Debug, Clone)]
pub struct Mg1Result {
    /// The target quantile of sojourn time, µs.
    pub tail_us: f64,
    /// Confidence interval around [`Mg1Result::tail_us`], if computable.
    pub tail_ci: Option<ConfidenceInterval>,
    /// Mean sojourn time, µs.
    pub mean_sojourn_us: f64,
    /// Median sojourn time, µs.
    pub p50_us: f64,
    /// Server utilization (busy fraction).
    pub utilization: f64,
    /// Sojourn-time statistics, µs (mean/variance/count feed the
    /// [`mean_ci`](duplexity_stats::ci::mean_ci) cross-checks).
    pub sojourn: Summary,
    /// Idle-period statistics, µs.
    pub idle: Summary,
    /// Idle-period histogram (for CDF plots), µs.
    pub idle_histogram: Histogram,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the cap.
    pub converged: bool,
}

/// DES traces are stamped in nanosecond ticks: one simulated microsecond is
/// 1000 trace ticks, so sub-µs waits stay visible after rounding.
const DES_TICKS_PER_US: f64 = 1000.0;

/// Converts a simulated-µs timestamp to the DES trace-tick domain.
fn ns_ticks(us: f64) -> u64 {
    (us * DES_TICKS_PER_US).round().max(0.0) as u64
}

/// Core Lindley-recursion loop shared by the traced and untraced entry
/// points. `service` receives the current request's absolute arrival time
/// (simulated µs since the run began; `0.0` during the pilot) so fault
/// layers can stamp trace events in the same clock domain as the request
/// events emitted here.
///
/// Determinism contract: the tracer never touches the RNG. The arrival
/// clock is a pure-arithmetic accumulator over the same interarrival draws
/// the recursion already consumes, so enabling tracing cannot perturb the
/// sample path.
fn simulate_mg1_inner(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng, f64) -> f64,
    opts: &Mg1Options,
    tracer: &Tracer,
) -> Result<Mg1Result, Unstable> {
    assert!(lambda_per_us > 0.0, "arrival rate must be positive");
    tracer.set_ticks_per_us(DES_TICKS_PER_US);
    let traced = tracer.is_enabled();
    let mut rng = rng_from_seed(opts.seed);
    let interarrival = Exponential::from_rate(lambda_per_us);

    // Pilot: estimate the mean service time to reject unstable inputs
    // early. One batched pass — bitwise the same stream as 512 sequential
    // draws (`draw_batch` is defined as the sequential loop).
    let mut pilot_buf = Vec::new();
    draw_batch(&mut rng, 512, &mut pilot_buf, |r| service(r, 0.0));
    let pilot: f64 = pilot_buf.iter().sum::<f64>() / 512.0;
    let rho_estimate = lambda_per_us * pilot;
    if rho_estimate >= 1.0 {
        return Err(Unstable { rho_estimate });
    }

    let mut wait = 0.0f64; // W(n)
    let mut sojourns = QuantileEstimator::with_capacity(opts.max_samples.min(1 << 20));
    let mut sojourn_sum = Summary::new();
    let mut idle = Summary::new();
    let mut idle_hist = Histogram::new(0.0, 100.0, 400);
    let mut busy_time = 0.0f64;
    let mut clock = 0.0f64;
    let mut converged = false;
    // Absolute arrival time of the current request, over *all* requests
    // (warm-up included) so trace timestamps share one monotone clock.
    let mut arrive_clock = 0.0f64;

    let total = opts.warmup + opts.max_samples;
    for n in 0..total {
        let s = service(&mut rng, arrive_clock);
        let measured = n >= opts.warmup;
        if measured {
            sojourns.record(wait + s);
            sojourn_sum.record(wait + s);
            busy_time += s;
            if traced {
                let at = ns_ticks(arrive_clock);
                let done = ns_ticks(arrive_clock + wait + s);
                tracer.emit(|| TraceEvent::RequestArrive { at });
                tracer.emit(|| TraceEvent::RequestComplete {
                    at: done,
                    latency: done.saturating_sub(at),
                });
                tracer.count("des/requests", 1);
                tracer.observe("des/sojourn_us", wait + s);
            }
        }
        let a = interarrival.sample(&mut rng);
        arrive_clock += a;
        if measured {
            clock += a;
            let slack = a - (wait + s);
            if slack > 0.0 {
                idle.record(slack);
                idle_hist.record(slack);
            }
        }
        wait = (wait + s - a).max(0.0);

        if measured && sojourns.count().is_multiple_of(opts.check_every) {
            if let Some(ci) = sojourns.quantile_ci(opts.quantile, opts.confidence) {
                if ci.converged(opts.max_relative_error) {
                    converged = true;
                    break;
                }
            }
        }
    }

    let samples = sojourns.count();
    let mean = sojourns.mean().unwrap_or(0.0);
    let tail_ci = sojourns.quantile_ci(opts.quantile, opts.confidence);
    let tail_us = sojourns.quantile(opts.quantile).unwrap_or(0.0);
    let p50_us = sojourns.quantile(0.5).unwrap_or(0.0);
    Ok(Mg1Result {
        tail_us,
        tail_ci,
        mean_sojourn_us: mean,
        p50_us,
        utilization: if clock > 0.0 {
            (busy_time / clock).min(1.0)
        } else {
            0.0
        },
        sojourn: sojourn_sum,
        idle,
        idle_histogram: idle_hist,
        samples,
        converged,
    })
}

/// Simulates an M/G/1 FCFS queue with Poisson arrivals at `lambda_per_us`
/// and service times drawn from `service`.
///
/// # Panics
///
/// Panics if `lambda_per_us` is not positive, or the implied load (from a
/// pilot service-mean estimate) is ≥ 1 — an unstable queue has no steady
/// state to report. Sweep drivers that probe near saturation should call
/// [`try_simulate_mg1`] instead and render the [`Unstable`] cell.
pub fn simulate_mg1(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    opts: &Mg1Options,
) -> Mg1Result {
    try_simulate_mg1(lambda_per_us, service, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_mg1`]: a pilot load estimate ≥ 1 yields
/// `Err(Unstable)` instead of aborting, so one saturated cell cannot kill a
/// whole sweep grid.
pub fn try_simulate_mg1(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    opts: &Mg1Options,
) -> Result<Mg1Result, Unstable> {
    try_simulate_mg1_traced(lambda_per_us, service, opts, &Tracer::disabled())
}

/// [`simulate_mg1`] with a cycle-domain tracer attached: every measured
/// request emits a [`TraceEvent::RequestArrive`]/[`TraceEvent::RequestComplete`]
/// pair stamped in nanosecond ticks (1000 ticks per simulated µs; the
/// tracer's `ticks_per_us` is set accordingly).
///
/// With a disabled tracer this is `simulate_mg1` exactly; with an enabled
/// one the RNG draw sequence — and therefore every statistic in the
/// returned [`Mg1Result`] — is still bit-identical, because timestamps come
/// from a pure-arithmetic accumulator over draws already consumed.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_mg1`].
pub fn simulate_mg1_traced(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    opts: &Mg1Options,
    tracer: &Tracer,
) -> Mg1Result {
    try_simulate_mg1_traced(lambda_per_us, service, opts, tracer).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_mg1_traced`]: saturation yields `Err(Unstable)`.
pub fn try_simulate_mg1_traced(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    opts: &Mg1Options,
    tracer: &Tracer,
) -> Result<Mg1Result, Unstable> {
    let mut f = |rng: &mut SimRng, _now_us: f64| service(rng);
    simulate_mg1_inner(lambda_per_us, &mut f, opts, tracer)
}

/// Convenience: simulate with a fixed service distribution.
pub fn simulate_mg1_dist(
    lambda_per_us: f64,
    service: &dyn Distribution,
    opts: &Mg1Options,
) -> Mg1Result {
    let mut f = |rng: &mut SimRng| service.sample(rng);
    simulate_mg1(lambda_per_us, &mut f, opts)
}

/// Fault-event totals accumulated by [`simulate_mg1_faulted`].
///
/// Counts include the 512 pilot draws the stability check consumes, so
/// `events` slightly exceeds the measured-sample count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultTally {
    /// Stall events routed through the fault layer.
    pub events: u64,
    /// Attempts issued (> `events` when drops force retries).
    pub attempts: u64,
    /// Legs lost to drops.
    pub dropped_legs: u64,
    /// Legs degraded by the slow-replica mode.
    pub slowed_legs: u64,
    /// Events abandoned after the attempt cap.
    pub failed: u64,
}

/// Simulates an M/G/1 queue whose service time is `compute(rng)` plus one
/// microsecond event: a `stall_leg` latency routed through `plan`'s fault
/// layer.
///
/// Timeout and retry timers surface as DES events the natural M/G/1 way:
/// the server stays occupied while the request waits out a timeout, sleeps
/// a backoff, and reissues, so dropped legs inflate both that request's
/// sojourn and the queueing delay of everyone behind it. With
/// [`FaultPlan::none`] the sample path — every RNG draw — is identical to
/// [`simulate_mg1`] with a `compute + stall` service closure.
///
/// # Panics
///
/// Panics if `lambda_per_us` is not positive or the implied effective load
/// is ≥ 1 (see [`simulate_mg1`]).
pub fn simulate_mg1_faulted(
    lambda_per_us: f64,
    compute: &mut dyn FnMut(&mut SimRng) -> f64,
    stall_leg: &LatencyDist,
    plan: &FaultPlan,
    opts: &Mg1Options,
) -> (Mg1Result, FaultTally) {
    simulate_mg1_faulted_traced(
        lambda_per_us,
        compute,
        stall_leg,
        plan,
        opts,
        &Tracer::disabled(),
    )
}

/// Non-panicking [`simulate_mg1_faulted`]: saturation yields `Err(Unstable)`.
pub fn try_simulate_mg1_faulted(
    lambda_per_us: f64,
    compute: &mut dyn FnMut(&mut SimRng) -> f64,
    stall_leg: &LatencyDist,
    plan: &FaultPlan,
    opts: &Mg1Options,
) -> Result<(Mg1Result, FaultTally), Unstable> {
    try_simulate_mg1_faulted_traced(
        lambda_per_us,
        compute,
        stall_leg,
        plan,
        opts,
        &Tracer::disabled(),
    )
}

/// [`simulate_mg1_faulted`] with a tracer attached: request events as in
/// [`simulate_mg1_traced`], plus per-event fault instants
/// (inject/retry/timeout) stamped at the arrival time of the request whose
/// service leg suffered the fault, in the same nanosecond-tick domain.
/// Fault events from the 512-draw stability pilot are stamped at tick 0.
///
/// The tracer consumes no RNG draws: results and tallies are bit-identical
/// to [`simulate_mg1_faulted`] regardless of tracing.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_mg1`].
pub fn simulate_mg1_faulted_traced(
    lambda_per_us: f64,
    compute: &mut dyn FnMut(&mut SimRng) -> f64,
    stall_leg: &LatencyDist,
    plan: &FaultPlan,
    opts: &Mg1Options,
    tracer: &Tracer,
) -> (Mg1Result, FaultTally) {
    try_simulate_mg1_faulted_traced(lambda_per_us, compute, stall_leg, plan, opts, tracer)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`simulate_mg1_faulted_traced`]: saturation yields
/// `Err(Unstable)`.
pub fn try_simulate_mg1_faulted_traced(
    lambda_per_us: f64,
    compute: &mut dyn FnMut(&mut SimRng) -> f64,
    stall_leg: &LatencyDist,
    plan: &FaultPlan,
    opts: &Mg1Options,
    tracer: &Tracer,
) -> Result<(Mg1Result, FaultTally), Unstable> {
    let mut tally = FaultTally::default();
    let identity = plan.is_none();
    let result = {
        let mut service = |rng: &mut SimRng, now_us: f64| {
            let c = compute(rng);
            if identity {
                return c + stall_leg.sample(rng);
            }
            let ev = plan.sample_event(EventKind::RemoteMemory, rng, |r| stall_leg.sample(r));
            tally.events += 1;
            tally.attempts += u64::from(ev.attempts);
            tally.dropped_legs += u64::from(ev.dropped_legs);
            tally.slowed_legs += u64::from(ev.slowed_legs);
            tally.failed += u64::from(!ev.completed);
            trace_fault_events(&ev, ns_ticks(now_us), tracer);
            c + ev.latency_us
        };
        simulate_mg1_inner(lambda_per_us, &mut service, opts, tracer)?
    };
    Ok((result, tally))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1Analytic;
    use duplexity_stats::dist::Deterministic;

    fn fast_opts(seed: u64) -> Mg1Options {
        Mg1Options {
            max_samples: 400_000,
            warmup: 2_000,
            seed,
            ..Mg1Options::default()
        }
    }

    #[test]
    fn mm1_mean_sojourn_matches_analytic() {
        // M/M/1 at rho=0.5: E[T] = E[S]/(1-rho).
        let service = Exponential::new(5.0);
        let r = simulate_mg1_dist(0.1, &service, &fast_opts(1));
        let analytic = 5.0 / (1.0 - 0.5);
        assert!(
            (r.mean_sojourn_us - analytic).abs() / analytic < 0.05,
            "sim {} vs analytic {analytic}",
            r.mean_sojourn_us
        );
    }

    #[test]
    fn mm1_p99_matches_analytic() {
        // M/M/1 sojourn is exponential with mean E[S]/(1-rho):
        // p99 = mean * ln(100).
        let service = Exponential::new(2.0);
        let r = simulate_mg1_dist(0.25, &service, &fast_opts(2)); // rho=0.5
        let analytic = (2.0 / 0.5) * 100.0_f64.ln();
        assert!(
            (r.tail_us - analytic).abs() / analytic < 0.08,
            "sim {} vs analytic {analytic}",
            r.tail_us
        );
    }

    #[test]
    fn md1_wait_matches_pollaczek_khinchine() {
        let service = Deterministic::new(4.0);
        let lambda = 0.7 / 4.0;
        let r = simulate_mg1_dist(lambda, &service, &fast_opts(3));
        let analytic = Mg1Analytic {
            lambda_per_us: lambda,
            mean_service_us: 4.0,
            service_scv: 0.0,
        }
        .mean_sojourn_us();
        assert!(
            (r.mean_sojourn_us - analytic).abs() / analytic < 0.05,
            "sim {} vs analytic {analytic}",
            r.mean_sojourn_us
        );
    }

    #[test]
    fn utilization_matches_rho() {
        let service = Exponential::new(1.0);
        let r = simulate_mg1_dist(0.7, &service, &fast_opts(4));
        assert!(
            (r.utilization - 0.7).abs() < 0.03,
            "utilization {}",
            r.utilization
        );
    }

    #[test]
    fn idle_periods_are_exponential_with_rate_lambda() {
        // §II-A: idle periods ~ Exp(lambda) for ANY service distribution.
        let service = Deterministic::new(2.0); // decidedly non-exponential
        let lambda = 0.25; // rho = 0.5
        let r = simulate_mg1_dist(lambda, &service, &fast_opts(5));
        let expect_mean = 1.0 / lambda;
        assert!(
            (r.idle.mean() - expect_mean).abs() / expect_mean < 0.05,
            "idle mean {} vs {expect_mean}",
            r.idle.mean()
        );
        // Exponential: scv == 1.
        assert!(
            (r.idle.scv() - 1.0).abs() < 0.1,
            "idle scv {}",
            r.idle.scv()
        );
    }

    #[test]
    fn convergence_flag_set_on_easy_cases() {
        let service = Exponential::new(1.0);
        let r = simulate_mg1_dist(0.3, &service, &fast_opts(6));
        assert!(r.converged, "low-load M/M/1 must converge in 400k samples");
        assert!(r.tail_ci.is_some());
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overload() {
        let service = Exponential::new(2.0);
        let _ = simulate_mg1_dist(0.6, &service, &fast_opts(7)); // rho = 1.2
    }

    #[test]
    fn try_variant_reports_overload_as_typed_error() {
        // rho = 1.2: the try_ entry point must return Unstable, not panic,
        // so sweep drivers can mark the cell saturated and continue.
        let mut svc = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
        let err = try_simulate_mg1(0.6, &mut svc, &fast_opts(7)).unwrap_err();
        assert!(err.rho_estimate >= 1.0, "rho {}", err.rho_estimate);
        assert!(err.to_string().contains("unstable"));
        // A stable load through the same entry point succeeds.
        let ok = try_simulate_mg1(0.25, &mut svc, &fast_opts(7)).unwrap();
        assert!(ok.samples > 0);
    }

    #[test]
    fn tail_exceeds_median_exceeds_service() {
        let service = Exponential::new(3.0);
        let r = simulate_mg1_dist(0.2, &service, &fast_opts(8)); // rho=0.6
        assert!(r.tail_us > r.p50_us);
        assert!(r.mean_sojourn_us > 3.0);
    }

    #[test]
    fn faulted_identity_matches_plain_sample_path() {
        // FaultPlan::none must reproduce simulate_mg1 draw-for-draw.
        let leg = LatencyDist::Exponential { mean_us: 1.0 };
        let mut compute = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
        let (faulted, tally) =
            simulate_mg1_faulted(0.1, &mut compute, &leg, &FaultPlan::none(), &fast_opts(10));
        let mut plain_service = |rng: &mut SimRng| {
            Exponential::new(2.0).sample(rng)
                + LatencyDist::Exponential { mean_us: 1.0 }.sample(rng)
        };
        let plain = simulate_mg1(0.1, &mut plain_service, &fast_opts(10));
        assert_eq!(faulted.tail_us, plain.tail_us);
        assert_eq!(faulted.mean_sojourn_us, plain.mean_sojourn_us);
        assert_eq!(faulted.sojourn, plain.sojourn);
        assert_eq!(tally, FaultTally::default());
    }

    #[test]
    fn drops_with_retries_inflate_the_tail() {
        use duplexity_net::RetryPolicy;
        let leg = LatencyDist::Exponential { mean_us: 2.0 };
        let plan = FaultPlan::none()
            .with_drop(0.1)
            .with_retry(RetryPolicy::new(4, 6.0, 1.0, 8.0));
        let mut compute = |_: &mut SimRng| 1.0;
        let (clean, _) =
            simulate_mg1_faulted(0.1, &mut compute, &leg, &FaultPlan::none(), &fast_opts(11));
        let (faulted, tally) = simulate_mg1_faulted(0.1, &mut compute, &leg, &plan, &fast_opts(11));
        assert!(
            faulted.tail_us > clean.tail_us,
            "faulted p99 {} must exceed clean {}",
            faulted.tail_us,
            clean.tail_us
        );
        assert!(tally.events > 0);
        assert!(
            tally.attempts > tally.events,
            "10% drops must force retries"
        );
        let drop_rate = tally.dropped_legs as f64 / tally.attempts as f64;
        assert!((drop_rate - 0.1).abs() < 0.01, "drop rate {drop_rate}");
    }

    #[test]
    fn sojourn_summary_tracks_the_estimator() {
        let service = Exponential::new(1.0);
        let r = simulate_mg1_dist(0.5, &service, &fast_opts(12));
        assert_eq!(r.sojourn.count(), r.samples as u64);
        assert!((r.sojourn.mean() - r.mean_sojourn_us).abs() < 1e-9);
    }

    #[test]
    fn tracing_does_not_perturb_results_and_records_requests() {
        let mut svc = |rng: &mut SimRng| Exponential::new(1.0).sample(rng);
        let opts = Mg1Options {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(42)
        };
        let plain = simulate_mg1(0.5, &mut svc, &opts);
        let tracer = Tracer::enabled(1 << 20, 1000.0);
        let traced = simulate_mg1_traced(0.5, &mut svc, &opts, &tracer);
        assert_eq!(plain.tail_us, traced.tail_us);
        assert_eq!(plain.sojourn, traced.sojourn);
        assert_eq!(plain.samples, traced.samples);
        let log = tracer.take();
        assert_eq!(log.ticks_per_us, 1000.0);
        let arrivals = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestArrive { .. }))
            .count();
        assert_eq!(arrivals, traced.samples);
        assert_eq!(log.registry.counter("des/requests"), traced.samples as u64);
    }

    #[test]
    fn traced_faults_match_untraced_and_emit_instants() {
        use duplexity_net::RetryPolicy;
        let leg = LatencyDist::Exponential { mean_us: 2.0 };
        let plan = FaultPlan::none()
            .with_drop(0.1)
            .with_retry(RetryPolicy::new(4, 6.0, 1.0, 8.0));
        let mut compute = |_: &mut SimRng| 1.0;
        let opts = Mg1Options {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(11)
        };
        let (plain, plain_tally) = simulate_mg1_faulted(0.1, &mut compute, &leg, &plan, &opts);
        let tracer = Tracer::enabled(1 << 20, 1000.0);
        let (traced, traced_tally) =
            simulate_mg1_faulted_traced(0.1, &mut compute, &leg, &plan, &opts, &tracer);
        assert_eq!(plain.tail_us, traced.tail_us);
        assert_eq!(plain_tally, traced_tally);
        let log = tracer.take();
        let injects = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FaultInject { .. }))
            .count() as u64;
        assert!(
            injects > 0,
            "10% drops over 5.5k events must inject at least once"
        );
    }

    #[test]
    fn higher_load_means_higher_tail() {
        let service = Exponential::new(1.0);
        let lo = simulate_mg1_dist(0.3, &service, &fast_opts(9));
        let hi = simulate_mg1_dist(0.7, &service, &fast_opts(9));
        assert!(
            hi.tail_us > 1.5 * lo.tail_us,
            "lo {} hi {}",
            lo.tail_us,
            hi.tail_us
        );
    }
}
