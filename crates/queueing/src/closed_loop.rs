//! The Figure 1(a) closed-loop stall model.
//!
//! §II-A: "We consider a single-job closed-loop model representing a period
//! of computation leading to a µs-scale stall event ... The modeled system
//! alternates between periods of computation and stalls. During stalls, CPU
//! time is wasted, reducing utilization."
//!
//! For a deterministic alternation the utilization is simply
//! `compute / (compute + stall)`; the figure's message is in the *shape* of
//! that surface — utilization collapses precisely when stalls and compute
//! are of the same order (the killer-microsecond regime).

use serde::{Deserialize, Serialize};

/// Utilization of a closed-loop system alternating `compute_us` of work with
/// `stall_us` of waiting.
///
/// # Panics
///
/// Panics if `compute_us` is not positive or `stall_us` is negative.
///
/// # Examples
///
/// ```
/// use duplexity_queueing::closed_loop_utilization;
///
/// // DRAM-scale stalls between µs-scale compute: negligible loss.
/// assert!(closed_loop_utilization(2.0, 0.0001) > 0.9999);
/// // Equal compute and stall: half the CPU is wasted.
/// assert_eq!(closed_loop_utilization(1.0, 1.0), 0.5);
/// ```
#[must_use]
pub fn closed_loop_utilization(compute_us: f64, stall_us: f64) -> f64 {
    assert!(compute_us > 0.0, "compute must be positive");
    assert!(stall_us >= 0.0, "stall must be non-negative");
    compute_us / (compute_us + stall_us)
}

/// One cell of the Figure 1(a) utilization surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceCell {
    /// Stall duration, µs.
    pub stall_us: f64,
    /// Compute interval between stalls, µs.
    pub compute_us: f64,
    /// Resulting utilization in `\[0, 1\]`.
    pub utilization: f64,
}

/// Computes the Figure 1(a) surface over logarithmic grids of stall duration
/// and compute interval (both in µs).
///
/// `points_per_decade` controls the resolution; the figure spans
/// 0.01–100µs on both axes.
#[must_use]
pub fn utilization_surface(points_per_decade: usize) -> Vec<SurfaceCell> {
    let grid = log_grid(0.01, 100.0, points_per_decade);
    let mut cells = Vec::with_capacity(grid.len() * grid.len());
    for &stall in &grid {
        for &compute in &grid {
            cells.push(SurfaceCell {
                stall_us: stall,
                compute_us: compute,
                utilization: closed_loop_utilization(compute, stall),
            });
        }
    }
    cells
}

/// Logarithmically spaced grid from `lo` to `hi` inclusive.
fn log_grid(lo: f64, hi: f64, points_per_decade: usize) -> Vec<f64> {
    let decades = (hi / lo).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize;
    (0..=n)
        .map(|i| lo * 10f64.powf(i as f64 / points_per_decade as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits() {
        assert!(closed_loop_utilization(100.0, 0.001) > 0.99999);
        assert!(closed_loop_utilization(0.001, 100.0) < 0.0001);
    }

    #[test]
    fn equal_order_collapses() {
        // The killer-microsecond claim: same-order compute and stall wastes
        // half the machine.
        let u = closed_loop_utilization(1.0, 1.0);
        assert_eq!(u, 0.5);
        // A 10µs stall every 1µs of compute: <10% utilization.
        assert!(closed_loop_utilization(1.0, 10.0) < 0.1);
    }

    #[test]
    fn surface_is_monotone_in_both_axes() {
        let cells = utilization_surface(3);
        for w in cells.windows(2) {
            if w[0].stall_us == w[1].stall_us {
                // More compute between stalls => higher utilization.
                assert!(w[1].utilization >= w[0].utilization);
            }
        }
        // And for fixed compute, more stall => lower utilization.
        let grid_len = (cells.len() as f64).sqrt() as usize;
        for i in 0..cells.len() - grid_len {
            assert!(cells[i].utilization >= cells[i + grid_len].utilization - 1e-12);
        }
    }

    #[test]
    fn surface_covers_four_decades() {
        let cells = utilization_surface(2);
        let min = cells
            .iter()
            .map(|c| c.stall_us)
            .fold(f64::INFINITY, f64::min);
        let max = cells.iter().map(|c| c.stall_us).fold(0.0, f64::max);
        assert!(min <= 0.011);
        assert!(max >= 99.0);
    }

    #[test]
    fn grid_is_log_spaced() {
        let g = log_grid(0.01, 100.0, 1);
        assert_eq!(g.len(), 5);
        assert!((g[1] / g[0] - 10.0).abs() < 1e-9);
    }
}
