//! Analytic M/M/k (Erlang-C) results.
//!
//! Oracle for the [`cluster`](crate::cluster) simulator: a k-server farm
//! with a *central* FCFS queue, Poisson arrivals, and exponential service
//! admits the Erlang-C closed form. The simulator's least-work balancer is
//! exactly equivalent to the central queue (every request starts as early
//! as possible), so its mean wait must match `C(k, a) / (kµ − λ)` within
//! statistical error — the cross-check the cluster test-suite runs.

use serde::{Deserialize, Serialize};

/// Analytic M/M/k queue description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmkAnalytic {
    /// Aggregate arrival rate λ, requests per µs.
    pub lambda_per_us: f64,
    /// Mean service time E\[S\] = 1/µ at one server, µs.
    pub mean_service_us: f64,
    /// Number of servers k.
    pub servers: usize,
}

impl MmkAnalytic {
    /// Offered load per server, ρ = λ E\[S\] / k.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.offered_erlangs() / self.servers as f64
    }

    /// Total offered traffic a = λ E\[S\] in Erlangs.
    #[must_use]
    pub fn offered_erlangs(&self) -> f64 {
        self.lambda_per_us * self.mean_service_us
    }

    /// Erlang-C: the probability an arriving request must queue,
    /// `C(k, a)`, computed with the numerically stable iterative sum
    /// (no explicit factorials, so large k does not overflow).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or the system is not stable (ρ ≥ 1).
    #[must_use]
    pub fn erlang_c(&self) -> f64 {
        let k = self.servers;
        assert!(k >= 1, "need at least one server");
        let a = self.offered_erlangs();
        let rho = self.rho();
        assert!(rho < 1.0, "Erlang-C needs rho < 1, got {rho}");
        // sum_{j=0}^{k-1} a^j/j! via the running term t_j = a^j/j!.
        let mut term = 1.0f64;
        let mut sum = 1.0f64;
        for j in 1..k {
            term *= a / j as f64;
            sum += term;
        }
        // a^k/k! = t_{k-1} * a/k; the queueing term scales it by 1/(1-rho).
        let tail = term * a / k as f64 / (1.0 - rho);
        tail / (sum + tail)
    }

    /// Mean waiting time E\[W\] = C(k, a) / (kµ − λ) in µs.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MmkAnalytic::erlang_c`].
    #[must_use]
    pub fn mean_wait_us(&self) -> f64 {
        let mu = 1.0 / self.mean_service_us;
        self.erlang_c() / (self.servers as f64 * mu - self.lambda_per_us)
    }

    /// Mean sojourn (response) time E\[T\] = E\[W\] + E\[S\] in µs.
    #[must_use]
    pub fn mean_sojourn_us(&self) -> f64 {
        self.mean_wait_us() + self.mean_service_us
    }
}

/// Analytic two-class non-preemptive priority M/M/1 queue (Cobham).
///
/// Oracle for the cluster duplication engine's low-priority duplicate
/// queues: on a single server, a D-Stage plan (`Duplicate{2}`, no purge,
/// low-priority duplicates) is exactly a two-class priority queue — the
/// primaries are class 1 (high), the duplicates class 2 (low), and a
/// queued duplicate never starts before a queued primary.
///
/// With exponential service (`E[S²] = 2·E[S]²`) the mean residual work in
/// service is `R = λ₁E[S₁]² + λ₂E[S₂]²` and Cobham's formulas give
///
/// ```text
/// W₁ = R / (1 − ρ₁)
/// W₂ = R / ((1 − ρ₁)(1 − ρ₁ − ρ₂))
/// ```
///
/// **Caveat for the duplicate-queue cross-check:** the engine's duplicates
/// arrive in a batch *with* their primary, not as an independent Poisson
/// stream. `W₁` survives this — primary arrivals are Poisson (PASTA) and a
/// batch-mate duplicate always queues behind its own primary, so the
/// high-priority class sees exactly the Cobham mean — but `W₂` assumes
/// independent low-priority Poisson arrivals and is only an approximation
/// there. The simulation test therefore asserts class 1 against the
/// closed form and only a weak ordering for class 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1PriorityAnalytic {
    /// High-priority (class 1) arrival rate λ₁, requests per µs.
    pub lambda_high_per_us: f64,
    /// High-priority mean service time E\[S₁\], µs.
    pub mean_service_high_us: f64,
    /// Low-priority (class 2) arrival rate λ₂, requests per µs.
    pub lambda_low_per_us: f64,
    /// Low-priority mean service time E\[S₂\], µs.
    pub mean_service_low_us: f64,
}

impl Mm1PriorityAnalytic {
    /// High-priority load ρ₁ = λ₁ E\[S₁\].
    #[must_use]
    pub fn rho_high(&self) -> f64 {
        self.lambda_high_per_us * self.mean_service_high_us
    }

    /// Low-priority load ρ₂ = λ₂ E\[S₂\].
    #[must_use]
    pub fn rho_low(&self) -> f64 {
        self.lambda_low_per_us * self.mean_service_low_us
    }

    /// Total load ρ = ρ₁ + ρ₂.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho_high() + self.rho_low()
    }

    /// Mean residual work in service seen by an arrival,
    /// `R = Σᵢ λᵢ E[Sᵢ²] / 2` with exponential `E[Sᵢ²] = 2 E[Sᵢ]²`, µs.
    #[must_use]
    pub fn residual_us(&self) -> f64 {
        self.lambda_high_per_us * self.mean_service_high_us.powi(2)
            + self.lambda_low_per_us * self.mean_service_low_us.powi(2)
    }

    /// Mean high-priority wait `W₁ = R / (1 − ρ₁)`, µs.
    ///
    /// # Panics
    ///
    /// Panics if the high-priority class alone saturates (ρ₁ ≥ 1).
    #[must_use]
    pub fn mean_wait_high_us(&self) -> f64 {
        let rho1 = self.rho_high();
        assert!(rho1 < 1.0, "priority class saturates: rho1 = {rho1}");
        self.residual_us() / (1.0 - rho1)
    }

    /// Mean low-priority wait `W₂ = R / ((1 − ρ₁)(1 − ρ))`, µs.
    ///
    /// # Panics
    ///
    /// Panics if the queue saturates (ρ ≥ 1).
    #[must_use]
    pub fn mean_wait_low_us(&self) -> f64 {
        let (rho1, rho) = (self.rho_high(), self.rho());
        assert!(rho < 1.0, "queue saturates: rho = {rho}");
        self.residual_us() / ((1.0 - rho1) * (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1Analytic;

    #[test]
    fn k_equals_one_reduces_to_mm1() {
        let mmk = MmkAnalytic {
            lambda_per_us: 0.3,
            mean_service_us: 2.0,
            servers: 1,
        };
        let mm1 = Mg1Analytic {
            lambda_per_us: 0.3,
            mean_service_us: 2.0,
            service_scv: 1.0,
        };
        // C(1, a) = rho, so the waits coincide exactly.
        assert!((mmk.erlang_c() - mmk.rho()).abs() < 1e-12);
        assert!((mmk.mean_wait_us() - mm1.mean_wait_us()).abs() < 1e-9);
    }

    #[test]
    fn textbook_erlang_c_anchor() {
        // Classic anchor: k = 2, a = 1 (rho = 0.5) gives C = 1/3.
        let q = MmkAnalytic {
            lambda_per_us: 1.0,
            mean_service_us: 1.0,
            servers: 2,
        };
        assert!((q.erlang_c() - 1.0 / 3.0).abs() < 1e-12, "{}", q.erlang_c());
        // E[W] = C / (k mu - lambda) = (1/3) / 1 = 1/3.
        assert!((q.mean_wait_us() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pooling_beats_split_queues() {
        // A k-server pool waits less than k separate M/M/1 queues each fed
        // lambda/k — the classic resource-pooling result.
        let pooled = MmkAnalytic {
            lambda_per_us: 2.8,
            mean_service_us: 1.0,
            servers: 4,
        };
        let split = Mg1Analytic {
            lambda_per_us: 0.7,
            mean_service_us: 1.0,
            service_scv: 1.0,
        };
        assert!(pooled.mean_wait_us() < split.mean_wait_us());
    }

    #[test]
    fn wait_diverges_near_saturation() {
        let mk = |rho: f64| MmkAnalytic {
            lambda_per_us: 4.0 * rho,
            mean_service_us: 1.0,
            servers: 4,
        };
        assert!(mk(0.99).mean_wait_us() > 20.0 * mk(0.7).mean_wait_us());
    }

    #[test]
    fn priority_with_no_low_class_reduces_to_mm1() {
        let p = Mm1PriorityAnalytic {
            lambda_high_per_us: 0.35,
            mean_service_high_us: 2.0,
            lambda_low_per_us: 0.0,
            mean_service_low_us: 1.0,
        };
        let mm1 = Mg1Analytic {
            lambda_per_us: 0.35,
            mean_service_us: 2.0,
            service_scv: 1.0,
        };
        assert!((p.mean_wait_high_us() - mm1.mean_wait_us()).abs() < 1e-12);
        // A tagged low-priority arrival is still overtaken by every
        // high-priority arrival during its own wait, so even at lambda2
        // -> 0 its wait is W1 / (1 - rho1), strictly worse.
        let expect = p.mean_wait_high_us() / (1.0 - p.rho_high());
        assert!((p.mean_wait_low_us() - expect).abs() < 1e-12);
    }

    #[test]
    fn priority_brackets_the_fcfs_aggregate() {
        // Priority redistributes waiting, it does not create or destroy
        // it: W1 < W_fcfs < W2 for a shared service distribution.
        let p = Mm1PriorityAnalytic {
            lambda_high_per_us: 0.3,
            mean_service_high_us: 1.0,
            lambda_low_per_us: 0.3,
            mean_service_low_us: 1.0,
        };
        let fcfs = Mg1Analytic {
            lambda_per_us: 0.6,
            mean_service_us: 1.0,
            service_scv: 1.0,
        };
        assert!(p.mean_wait_high_us() < fcfs.mean_wait_us());
        assert!(p.mean_wait_low_us() > fcfs.mean_wait_us());
    }

    #[test]
    fn kleinrock_conservation_law_holds() {
        // For any work-conserving non-preemptive discipline over the same
        // classes: sum_i rho_i W_i = rho * R / (1 - rho).
        let p = Mm1PriorityAnalytic {
            lambda_high_per_us: 0.25,
            mean_service_high_us: 1.5,
            lambda_low_per_us: 0.2,
            mean_service_low_us: 2.0,
        };
        let lhs = p.rho_high() * p.mean_wait_high_us() + p.rho_low() * p.mean_wait_low_us();
        let rhs = p.rho() * p.residual_us() / (1.0 - p.rho());
        assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
    }

    #[test]
    fn high_priority_wait_ignores_low_priority_queueing() {
        // Piling more low-priority load on (below saturation) only moves
        // W1 through the residual term — linear in lambda2, never through
        // a 1/(1 - rho) blowup.
        let mk = |l2: f64| Mm1PriorityAnalytic {
            lambda_high_per_us: 0.3,
            mean_service_high_us: 1.0,
            lambda_low_per_us: l2,
            mean_service_low_us: 1.0,
        };
        let w_a = mk(0.3).mean_wait_high_us();
        let w_b = mk(0.6).mean_wait_high_us();
        // Linearity in lambda2: dW1/dl2 = (E[S2^2]/2) / (1 - rho1) is
        // constant — E[S2^2]/2 = E[S2]^2 = 1 for exponential unit mean.
        let slope = (w_b - w_a) / 0.3;
        let expect = 1.0 / (1.0 - 0.3);
        assert!((slope - expect).abs() < 1e-9, "{slope} vs {expect}");
        // While the low class does blow up as rho -> 1.
        assert!(mk(0.69).mean_wait_low_us() > 10.0 * mk(0.3).mean_wait_low_us());
    }

    #[test]
    fn large_k_stays_finite() {
        // The iterative sum must not overflow where factorials would.
        let q = MmkAnalytic {
            lambda_per_us: 180.0,
            mean_service_us: 1.0,
            servers: 200,
        };
        let c = q.erlang_c();
        assert!(c.is_finite() && (0.0..1.0).contains(&c), "C = {c}");
    }
}
