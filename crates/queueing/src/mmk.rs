//! Analytic M/M/k (Erlang-C) results.
//!
//! Oracle for the [`cluster`](crate::cluster) simulator: a k-server farm
//! with a *central* FCFS queue, Poisson arrivals, and exponential service
//! admits the Erlang-C closed form. The simulator's least-work balancer is
//! exactly equivalent to the central queue (every request starts as early
//! as possible), so its mean wait must match `C(k, a) / (kµ − λ)` within
//! statistical error — the cross-check the cluster test-suite runs.

use serde::{Deserialize, Serialize};

/// Analytic M/M/k queue description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmkAnalytic {
    /// Aggregate arrival rate λ, requests per µs.
    pub lambda_per_us: f64,
    /// Mean service time E\[S\] = 1/µ at one server, µs.
    pub mean_service_us: f64,
    /// Number of servers k.
    pub servers: usize,
}

impl MmkAnalytic {
    /// Offered load per server, ρ = λ E\[S\] / k.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.offered_erlangs() / self.servers as f64
    }

    /// Total offered traffic a = λ E\[S\] in Erlangs.
    #[must_use]
    pub fn offered_erlangs(&self) -> f64 {
        self.lambda_per_us * self.mean_service_us
    }

    /// Erlang-C: the probability an arriving request must queue,
    /// `C(k, a)`, computed with the numerically stable iterative sum
    /// (no explicit factorials, so large k does not overflow).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or the system is not stable (ρ ≥ 1).
    #[must_use]
    pub fn erlang_c(&self) -> f64 {
        let k = self.servers;
        assert!(k >= 1, "need at least one server");
        let a = self.offered_erlangs();
        let rho = self.rho();
        assert!(rho < 1.0, "Erlang-C needs rho < 1, got {rho}");
        // sum_{j=0}^{k-1} a^j/j! via the running term t_j = a^j/j!.
        let mut term = 1.0f64;
        let mut sum = 1.0f64;
        for j in 1..k {
            term *= a / j as f64;
            sum += term;
        }
        // a^k/k! = t_{k-1} * a/k; the queueing term scales it by 1/(1-rho).
        let tail = term * a / k as f64 / (1.0 - rho);
        tail / (sum + tail)
    }

    /// Mean waiting time E\[W\] = C(k, a) / (kµ − λ) in µs.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MmkAnalytic::erlang_c`].
    #[must_use]
    pub fn mean_wait_us(&self) -> f64 {
        let mu = 1.0 / self.mean_service_us;
        self.erlang_c() / (self.servers as f64 * mu - self.lambda_per_us)
    }

    /// Mean sojourn (response) time E\[T\] = E\[W\] + E\[S\] in µs.
    #[must_use]
    pub fn mean_sojourn_us(&self) -> f64 {
        self.mean_wait_us() + self.mean_service_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1Analytic;

    #[test]
    fn k_equals_one_reduces_to_mm1() {
        let mmk = MmkAnalytic {
            lambda_per_us: 0.3,
            mean_service_us: 2.0,
            servers: 1,
        };
        let mm1 = Mg1Analytic {
            lambda_per_us: 0.3,
            mean_service_us: 2.0,
            service_scv: 1.0,
        };
        // C(1, a) = rho, so the waits coincide exactly.
        assert!((mmk.erlang_c() - mmk.rho()).abs() < 1e-12);
        assert!((mmk.mean_wait_us() - mm1.mean_wait_us()).abs() < 1e-9);
    }

    #[test]
    fn textbook_erlang_c_anchor() {
        // Classic anchor: k = 2, a = 1 (rho = 0.5) gives C = 1/3.
        let q = MmkAnalytic {
            lambda_per_us: 1.0,
            mean_service_us: 1.0,
            servers: 2,
        };
        assert!((q.erlang_c() - 1.0 / 3.0).abs() < 1e-12, "{}", q.erlang_c());
        // E[W] = C / (k mu - lambda) = (1/3) / 1 = 1/3.
        assert!((q.mean_wait_us() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pooling_beats_split_queues() {
        // A k-server pool waits less than k separate M/M/1 queues each fed
        // lambda/k — the classic resource-pooling result.
        let pooled = MmkAnalytic {
            lambda_per_us: 2.8,
            mean_service_us: 1.0,
            servers: 4,
        };
        let split = Mg1Analytic {
            lambda_per_us: 0.7,
            mean_service_us: 1.0,
            service_scv: 1.0,
        };
        assert!(pooled.mean_wait_us() < split.mean_wait_us());
    }

    #[test]
    fn wait_diverges_near_saturation() {
        let mk = |rho: f64| MmkAnalytic {
            lambda_per_us: 4.0 * rho,
            mean_service_us: 1.0,
            servers: 4,
        };
        assert!(mk(0.99).mean_wait_us() > 20.0 * mk(0.7).mean_wait_us());
    }

    #[test]
    fn large_k_stays_finite() {
        // The iterative sum must not overflow where factorials would.
        let q = MmkAnalytic {
            lambda_per_us: 180.0,
            mean_service_us: 1.0,
            servers: 200,
        };
        let c = q.erlang_c();
        assert!(c.is_finite() && (0.0..1.0).contains(&c), "C = {c}");
    }
}
