//! BigHouse-style queueing simulation for the Duplexity reproduction.
//!
//! §V of the paper: "We estimate tail latencies using the BigHouse \[67\]
//! methodology. We simulate the queuing system until we achieve 95%
//! confidence intervals of 5% error in reported results. We measure IPC in
//! gem5 and use it to determine the service rate of an FCFS M/G/1 queuing
//! system. We then simulate the high-level behavior of the queue at request
//! (rather than instruction) granularity."
//!
//! * [`closed_loop`] — the Figure 1(a) closed-loop compute/stall utilization
//!   model;
//! * [`mg1`] — analytic M/G/1 results (Pollaczek–Khinchine, exponential idle
//!   periods) used for Figure 1(b) and as cross-checks;
//! * [`des`] — the discrete-event FCFS simulator (Lindley recursion) with
//!   the BigHouse confidence-interval stopping rule, producing tail
//!   latencies and idle-period distributions;
//! * [`fanout`] — max-of-k leaf waits for mid-tier fan-out scenarios
//!   ("tail at scale"), an extension beyond the paper's single-leaf
//!   McRouter model;
//! * [`cluster`] — the n-server load-balanced farm (Random / RoundRobin /
//!   JSQ / power-of-d / least-work balancers over per-server FCFS queues),
//!   scaling the single dyad to the paper's server-level results, plus the
//!   event-driven duplication/hedging engine (eager duplicate-to-d,
//!   deadline hedges, purge-on-first-completion, low-priority duplicate
//!   queues) that cuts cluster-level stragglers;
//! * [`eventcore`] — the shared future-event set behind the cluster
//!   engines: a total-order `(t, kind, seq)` contract with a `BinaryHeap`
//!   reference and a calendar-queue timing wheel that are bit-identical
//!   by construction (and differentially tested);
//! * [`rack`] — the two-level rack model over the cluster engine:
//!   bounded-delay dispatch on stale queue signals (the balancer sees
//!   state as of `t − Δ`), idle-server work stealing, and centralized vs
//!   distributed dispatch planes under Zipf-skewed tenant traffic, with
//!   the Δ=0/no-steal plan bitwise identical to the cluster engine;
//! * [`mmk`] — analytic M/M/k (Erlang-C) and two-class non-preemptive
//!   priority M/M/1 cross-checks for the cluster simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_loop;
pub mod cluster;
pub mod des;
pub mod eventcore;
pub mod fanout;
pub mod mg1;
pub mod mmk;
pub mod rack;

pub use closed_loop::{closed_loop_utilization, utilization_surface};
pub use cluster::{
    merge_replications, simulate_cluster, simulate_cluster_hedged, try_simulate_cluster,
    try_simulate_cluster_hedged, BalancerPolicy, ClusterEngine, ClusterOptions, ClusterResult,
    DupMode, DupTally, DuplicationPolicy, HedgedClusterResult,
};
pub use eventcore::{EventKey, EventQueue, EventQueueKind, HeapEventQueue, WheelEventQueue};

pub use des::{
    simulate_mg1, simulate_mg1_faulted, simulate_mg1_faulted_traced, simulate_mg1_traced,
    try_simulate_mg1, try_simulate_mg1_faulted, try_simulate_mg1_faulted_traced,
    try_simulate_mg1_traced, FaultTally, Mg1Options, Mg1Result, Unstable,
};
pub use fanout::{exponential_fanout_mean, exponential_fanout_quantile, FanOut};
pub use mg1::{idle_period_cdf, mean_idle_period_us, Mg1Analytic};
pub use mmk::{Mm1PriorityAnalytic, MmkAnalytic};
pub use rack::{
    merge_rack_replications, simulate_rack, try_simulate_rack, Coordination, RackPlan, RackResult,
    RackTally, StealPolicy,
};
