//! Analytic M/G/1 results.
//!
//! §II-A: "due to the memory-less property of Poisson request arrivals, idle
//! periods of all M/G/1 queuing systems follow an exponential distribution,
//! independent of the service distribution; idle period duration is only a
//! function of service rate and load." These closed forms drive Figure 1(b)
//! and serve as correctness oracles for the discrete-event simulator.

use duplexity_stats::dist::Exponential;
use serde::{Deserialize, Serialize};

/// Analytic M/G/1 queue description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1Analytic {
    /// Arrival rate λ, requests per µs.
    pub lambda_per_us: f64,
    /// Mean service time E\[S\], µs.
    pub mean_service_us: f64,
    /// Squared coefficient of variation of service time.
    pub service_scv: f64,
}

impl Mg1Analytic {
    /// Builds from a service rate (capacity) in queries-per-second and an
    /// offered load fraction.
    ///
    /// # Panics
    ///
    /// Panics if `qps <= 0`, or `load` is outside `(0, 1)`.
    #[must_use]
    pub fn from_qps_load(qps: f64, load: f64, service_scv: f64) -> Self {
        assert!(qps > 0.0, "qps must be positive");
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        let mean_service_us = 1e6 / qps; // capacity of 1/E[S]
        Self {
            lambda_per_us: load / mean_service_us,
            mean_service_us,
            service_scv,
        }
    }

    /// Offered load ρ = λ E\[S\].
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.lambda_per_us * self.mean_service_us
    }

    /// Pollaczek–Khinchine mean waiting time E\[W\] in µs.
    ///
    /// `E\[W\] = λ E[S²] / (2 (1 - ρ))` with `E[S²] = (1 + scv) E\[S\]²`.
    #[must_use]
    pub fn mean_wait_us(&self) -> f64 {
        let rho = self.rho();
        let es2 = (1.0 + self.service_scv) * self.mean_service_us * self.mean_service_us;
        self.lambda_per_us * es2 / (2.0 * (1.0 - rho))
    }

    /// Mean sojourn (response) time E\[T\] = E\[W\] + E\[S\] in µs.
    #[must_use]
    pub fn mean_sojourn_us(&self) -> f64 {
        self.mean_wait_us() + self.mean_service_us
    }

    /// The idle-period distribution: exponential with rate λ, regardless of
    /// the service distribution (memorylessness of Poisson arrivals).
    #[must_use]
    pub fn idle_distribution(&self) -> Exponential {
        Exponential::from_rate(self.lambda_per_us)
    }
}

/// Mean idle-period duration for a service of capacity `qps` at offered
/// `load` — the §II-A headline numbers (200K QPS @ 50% → 10µs; 1M QPS @ 50%
/// → 2µs).
///
/// # Examples
///
/// ```
/// use duplexity_queueing::mean_idle_period_us;
///
/// assert!((mean_idle_period_us(200_000.0, 0.5) - 10.0).abs() < 1e-9);
/// assert!((mean_idle_period_us(1_000_000.0, 0.5) - 2.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `qps <= 0` or `load` outside `(0, 1)`.
#[must_use]
pub fn mean_idle_period_us(qps: f64, load: f64) -> f64 {
    assert!(qps > 0.0 && load > 0.0 && load < 1.0, "bad parameters");
    1e6 / (qps * load)
}

/// CDF of idle-period duration at `t_us` for a service of capacity `qps` at
/// `load` (Figure 1(b) series).
#[must_use]
pub fn idle_period_cdf(qps: f64, load: f64, t_us: f64) -> f64 {
    let mean = mean_idle_period_us(qps, load);
    Exponential::new(mean).cdf(t_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::dist::Distribution;

    #[test]
    fn rho_matches_load() {
        let q = Mg1Analytic::from_qps_load(200_000.0, 0.7, 1.0);
        assert!((q.rho() - 0.7).abs() < 1e-12);
        assert!((q.mean_service_us - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_special_case() {
        // With scv=1 (M/M/1), E[T] = E[S] / (1 - rho).
        let q = Mg1Analytic::from_qps_load(1_000_000.0, 0.5, 1.0);
        let expect = q.mean_service_us / (1.0 - 0.5);
        assert!((q.mean_sojourn_us() - expect).abs() < 1e-9);
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        // Deterministic service (scv=0) waits exactly half as long.
        let mm1 = Mg1Analytic::from_qps_load(500_000.0, 0.6, 1.0);
        let md1 = Mg1Analytic::from_qps_load(500_000.0, 0.6, 0.0);
        assert!((md1.mean_wait_us() - 0.5 * mm1.mean_wait_us()).abs() < 1e-9);
    }

    #[test]
    fn wait_diverges_near_saturation() {
        let low = Mg1Analytic::from_qps_load(200_000.0, 0.5, 1.0);
        let high = Mg1Analytic::from_qps_load(200_000.0, 0.99, 1.0);
        assert!(high.mean_wait_us() > 50.0 * low.mean_wait_us());
    }

    #[test]
    fn paper_idle_period_anchors() {
        // §II-A: "200K and 1M QPS services at 50% load average idle periods
        // of only 10µs and 2µs".
        assert!((mean_idle_period_us(200_000.0, 0.5) - 10.0).abs() < 1e-9);
        assert!((mean_idle_period_us(1_000_000.0, 0.5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_cdf_shape() {
        // Individual idle periods last only a few µs: at 1M QPS and 70%
        // load, the vast majority of idle periods are under 5µs.
        assert!(idle_period_cdf(1_000_000.0, 0.7, 5.0) > 0.95);
        // At 200K QPS and 30% load they stretch longer.
        assert!(idle_period_cdf(200_000.0, 0.3, 5.0) < 0.3);
        // CDF is monotone.
        let a = idle_period_cdf(200_000.0, 0.5, 2.0);
        let b = idle_period_cdf(200_000.0, 0.5, 8.0);
        assert!(b > a);
    }

    #[test]
    fn idle_distribution_matches_lambda() {
        let q = Mg1Analytic::from_qps_load(200_000.0, 0.5, 2.0);
        assert!((q.idle_distribution().mean() - 10.0).abs() < 1e-9);
    }
}
