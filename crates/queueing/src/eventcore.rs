//! Shared event core for the cluster DES engines: a future-event set with
//! a *documented total order*, behind a trait so the engines can run on
//! either a binary heap (the reference) or a calendar-queue timing wheel
//! (the fast path) and produce bit-identical results.
//!
//! # The tie-break contract
//!
//! Every pushed event gets an [`EventKey`] `(t, kind, seq)`:
//!
//! * `t` — event time in µs, compared with [`f64::total_cmp`];
//! * `kind` — a small engine-assigned rank (for the hedged cluster engine:
//!   `Arrive = 0`, `HedgeFire = 1`, `Depart = 2`), so simultaneous events
//!   of different kinds pop in a fixed, engine-chosen order;
//! * `seq` — the queue's own push counter, so same-time same-kind events
//!   pop in push order.
//!
//! This is a *total* order with no ties, and `seq` is assigned by the
//! queue at push time. Two implementations fed the identical push sequence
//! therefore assign identical keys and must pop the identical event
//! sequence — pop order is a pure function of the push sequence, never of
//! the container. That is what makes the wheel/heap differential suite
//! (`tests/eventcore_differential.rs`) a bit-identity check rather than a
//! statistical one, and why swapping the implementation cannot perturb
//! metrics, traces, or golden fixtures.
//!
//! # Wheel geometry
//!
//! [`WheelEventQueue`] is a classic calendar queue tuned for the
//! microsecond event horizon: `nbuckets` (a power of two) buckets of
//! `width_us` each cover one rotation `[cur, cur + nbuckets · width)`;
//! events beyond the rotation wait in a small overflow heap and migrate in
//! as the frontier advances. With width ≈ 1/(4·event rate) each bucket
//! holds O(1) events, so push and pop are O(1) amortized versus the
//! heap's O(log n) — the win that compounds over the ~10⁶-event runs of a
//! cluster sweep cell. Events pushed at or before the current frontier
//! (departures scheduled "now", zero-width hedge deadlines) clamp into
//! the *current* bucket; the per-bucket min-scan keyed on the full
//! [`EventKey`] keeps them correctly ordered. Geometry affects only
//! constant factors, never pop order.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The total-order key assigned to every event at push time.
#[derive(Debug, Clone, Copy)]
pub struct EventKey {
    /// Event time, µs.
    pub t: f64,
    /// Engine-assigned kind rank; breaks ties at equal `t`.
    pub kind: u8,
    /// Queue-assigned push counter; breaks ties at equal `(t, kind)`.
    pub seq: u64,
}

impl EventKey {
    /// The contract's total order: time (via [`f64::total_cmp`]), then
    /// kind rank, then push sequence. No two keys from one queue compare
    /// equal, because `seq` is unique.
    #[must_use]
    pub fn cmp_total(&self, other: &Self) -> Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.kind.cmp(&other.kind))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

/// Self-profiling counters a queue accumulates as a side effect of normal
/// operation. Pure bookkeeping over the (deterministic) push/pop sequence:
/// zero RNG draws, and identical for any worker count, so the engines can
/// flush a profile into the slash-path registry without perturbing
/// anything. Heap-backed queues leave the wheel-specific fields at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueProfile {
    /// Total events pushed.
    pub pushes: u64,
    /// Total events popped.
    pub pops: u64,
    /// High-water mark of pending events.
    pub max_len: u64,
    /// Wheel only: pushes that landed beyond the rotation, in the
    /// overflow heap.
    pub overflow_pushes: u64,
    /// Wheel only: overflow entries migrated into wheel buckets as the
    /// frontier advanced.
    pub overflow_migrations: u64,
    /// Wheel only: single-slot frontier advances (empty-bucket scans).
    pub frontier_advances: u64,
    /// Wheel only: drained-wheel fast-forwards, jumping the frontier
    /// straight to the overflow minimum.
    pub frontier_jumps: u64,
    /// Wheel only: slots skipped by those fast-forward jumps (the scans a
    /// naive slot-by-slot walk would have burned).
    pub slots_skipped: u64,
    /// Wheel only: high-water mark of a single bucket's occupancy.
    pub max_bucket_len: u64,
}

/// A future-event set honoring the `(t, kind, seq)` total order.
///
/// `seq` is assigned internally in push order, so any two implementations
/// fed the same push sequence pop the same `(EventKey, payload)` sequence
/// — identical by construction, and enforced by the differential suite.
pub trait EventQueue<P> {
    /// Inserts an event at time `t` with the engine's kind rank.
    fn push(&mut self, t: f64, kind: u8, payload: P);
    /// Removes and returns the minimum event under the total order.
    fn pop(&mut self) -> Option<(EventKey, P)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The queue's self-profiling counters so far.
    fn profile(&self) -> QueueProfile;
}

/// Value-level selector for the event-queue implementation, so options
/// structs can carry the choice through experiment grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueKind {
    /// The `BinaryHeap` reference implementation.
    Heap,
    /// The calendar-queue timing wheel (default fast path; bit-identical
    /// to the heap by the tie-break contract).
    #[default]
    Wheel,
}

impl EventQueueKind {
    /// Stable snake_case name for reports and JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventQueueKind::Heap => "heap",
            EventQueueKind::Wheel => "wheel",
        }
    }
}

impl std::fmt::Display for EventQueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

struct HeapEntry<P> {
    key: EventKey,
    payload: P,
}

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<P> Eq for HeapEntry<P> {}
impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp_total(&other.key)
    }
}

/// The reference implementation: a binary min-heap keyed on the full
/// [`EventKey`].
pub struct HeapEventQueue<P> {
    heap: BinaryHeap<Reverse<HeapEntry<P>>>,
    seq: u64,
    pops: u64,
    max_len: u64,
}

impl<P> Default for HeapEventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> HeapEventQueue<P> {
    /// An empty heap-backed queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            pops: 0,
            max_len: 0,
        }
    }
}

impl<P> EventQueue<P> for HeapEventQueue<P> {
    fn push(&mut self, t: f64, kind: u8, payload: P) {
        let key = EventKey {
            t,
            kind,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry { key, payload }));
        self.max_len = self.max_len.max(self.heap.len() as u64);
    }

    fn pop(&mut self) -> Option<(EventKey, P)> {
        let e = self.heap.pop().map(|Reverse(e)| (e.key, e.payload));
        if e.is_some() {
            self.pops += 1;
        }
        e
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn profile(&self) -> QueueProfile {
        QueueProfile {
            pushes: self.seq,
            pops: self.pops,
            max_len: self.max_len,
            ..QueueProfile::default()
        }
    }
}

/// Default bucket count for the timing wheel (a power of two, so the slot
/// index is a mask).
const DEFAULT_BUCKETS: usize = 512;

/// The fast path: a calendar-queue timing wheel with an overflow heap.
///
/// Invariant: every event stored in a wheel bucket has absolute slot in
/// `[cur_slot, cur_slot + nbuckets)` — one rotation — so the bucket index
/// `slot & mask` identifies the slot uniquely and no "year" tag is
/// needed. Everything farther out sits in `overflow` (ordered by its
/// [`EventKey`]; keys at larger times have larger slots, so the overflow
/// min is always the next entry to migrate) and is moved into the wheel
/// as `cur_slot` advances. Events at or before the frontier clamp into
/// the current bucket; the pop-side min-scan of that bucket restores the
/// total order.
pub struct WheelEventQueue<P> {
    slots: Vec<Vec<(EventKey, P)>>,
    /// `nbuckets - 1`; bucket index of absolute slot `s` is `s & mask`.
    mask: u64,
    /// 1 / bucket width (µs⁻¹): absolute slot of time `t` is `t * width_inv`.
    width_inv: f64,
    /// The frontier: the smallest absolute slot any wheel bucket may hold.
    cur_slot: u64,
    /// Events currently in wheel buckets (excludes overflow).
    wheel_len: usize,
    overflow: BinaryHeap<Reverse<HeapEntry<P>>>,
    seq: u64,
    prof: QueueProfile,
}

impl<P> WheelEventQueue<P> {
    /// A wheel with explicit geometry: bucket width in µs and bucket
    /// count (rounded up to a power of two). Geometry only moves constant
    /// factors; pop order is fixed by the total-order contract.
    ///
    /// # Panics
    ///
    /// Panics if `width_us` is not finite and positive, or `nbuckets` is 0.
    #[must_use]
    pub fn with_geometry(width_us: f64, nbuckets: usize) -> Self {
        assert!(
            width_us.is_finite() && width_us > 0.0,
            "bucket width must be finite and positive"
        );
        assert!(nbuckets > 0, "wheel needs at least one bucket");
        let n = nbuckets.next_power_of_two();
        Self {
            slots: (0..n).map(|_| Vec::new()).collect(),
            mask: n as u64 - 1,
            width_inv: width_us.recip(),
            cur_slot: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            prof: QueueProfile::default(),
        }
    }

    /// Geometry tuned for an expected total event rate (events per µs):
    /// bucket width ≈ a quarter of the mean event spacing, clamped to
    /// sane bounds, so a bucket holds O(1) events at the microsecond
    /// horizons the cluster engines sweep.
    #[must_use]
    pub fn for_rate(events_per_us: f64) -> Self {
        let spacing = if events_per_us.is_finite() && events_per_us > 0.0 {
            events_per_us.recip()
        } else {
            1.0
        };
        let width = (spacing * 0.25).clamp(1e-3, 1e4);
        Self::with_geometry(width, DEFAULT_BUCKETS)
    }

    fn nbuckets(&self) -> u64 {
        self.mask + 1
    }

    /// Absolute slot for time `t`, clamped to the frontier so late (or
    /// frontier-exact) events land in the current bucket.
    fn slot_of(&self, t: f64) -> u64 {
        let raw = t * self.width_inv;
        // Times are non-negative simulation instants; the cast saturates
        // on the upside, which the overflow heap absorbs.
        let s = if raw.is_finite() && raw > 0.0 {
            raw as u64
        } else {
            0
        };
        s.max(self.cur_slot)
    }
}

impl<P> EventQueue<P> for WheelEventQueue<P> {
    fn push(&mut self, t: f64, kind: u8, payload: P) {
        let key = EventKey {
            t,
            kind,
            seq: self.seq,
        };
        self.seq += 1;
        let slot = self.slot_of(t);
        // `slot_of` clamps to the frontier, so the subtraction is safe
        // (and avoids overflow for saturating far-future slots).
        if slot - self.cur_slot >= self.nbuckets() {
            self.overflow.push(Reverse(HeapEntry { key, payload }));
            self.prof.overflow_pushes += 1;
        } else {
            let bucket = &mut self.slots[(slot & self.mask) as usize];
            bucket.push((key, payload));
            self.prof.max_bucket_len = self.prof.max_bucket_len.max(bucket.len() as u64);
            self.wheel_len += 1;
        }
        self.prof.max_len = self
            .prof
            .max_len
            .max((self.wheel_len + self.overflow.len()) as u64);
    }

    fn pop(&mut self) -> Option<(EventKey, P)> {
        if self.wheel_len == 0 && self.overflow.is_empty() {
            return None;
        }
        loop {
            // Migrate overflow entries that fell inside the rotation. The
            // overflow min is key-ordered, and time order implies slot
            // order, so only the head ever needs checking.
            while let Some(Reverse(head)) = self.overflow.peek() {
                let slot = self.slot_of(head.key.t);
                if slot - self.cur_slot >= self.nbuckets() {
                    break;
                }
                let Reverse(e) = self.overflow.pop().expect("peeked entry");
                let bucket = &mut self.slots[(slot & self.mask) as usize];
                bucket.push((e.key, e.payload));
                self.prof.max_bucket_len = self.prof.max_bucket_len.max(bucket.len() as u64);
                self.wheel_len += 1;
                self.prof.overflow_migrations += 1;
            }
            let bucket = &mut self.slots[(self.cur_slot & self.mask) as usize];
            if !bucket.is_empty() {
                // All entries here share the frontier slot, so the bucket
                // min *is* the global min; a linear scan keyed on the full
                // EventKey restores the total order among them.
                let mut min = 0;
                for i in 1..bucket.len() {
                    if bucket[i].0.cmp_total(&bucket[min].0) == Ordering::Less {
                        min = i;
                    }
                }
                self.wheel_len -= 1;
                self.prof.pops += 1;
                return Some(bucket.swap_remove(min));
            }
            if self.wheel_len > 0 {
                self.cur_slot += 1;
                self.prof.frontier_advances += 1;
            } else {
                // Wheel drained: jump the frontier to the overflow min so
                // the next migration pass lands it in a live bucket.
                let Reverse(head) = self.overflow.peek().expect("pending events must exist");
                let target = self.slot_of(head.key.t);
                self.prof.frontier_jumps += 1;
                self.prof.slots_skipped += target - self.cur_slot;
                self.cur_slot = target;
            }
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn profile(&self) -> QueueProfile {
        QueueProfile {
            pushes: self.seq,
            ..self.prof
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<P, Q: EventQueue<P>>(q: &mut Q) -> Vec<(EventKey, P)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    fn keys<P>(seq: &[(EventKey, P)]) -> Vec<(f64, u8, u64)> {
        seq.iter().map(|(k, _)| (k.t, k.kind, k.seq)).collect()
    }

    #[test]
    fn heap_and_wheel_agree_on_a_mixed_schedule() {
        let pushes = [
            (5.0, 2u8),
            (1.5, 0),
            (1.5, 2),
            (1.5, 0),
            (0.0, 1),
            (1_000_000.0, 0),
            (3.25, 1),
            (1.5, 1),
            (0.0, 0),
        ];
        let mut heap = HeapEventQueue::new();
        let mut wheel = WheelEventQueue::with_geometry(0.5, 8);
        for (i, &(t, kind)) in pushes.iter().enumerate() {
            heap.push(t, kind, i as u32);
            wheel.push(t, kind, i as u32);
        }
        let h = drain(&mut heap);
        let w = drain(&mut wheel);
        assert_eq!(keys(&h), keys(&w));
        assert_eq!(
            h.iter().map(|e| e.1).collect::<Vec<_>>(),
            w.iter().map(|e| e.1).collect::<Vec<_>>()
        );
        // And the order is the documented total order.
        for pair in h.windows(2) {
            assert_eq!(pair[0].0.cmp_total(&pair[1].0), Ordering::Less);
        }
    }

    #[test]
    fn ties_pop_by_kind_then_push_order() {
        let mut wheel = WheelEventQueue::with_geometry(1.0, 4);
        wheel.push(2.0, 2, "late-kind-first-pushed");
        wheel.push(2.0, 0, "early-kind-a");
        wheel.push(2.0, 1, "mid-kind");
        wheel.push(2.0, 0, "early-kind-b");
        let order: Vec<&str> = drain(&mut wheel).into_iter().map(|e| e.1).collect();
        assert_eq!(
            order,
            [
                "early-kind-a",
                "early-kind-b",
                "mid-kind",
                "late-kind-first-pushed"
            ]
        );
    }

    #[test]
    fn pushes_at_or_before_the_frontier_stay_ordered() {
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut wheel: WheelEventQueue<u32> = WheelEventQueue::with_geometry(1.0, 4);
        for q in [&mut wheel as &mut dyn EventQueue<u32>, &mut heap] {
            q.push(10.0, 0, 0);
        }
        assert_eq!(heap.pop().unwrap().0.t, 10.0);
        assert_eq!(wheel.pop().unwrap().0.t, 10.0);
        // The wheel frontier now sits at t = 10; a "late" push (an event
        // scheduled in the past, which the engines never do, but the
        // clamp must still behave) pops before anything later.
        heap.push(3.0, 0, 1);
        wheel.push(3.0, 0, 1);
        heap.push(11.0, 0, 2);
        wheel.push(11.0, 0, 2);
        assert_eq!(keys(&drain(&mut heap)), keys(&drain(&mut wheel)));
    }

    #[test]
    fn overflow_migrates_in_key_order() {
        // 4 buckets of 1µs: anything past t≈4 overflows at push time.
        let mut wheel = WheelEventQueue::with_geometry(1.0, 4);
        let mut heap = HeapEventQueue::new();
        let times = [100.0, 7.0, 0.5, 42.0, 7.0, 3.9, 1_000.0, 8.1];
        for (i, &t) in times.iter().enumerate() {
            wheel.push(t, 0, i);
            heap.push(t, 0, i);
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(keys(&drain(&mut wheel)), keys(&drain(&mut heap)));
    }

    #[test]
    fn interleaved_push_pop_preserves_the_contract() {
        let mut wheel = WheelEventQueue::with_geometry(0.25, 16);
        let mut heap = HeapEventQueue::new();
        let mut t = 0.0;
        let mut popped_w = Vec::new();
        let mut popped_h = Vec::new();
        for step in 0..200u64 {
            // A deterministic, awkward schedule: bursts, ties, far-future
            // events, and pops in between.
            let dt = ((step * 2_654_435_761) % 97) as f64 / 10.0;
            t += dt;
            let kind = (step % 3) as u8;
            wheel.push(t, kind, step);
            heap.push(t, kind, step);
            if step % 4 == 0 {
                wheel.push(t, kind, step + 1000);
                heap.push(t, kind, step + 1000);
            }
            if step % 3 == 0 {
                popped_w.push(wheel.pop().unwrap());
                popped_h.push(heap.pop().unwrap());
            }
        }
        popped_w.extend(drain(&mut wheel));
        popped_h.extend(drain(&mut heap));
        assert_eq!(keys(&popped_w), keys(&popped_h));
        assert_eq!(
            popped_w.iter().map(|e| e.1).collect::<Vec<_>>(),
            popped_h.iter().map(|e| e.1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn profiles_account_for_every_push_and_pop() {
        // Same schedule as the overflow test: far-future events exercise
        // the overflow heap, migrations, and the drained-wheel jump.
        let mut wheel = WheelEventQueue::with_geometry(1.0, 4);
        let mut heap = HeapEventQueue::new();
        let times = [100.0, 7.0, 0.5, 42.0, 7.0, 3.9, 1_000.0, 8.1];
        for (i, &t) in times.iter().enumerate() {
            wheel.push(t, 0, i);
            heap.push(t, 0, i);
        }
        drain(&mut wheel);
        drain(&mut heap);
        let (w, h) = (wheel.profile(), heap.profile());
        for p in [&w, &h] {
            assert_eq!(p.pushes, times.len() as u64);
            assert_eq!(p.pops, times.len() as u64);
            assert_eq!(p.max_len, times.len() as u64);
        }
        // The heap is not a wheel: its wheel-specific counters stay zero.
        assert_eq!(
            h,
            QueueProfile {
                pushes: h.pushes,
                pops: h.pops,
                max_len: h.max_len,
                ..QueueProfile::default()
            }
        );
        // The wheel saw the far-future events overflow and migrate back,
        // and fast-forwarded over empty slots instead of scanning them.
        assert!(w.overflow_pushes > 0);
        assert_eq!(w.overflow_migrations, w.overflow_pushes);
        assert!(w.frontier_jumps > 0);
        assert!(w.slots_skipped >= w.frontier_jumps);
        assert!(w.max_bucket_len >= 1);
    }

    #[test]
    fn empty_queue_pops_none_and_reports_len() {
        let mut wheel: WheelEventQueue<()> = WheelEventQueue::for_rate(2.0);
        assert!(wheel.is_empty());
        assert!(wheel.pop().is_none());
        wheel.push(1.0, 0, ());
        assert_eq!(wheel.len(), 1);
        wheel.pop();
        assert!(wheel.pop().is_none(), "pop past empty stays None");
    }
}
