//! Two-level rack scheduler: stale-signal dispatch and inter-server work
//! stealing over the cluster engine.
//!
//! RackSched-style results (PAPERS.md) argue that a per-rack inter-server
//! scheduler composed with intra-server scheduling beats per-server-only
//! policies at microsecond scale. This module models that composition on
//! top of the [`cluster`](crate::cluster) event engine: a rack-level
//! dispatcher places requests onto per-server FCFS queues, but — unlike the
//! idealized cluster balancer — it sees queue lengths **as of `t − Δ`**
//! (bounded-delay JSQ / power-of-d), servers that go idle may **steal**
//! queued work from the longest visible backlog, and the dispatch plane can
//! be **centralized** (one dispatcher that observed every placement) or
//! **distributed** (k dispatchers, each blind to the others' placements),
//! with Zipf-skewed per-tenant traffic hashed across dispatchers.
//!
//! Determinism contract, extending the cluster's: the arrival/service
//! stream and the balancer stream are the *same* derived streams as
//! [`try_simulate_cluster_hedged`](crate::cluster::try_simulate_cluster_hedged)
//! (labels shared via `pub(crate)` constants), and the three rack-only
//! features draw from independent derived streams that are consumed
//! **only when the feature is on**:
//!
//! * signal staleness (`Δ > 0`) consumes no RNG at all — it only changes
//!   which state the balancer observes;
//! * work stealing draws victim probes from a dedicated stream
//!   (`RACK_STEAL_STREAM`, `0x57EA`);
//! * tenant ranks draw from `RACK_TENANT_STREAM` (`0x7E2A`, only when
//!   `tenants > 1`).
//!
//! A plan with `Δ = 0`, stealing off, and a single tenant therefore
//! consumes draw-for-draw the cluster engine's RNG sequences and performs
//! the identical floating-point bookkeeping: its [`ClusterResult`] is
//! **bitwise identical** to `try_simulate_cluster_hedged` with
//! [`DuplicationPolicy::none`](crate::cluster::DuplicationPolicy::none) —
//! the degeneracy the test suite pins, and the reason every pre-existing
//! golden fixture survives this module untouched.
//!
//! Staleness semantics: the dispatcher observes each server's state at
//! `τ = t − Δ` (per-server snapshot history), *compensated by its own
//! placements* in `(τ, t]` — a dispatcher knows what it placed, it just
//! cannot see departures or other dispatchers' placements until those age
//! past Δ. Centralized means one dispatcher (full placement knowledge);
//! distributed-k shards tenants across k dispatchers that each compensate
//! only their own window, so information degrades with both Δ and k.

use crate::cluster::{
    merge_replications, ns_ticks, Balancer, BalancerPolicy, ClusterOptions, ClusterResult,
    BALANCER_STREAM, CLUSTER_TICKS_PER_US,
};
use crate::des::Unstable;
use crate::eventcore::{EventQueue, EventQueueKind, HeapEventQueue, WheelEventQueue};
use duplexity_obs::{LatencySketch, TraceEvent, Tracer};
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{derive_stream, draw_batch, rng_from_seed, SimRng};
use duplexity_stats::summary::Summary;
use duplexity_stats::zipf::Zipf;
use rand::RngExt;
use std::collections::VecDeque;

/// Stream label for work-stealing victim probes. Independent of the
/// arrival and balancer streams, so a no-steal plan draws nothing from it
/// and stealing never perturbs the marked point process.
const RACK_STEAL_STREAM: u64 = 0x57EA;

/// Stream label for per-arrival tenant ranks. Only consumed when a plan
/// models more than one tenant.
const RACK_TENANT_STREAM: u64 = 0x7E2A;

/// Hot-tenant classification threshold: the smallest head of the Zipf rank
/// order holding at least this probability mass is "hot".
const HOT_MASS: f64 = 0.5;

/// Who runs the rack's dispatch plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coordination {
    /// One dispatcher places every request and therefore compensates its
    /// stale view with *all* placements younger than Δ.
    Centralized,
    /// `dispatchers` independent dispatchers; tenants hash across them
    /// (`rank % dispatchers`) and each compensates only its own
    /// placements. With a single tenant every request lands on dispatcher
    /// 0, which makes the plan equivalent to [`Coordination::Centralized`].
    Distributed {
        /// Number of independent dispatchers (≥ 1).
        dispatchers: usize,
    },
}

impl Coordination {
    fn dispatchers(self) -> usize {
        match self {
            Coordination::Centralized => 1,
            Coordination::Distributed { dispatchers } => dispatchers,
        }
    }

    /// Stable label for reports and JSON: `central` or `dist{k}`.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Coordination::Centralized => "central".to_string(),
            Coordination::Distributed { dispatchers } => format!("dist{dispatchers}"),
        }
    }
}

/// Inter-server work-stealing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPolicy {
    /// Victim servers probed per steal attempt (`0` disables stealing; no
    /// RNG is drawn from the steal stream when disabled).
    pub probes: usize,
    /// Minimum *visible* queue length (in system, i.e. waiting plus in
    /// service) a victim must show before it is robbed — a victim at the
    /// threshold still keeps one request in service after the steal.
    pub min_queue: u32,
}

impl StealPolicy {
    /// Stealing disabled: zero probes, zero RNG draws, a bitwise no-op.
    #[must_use]
    pub fn off() -> Self {
        Self {
            probes: 0,
            min_queue: 2,
        }
    }

    /// Probe `d` random victims per idle transition; steal from the one
    /// with the longest visible backlog.
    #[must_use]
    pub fn probe(d: usize) -> Self {
        Self {
            probes: d,
            min_queue: 2,
        }
    }
}

/// A rack scheduling plan: dispatch-plane coordination, signal staleness,
/// work stealing, and tenant skew. [`RackPlan::fresh`] is the degenerate
/// plan that reproduces the cluster engine bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackPlan {
    /// Centralized vs distributed dispatch plane.
    pub coordination: Coordination,
    /// Signal staleness Δ, µs: the dispatcher sees per-server state as of
    /// `t − Δ` (compensated by its own placements). `0` is today's fresh
    /// signals.
    pub delta_us: f64,
    /// Idle-server work stealing.
    pub steal: StealPolicy,
    /// Tenants generating the traffic mix (≥ 1). With `1` no tenant rank
    /// is drawn and every request is "hot".
    pub tenants: usize,
    /// Zipf exponent of the per-tenant traffic skew (`0` = uniform,
    /// `0.99` = YCSB default). Ignored when `tenants == 1`.
    pub skew: f64,
}

impl RackPlan {
    /// The degenerate plan: centralized fresh signals, no stealing, one
    /// tenant. Bitwise identical to the cluster engine without
    /// duplication.
    #[must_use]
    pub fn fresh() -> Self {
        Self {
            coordination: Coordination::Centralized,
            delta_us: 0.0,
            steal: StealPolicy::off(),
            tenants: 1,
            skew: 0.0,
        }
    }

    /// Sets the signal staleness Δ in µs.
    #[must_use]
    pub fn with_delta(mut self, delta_us: f64) -> Self {
        self.delta_us = delta_us;
        self
    }

    /// Shards dispatch across `k` independent dispatchers.
    #[must_use]
    pub fn distributed(mut self, k: usize) -> Self {
        self.coordination = Coordination::Distributed { dispatchers: k };
        self
    }

    /// Enables work stealing with `d` probes per idle transition.
    #[must_use]
    pub fn with_steal(mut self, d: usize) -> Self {
        self.steal = StealPolicy::probe(d);
        self
    }

    /// Drives the rack with `tenants` Zipf(`skew`)-distributed tenants.
    #[must_use]
    pub fn with_tenants(mut self, tenants: usize, skew: f64) -> Self {
        self.tenants = tenants;
        self.skew = skew;
        self
    }

    /// Whether this plan consumes exactly the cluster engine's RNG streams
    /// and bookkeeping (the bitwise-degeneracy condition): fresh signals,
    /// no stealing, single tenant.
    #[must_use]
    pub fn is_fresh_degenerate(&self) -> bool {
        self.delta_us <= 0.0 && self.steal.probes == 0 && self.tenants <= 1
    }

    /// Stable label for reports and JSON, e.g. `central`, `central_d4`,
    /// `dist4_d4_z0.99`, `central_st2`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = self.coordination.label();
        if self.delta_us > 0.0 {
            s.push_str(&format!("_d{}", self.delta_us));
        }
        if self.steal.probes > 0 {
            s.push_str(&format!("_st{}", self.steal.probes));
        }
        if self.tenants > 1 {
            s.push_str(&format!("_z{}", self.skew));
        }
        s
    }
}

impl std::fmt::Display for RackPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Rack bookkeeping over the whole run (warmup included — steals are a
/// property of the schedule, not of individual measured requests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RackTally {
    /// Measured requests admitted.
    pub requests: u64,
    /// Measured requests from hot tenants (head of the Zipf rank order
    /// holding ≥ 50% of traffic; all requests when `tenants == 1`).
    pub hot_requests: u64,
    /// Victim probes drawn across all steal attempts.
    pub steal_probes: u64,
    /// Successful steals (a queued request migrated servers).
    pub steals: u64,
    /// Steal attempts whose chosen victim had nothing to give — the stale
    /// signal lied about the backlog.
    pub steals_empty: u64,
    /// Service demand migrated by steals, µs.
    pub stolen_work_us: f64,
}

/// Results of one rack simulation: the base cluster metrics plus rack
/// bookkeeping and per-class (hot/cold tenant) sojourn sketches.
#[derive(Debug, Clone)]
pub struct RackResult {
    /// Cluster-shaped metrics, so rack cells merge/render exactly like
    /// cluster cells. Waits are measured from arrival to service start
    /// (wherever the request ends up running after steals).
    pub cluster: ClusterResult,
    /// Steal/tenant counters.
    pub tally: RackTally,
    /// Sojourn sketch of hot-tenant requests.
    pub hot_sketch: LatencySketch,
    /// Sojourn sketch of cold-tenant requests (empty when `tenants == 1`).
    pub cold_sketch: LatencySketch,
}

/// Pools independent replications of one rack cell, in replication order
/// (same contract as [`merge_replications`]: a pure function of the
/// ordered list, bit-identical at any worker count). Cluster metrics merge
/// via [`merge_replications`]; tallies sum fieldwise; hot/cold sketches
/// merge in replication order.
///
/// # Panics
///
/// Panics if `parts` is empty or the replications disagree on the server
/// count.
#[must_use]
pub fn merge_rack_replications(
    parts: Vec<RackResult>,
    quantile: f64,
    confidence: f64,
) -> RackResult {
    assert!(!parts.is_empty(), "cannot merge zero replications");
    let mut tally = RackTally::default();
    let mut hot_sketch = LatencySketch::new();
    let mut cold_sketch = LatencySketch::new();
    let mut clusters = Vec::with_capacity(parts.len());
    for part in parts {
        tally.requests += part.tally.requests;
        tally.hot_requests += part.tally.hot_requests;
        tally.steal_probes += part.tally.steal_probes;
        tally.steals += part.tally.steals;
        tally.steals_empty += part.tally.steals_empty;
        tally.stolen_work_us += part.tally.stolen_work_us;
        hot_sketch.merge(&part.hot_sketch);
        cold_sketch.merge(&part.cold_sketch);
        clusters.push(part.cluster);
    }
    RackResult {
        cluster: merge_replications(clusters, quantile, confidence),
        tally,
        hot_sketch,
        cold_sketch,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    InService,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    arrival: f64,
    demand: f64,
    measured: bool,
    hot: bool,
    state: JobState,
}

/// One entry of a server's visible-state history: the server's full
/// dispatch-relevant state as of time `t`. The balancer's stale view at
/// `τ` is the last snapshot with `t ≤ τ`.
#[derive(Debug, Clone, Copy)]
struct Snap {
    t: f64,
    in_system: u32,
    queued_work: f64,
    serving: bool,
    serve_end: f64,
}

#[derive(Debug, Clone, Copy)]
enum RackEv {
    Arrive,
    Depart { server: usize, epoch: u64 },
}

impl RackEv {
    /// Tie-break ranks shared with the cluster engine's event kinds
    /// (Arrive = 0, Depart = 2), so at equal times the rack pops events in
    /// the identical order — part of the bitwise-degeneracy contract.
    fn rank(self) -> u8 {
        match self {
            RackEv::Arrive => 0,
            RackEv::Depart { .. } => 2,
        }
    }
}

/// Rack simulation, panicking on saturation. See [`try_simulate_rack`].
///
/// # Panics
///
/// Panics on non-positive `lambda_per_us`, zero servers, an invalid plan,
/// or a saturated pilot estimate.
pub fn simulate_rack(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    policy: BalancerPolicy,
    plan: &RackPlan,
    opts: &ClusterOptions,
) -> RackResult {
    try_simulate_rack(
        lambda_per_us,
        service,
        policy,
        plan,
        opts,
        &Tracer::disabled(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Two-level rack simulation: a rack dispatcher placing Poisson arrivals
/// at `lambda_per_us` onto `opts.servers` FCFS servers under `policy`,
/// with the plan's signal staleness, work stealing, coordination, and
/// tenant skew applied.
///
/// Takes the policy *by value* (not a `&mut dyn Balancer`) because a
/// distributed plan instantiates one balancer per dispatcher.
///
/// Trace vocabulary: measured requests emit
/// [`TraceEvent::RequestArrive`] / [`TraceEvent::Dispatch`] /
/// [`TraceEvent::RequestComplete`] in the shared DES tick domain; counters
/// land under `rack/*` (`rack/requests`, `rack/server/{i}/requests`,
/// `rack/steal/{probes,ok,empty}`), tails under `rack/sojourn_us` and
/// `rack/wait_us`, and the end-of-run DES self-profile under
/// `rack/events/*` and `rack/eventq/*`.
///
/// # Errors
///
/// `Err(Unstable)` when the 512-draw pilot estimates `λ·E[S]/n ≥ 1` —
/// stealing and staleness rebalance work but never add or remove it, so
/// the stability condition is the cluster's.
///
/// # Panics
///
/// Panics on non-positive `lambda_per_us`, zero servers, or an invalid
/// plan (zero dispatchers/tenants, negative or non-finite Δ or skew).
pub fn try_simulate_rack(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    policy: BalancerPolicy,
    plan: &RackPlan,
    opts: &ClusterOptions,
    tracer: &Tracer,
) -> Result<RackResult, Unstable> {
    assert!(lambda_per_us > 0.0, "arrival rate must be positive");
    assert!(opts.servers >= 1, "rack needs at least one server");
    assert!(
        plan.coordination.dispatchers() >= 1,
        "rack needs at least one dispatcher"
    );
    assert!(plan.tenants >= 1, "rack needs at least one tenant");
    assert!(
        plan.delta_us >= 0.0 && plan.delta_us.is_finite(),
        "staleness must be finite and non-negative"
    );
    assert!(
        plan.skew >= 0.0 && plan.skew.is_finite(),
        "tenant skew must be finite and non-negative"
    );
    tracer.set_ticks_per_us(CLUSTER_TICKS_PER_US);
    let n = opts.servers;

    let mut rng = rng_from_seed(opts.seed);
    let interarrival = Exponential::from_rate(lambda_per_us);

    // Identical 512-draw pilot to the cluster engines: same arrival-stream
    // offset, so rack and cluster cells are CRN-comparable (and the Δ=0
    // degeneracy starts from the first post-pilot draw).
    let mut pilot_buf = Vec::new();
    draw_batch(&mut rng, 512, &mut pilot_buf, &mut *service);
    let pilot: f64 = pilot_buf.iter().sum::<f64>() / 512.0;
    let rho_estimate = lambda_per_us * pilot / n as f64;
    if rho_estimate >= 1.0 {
        return Err(Unstable { rho_estimate });
    }

    match opts.event_queue {
        EventQueueKind::Heap => run_rack(
            HeapEventQueue::new(),
            service,
            policy,
            plan,
            opts,
            tracer,
            rng,
            interarrival,
        ),
        EventQueueKind::Wheel => {
            // One arrival + one departure per request: the cluster's event
            // rate with a copies hint of 1, so the wheel geometry (and its
            // profile counters) match the degenerate cluster run exactly.
            run_rack(
                WheelEventQueue::for_rate(lambda_per_us * 2.0),
                service,
                policy,
                plan,
                opts,
                tracer,
                rng,
                interarrival,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rack<Q: EventQueue<RackEv>>(
    queue: Q,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    policy: BalancerPolicy,
    plan: &RackPlan,
    opts: &ClusterOptions,
    tracer: &Tracer,
    mut rng: SimRng,
    interarrival: Exponential,
) -> Result<RackResult, Unstable> {
    let n = opts.servers;
    let stale = plan.delta_us > 0.0;
    let mut brng = rng_from_seed(derive_stream(opts.seed, BALANCER_STREAM));
    // Feature streams, derived independently: consumed only when their
    // feature is enabled, so disabled features are RNG no-ops.
    let mut srng = rng_from_seed(derive_stream(opts.seed, RACK_STEAL_STREAM));
    let mut trng = rng_from_seed(derive_stream(opts.seed, RACK_TENANT_STREAM));
    let tenant_mix = (plan.tenants > 1).then(|| Zipf::new(plan.tenants, plan.skew));
    // Hot tenants: the smallest rank head holding ≥ HOT_MASS of traffic.
    let hot_cutoff = tenant_mix.as_ref().map_or(1, |z| {
        let mut k = 1;
        while z.head_mass(k) < HOT_MASS && k < z.n() {
            k += 1;
        }
        k
    });
    let k_disp = plan.coordination.dispatchers();
    let mut dispatchers: Vec<Box<dyn Balancer>> = (0..k_disp).map(|_| policy.build()).collect();

    let total = opts.warmup + opts.max_samples;
    let req_cap = total.min(1 << 20);
    let mut sim = RackSim {
        plan,
        opts,
        tracer,
        traced: tracer.is_enabled(),
        series_on: tracer.has_timeseries(),
        stale,
        q: vec![VecDeque::new(); n],
        serving: vec![None; n],
        serve_start: vec![0.0; n],
        serve_end: vec![0.0; n],
        epoch: vec![0; n],
        in_system: vec![0; n],
        queued_work: vec![0.0; n],
        hist: vec![VecDeque::new(); if stale { n } else { 0 }],
        windows: vec![VecDeque::new(); if stale { k_disp } else { 0 }],
        jobs: Vec::with_capacity(req_cap),
        queue,
        sojourns: QuantileEstimator::with_capacity(opts.max_samples.min(1 << 20)),
        sketch: LatencySketch::new(),
        hot_sketch: LatencySketch::new(),
        cold_sketch: LatencySketch::new(),
        ev_pushed: [0; 3],
        ev_popped: [0; 3],
        sojourn_sum: Summary::new(),
        wait_sum: Summary::new(),
        per_server: vec![0u64; n],
        tally: RackTally::default(),
        delivered_us: 0.0,
        clock: 0.0,
        converged: false,
        arrivals: 0,
        pick_queues: Vec::with_capacity(n),
        pick_backlog: Vec::with_capacity(n),
        probe_scratch: Vec::with_capacity(n),
    };
    sim.schedule(0.0, RackEv::Arrive);

    while let Some((key, kind)) = sim.queue.pop() {
        sim.ev_popped[usize::from(kind.rank())] += 1;
        match kind {
            RackEv::Arrive => {
                // Same admission rule as the cluster engine: pending
                // arrivals drop once the stopping rule fires; in-flight
                // work drains.
                if sim.converged || sim.arrivals >= total {
                    continue;
                }
                sim.on_arrive(
                    key.t,
                    total,
                    service,
                    &interarrival,
                    tenant_mix.as_ref(),
                    hot_cutoff,
                    &mut dispatchers,
                    &mut rng,
                    &mut brng,
                    &mut trng,
                );
            }
            RackEv::Depart { server, epoch } => {
                sim.on_depart(server, epoch, key.t, &mut srng);
            }
        }
        if sim.series_on {
            sim.sample_gauges(key.t);
        }
    }
    if sim.traced {
        sim.flush_profile();
    }

    let n_f = n as f64;
    let clock = sim.clock;
    let samples = sim.sojourns.count();
    Ok(RackResult {
        cluster: ClusterResult {
            tail_us: sim.sojourns.quantile(opts.quantile).unwrap_or(0.0),
            tail_ci: sim.sojourns.quantile_ci(opts.quantile, opts.confidence),
            mean_sojourn_us: sim.sojourns.mean().unwrap_or(0.0),
            p50_us: sim.sojourns.quantile(0.5).unwrap_or(0.0),
            mean_wait_us: if sim.wait_sum.count() > 0 {
                sim.wait_sum.mean()
            } else {
                0.0
            },
            wait: sim.wait_sum,
            sojourn: sim.sojourn_sum,
            utilization: if clock > 0.0 {
                (sim.delivered_us / (n_f * clock)).min(1.0)
            } else {
                0.0
            },
            per_server_requests: sim.per_server,
            samples,
            converged: sim.converged,
            sojourn_samples: sim.sojourns,
            sketch: sim.sketch,
            measured_us: clock,
        },
        tally: sim.tally,
        hot_sketch: sim.hot_sketch,
        cold_sketch: sim.cold_sketch,
    })
}

struct RackSim<'a, Q> {
    plan: &'a RackPlan,
    opts: &'a ClusterOptions,
    tracer: &'a Tracer,
    traced: bool,
    series_on: bool,
    /// Cached `plan.delta_us > 0.0`: the fresh path must skip all history
    /// bookkeeping (not just produce equal views) to stay bitwise equal to
    /// the cluster engine.
    stale: bool,
    // Per-server FCFS state (the cluster engine's SoA layout, one queue
    // class since the rack issues no duplicates).
    q: Vec<VecDeque<usize>>,
    serving: Vec<Option<usize>>,
    serve_start: Vec<f64>,
    serve_end: Vec<f64>,
    epoch: Vec<u64>,
    in_system: Vec<u32>,
    queued_work: Vec<f64>,
    /// Per-server snapshot history for stale views (empty when Δ = 0).
    /// Front-pruned as `τ = t − Δ` advances; queries are monotone in `t`
    /// because events pop in time order.
    hist: Vec<VecDeque<Snap>>,
    /// Per-dispatcher compensation windows: own placements `(t, server,
    /// demand)` younger than Δ (empty when Δ = 0).
    windows: Vec<VecDeque<(f64, usize, f64)>>,
    jobs: Vec<Job>,
    queue: Q,
    sojourns: QuantileEstimator,
    sketch: LatencySketch,
    hot_sketch: LatencySketch,
    cold_sketch: LatencySketch,
    /// Events pushed / popped per rank (Arrive = 0, Depart = 2; slot 1 is
    /// the cluster's hedge rank, unused here).
    ev_pushed: [u64; 3],
    ev_popped: [u64; 3],
    sojourn_sum: Summary,
    wait_sum: Summary,
    per_server: Vec<u64>,
    tally: RackTally,
    delivered_us: f64,
    clock: f64,
    converged: bool,
    arrivals: usize,
    pick_queues: Vec<u32>,
    pick_backlog: Vec<f64>,
    probe_scratch: Vec<usize>,
}

impl<Q: EventQueue<RackEv>> RackSim<'_, Q> {
    fn schedule(&mut self, t: f64, kind: RackEv) {
        self.ev_pushed[usize::from(kind.rank())] += 1;
        self.queue.push(t, kind.rank(), kind);
    }

    /// Records the server's post-mutation state into its visible history.
    /// No-op on the fresh path.
    fn record_snap(&mut self, server: usize, t: f64) {
        if !self.stale {
            return;
        }
        let snap = Snap {
            t,
            in_system: self.in_system[server],
            queued_work: self.queued_work[server],
            serving: self.serving[server].is_some(),
            serve_end: self.serve_end[server],
        };
        let h = &mut self.hist[server];
        // Several mutations at one instant collapse to the final state —
        // an observer at τ = t sees the state after the whole event.
        match h.back_mut() {
            Some(last) if last.t == t => *last = snap,
            _ => h.push_back(snap),
        }
    }

    /// The server state visible at `τ`: the last snapshot at or before
    /// `τ`, with the in-service residual projected to `τ`. Before any
    /// snapshot the server looks empty. Prunes history the observer can
    /// never need again (queries are monotone in `τ`).
    fn visible(&mut self, server: usize, tau: f64) -> (u32, f64) {
        let h = &mut self.hist[server];
        while h.len() >= 2 && h[1].t <= tau {
            h.pop_front();
        }
        match h.front() {
            Some(snap) if snap.t <= tau => {
                let residual = if snap.serving {
                    (snap.serve_end - tau).max(0.0)
                } else {
                    0.0
                };
                (snap.in_system, snap.queued_work + residual)
            }
            _ => (0, 0.0),
        }
    }

    /// The server state as the dispatcher sees it right now: fresh at
    /// Δ = 0 (bitwise the cluster's view), else the Δ-stale snapshot.
    fn dispatch_view(&mut self, server: usize, t: f64) -> (u32, f64) {
        if !self.stale {
            let residual = if self.serving[server].is_some() {
                (self.serve_end[server] - t).max(0.0)
            } else {
                0.0
            };
            (self.in_system[server], self.queued_work[server] + residual)
        } else {
            self.visible(server, t - self.plan.delta_us)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_arrive(
        &mut self,
        t: f64,
        total: usize,
        service: &mut dyn FnMut(&mut SimRng) -> f64,
        interarrival: &Exponential,
        tenant_mix: Option<&Zipf>,
        hot_cutoff: usize,
        dispatchers: &mut [Box<dyn Balancer>],
        rng: &mut SimRng,
        brng: &mut SimRng,
        trng: &mut SimRng,
    ) {
        let k = self.arrivals;
        self.arrivals += 1;
        // Cluster draw order on the arrival stream: service first, then
        // the interarrival gap (below).
        let s = service(rng);
        let measured = k >= self.opts.warmup;
        // Tenant rank: drawn only when the plan models multiple tenants,
        // so a single-tenant plan never touches the tenant stream.
        let rank = tenant_mix.map_or(0, |z| z.sample(trng));
        let hot = rank < hot_cutoff;
        let disp = rank % dispatchers.len();
        let job = self.jobs.len();
        self.jobs.push(Job {
            arrival: t,
            demand: s,
            measured,
            hot,
            state: JobState::Queued,
        });
        if measured {
            self.tally.requests += 1;
            if hot {
                self.tally.hot_requests += 1;
            }
            if self.traced {
                self.tracer
                    .emit(|| TraceEvent::RequestArrive { at: ns_ticks(t) });
                self.tracer.count("rack/requests", 1);
            }
        }
        self.dispatch(job, s, t, disp, &mut *dispatchers[disp], brng);
        let a = interarrival.sample(rng);
        if measured {
            self.clock += a;
        }
        if self.arrivals < total && !self.converged {
            self.schedule(t + a, RackEv::Arrive);
        }
    }

    /// Places one request through dispatcher `disp`: build the visible
    /// queue/backlog views (fresh or stale-plus-own-compensation), pick,
    /// enqueue, and start service if the server is idle.
    fn dispatch(
        &mut self,
        job: usize,
        demand: f64,
        t: f64,
        disp: usize,
        balancer: &mut dyn Balancer,
        brng: &mut SimRng,
    ) {
        let n = self.serving.len();
        self.pick_queues.clear();
        self.pick_backlog.clear();
        for i in 0..n {
            let (qn, w) = self.dispatch_view(i, t);
            self.pick_queues.push(qn);
            self.pick_backlog.push(w);
        }
        if self.stale {
            // Compensate with this dispatcher's own placements younger
            // than Δ: it knows what it placed, it just cannot see
            // departures (or other dispatchers' placements) that fresh.
            let tau = t - self.plan.delta_us;
            let win = &mut self.windows[disp];
            while win.front().is_some_and(|&(ts, _, _)| ts <= tau) {
                win.pop_front();
            }
            for &(_, s, d) in win.iter() {
                self.pick_queues[s] += 1;
                self.pick_backlog[s] += d;
            }
        }
        let server = balancer.pick(&self.pick_queues, &self.pick_backlog, brng);
        debug_assert!(server < n, "balancer picked out-of-range server {server}");

        let measured = self.jobs[job].measured;
        if measured {
            self.per_server[server] += 1;
            if self.traced {
                let queue_len = self.in_system[server];
                self.tracer.emit(|| TraceEvent::Dispatch {
                    at: ns_ticks(t),
                    server: server as u32,
                    queue_len,
                });
                self.tracer
                    .count(&format!("rack/server/{server}/requests"), 1);
            }
        }
        self.in_system[server] += 1;
        self.queued_work[server] += demand;
        self.q[server].push_back(job);
        if self.stale {
            self.windows[disp].push_back((t, server, demand));
        }
        self.record_snap(server, t);
        self.maybe_start(server, t);
    }

    /// Starts the next queued job on an idle server.
    fn maybe_start(&mut self, server: usize, t: f64) {
        if self.serving[server].is_some() {
            return;
        }
        let Some(j) = self.q[server].pop_front() else {
            return;
        };
        debug_assert_eq!(
            self.jobs[j].state,
            JobState::Queued,
            "queue holds a non-queued job"
        );
        self.jobs[j].state = JobState::InService;
        let demand = self.jobs[j].demand;
        self.serving[server] = Some(j);
        self.serve_start[server] = t;
        self.serve_end[server] = t + demand;
        self.queued_work[server] -= demand;
        self.epoch[server] += 1;
        let epoch = self.epoch[server];
        let end = self.serve_end[server];
        if self.jobs[j].measured {
            let w = t - self.jobs[j].arrival;
            self.wait_sum.record(w);
            if self.traced {
                self.tracer.observe("rack/wait_us", w);
            }
        }
        self.schedule(end, RackEv::Depart { server, epoch });
        self.record_snap(server, t);
    }

    fn on_depart(&mut self, server: usize, epoch: u64, t: f64, srng: &mut SimRng) {
        if self.epoch[server] != epoch {
            return; // stale departure (defensive; the rack never aborts service)
        }
        let j = self.serving[server]
            .take()
            .expect("live Depart on an idle server");
        self.jobs[j].state = JobState::Done;
        self.in_system[server] -= 1;
        let measured = self.jobs[j].measured;
        if measured {
            self.delivered_us += self.jobs[j].demand;
            let sojourn = t - self.jobs[j].arrival;
            self.sojourns.record(sojourn);
            self.sketch.record(sojourn);
            self.sojourn_sum.record(sojourn);
            if self.jobs[j].hot {
                self.hot_sketch.record(sojourn);
            } else {
                self.cold_sketch.record(sojourn);
            }
            if self.traced {
                let at = ns_ticks(t);
                let arrived = ns_ticks(self.jobs[j].arrival);
                self.tracer.emit(|| TraceEvent::RequestComplete {
                    at,
                    latency: at.saturating_sub(arrived),
                });
                self.tracer.observe("rack/sojourn_us", sojourn);
            }
            if self.sojourns.count().is_multiple_of(self.opts.check_every) {
                if let Some(ci) = self
                    .sojourns
                    .quantile_ci(self.opts.quantile, self.opts.confidence)
                {
                    if ci.converged(self.opts.max_relative_error) {
                        self.converged = true;
                    }
                }
            }
        }
        self.record_snap(server, t);
        self.maybe_start(server, t);
        // Work stealing: a server that stays idle after a departure pulls
        // from the longest visible backlog. Probes draw from the steal
        // stream only, so a no-steal plan is an RNG no-op.
        if self.plan.steal.probes > 0 && self.serving[server].is_none() {
            self.try_steal(server, t, srng);
        }
    }

    /// One steal attempt by idle `thief`: probe `d` distinct victims
    /// (partial Fisher–Yates on the steal stream), pick the one with the
    /// longest *visible* backlog above the queue threshold, and migrate
    /// its oldest queued request. A victim whose actual queue turns out
    /// empty — the stale signal lied — counts as `steals_empty`.
    fn try_steal(&mut self, thief: usize, t: f64, srng: &mut SimRng) {
        let n = self.serving.len();
        if n < 2 {
            return;
        }
        let tau = t - self.plan.delta_us;
        self.probe_scratch.clear();
        self.probe_scratch.extend((0..n).filter(|&i| i != thief));
        let m = self.probe_scratch.len();
        let d = self.plan.steal.probes.min(m);
        let mut victim = None;
        let mut best_w = f64::NEG_INFINITY;
        for j in 0..d {
            let r = j + srng.random_range(0..m - j);
            self.probe_scratch.swap(j, r);
            let probe = self.probe_scratch[j];
            self.tally.steal_probes += 1;
            let (qn, w) = if self.stale {
                self.visible(probe, tau)
            } else {
                let residual = if self.serving[probe].is_some() {
                    (self.serve_end[probe] - t).max(0.0)
                } else {
                    0.0
                };
                (self.in_system[probe], self.queued_work[probe] + residual)
            };
            if qn >= self.plan.steal.min_queue && w > best_w {
                best_w = w;
                victim = Some(probe);
            }
        }
        if self.traced {
            self.tracer.count("rack/steal/probes", d as u64);
        }
        let Some(v) = victim else { return };
        let Some(j) = self.q[v].pop_front() else {
            // The visible backlog was stale: the victim has nothing.
            self.tally.steals_empty += 1;
            if self.traced {
                self.tracer.count("rack/steal/empty", 1);
            }
            return;
        };
        let demand = self.jobs[j].demand;
        self.in_system[v] -= 1;
        self.queued_work[v] -= demand;
        self.in_system[thief] += 1;
        self.queued_work[thief] += demand;
        self.q[thief].push_back(j);
        self.tally.steals += 1;
        self.tally.stolen_work_us += demand;
        if self.traced {
            self.tracer.count("rack/steal/ok", 1);
        }
        self.record_snap(v, t);
        self.record_snap(thief, t);
        self.maybe_start(thief, t);
    }

    /// Event-clock gauges, sampled once per popped event when the tracer
    /// opted into time series.
    fn sample_gauges(&self, t: f64) {
        let n = self.serving.len();
        let busy = self.serving.iter().filter(|s| s.is_some()).count();
        let in_flight: u32 = self.in_system.iter().sum();
        let util = if self.clock > 0.0 {
            (self.delivered_us / (n as f64 * self.clock)).min(1.0)
        } else {
            0.0
        };
        let steals = self.tally.steals;
        let depths = &self.in_system;
        self.tracer.sample(|ts| {
            ts.observe("rack/busy_servers", t, busy as f64);
            ts.observe("rack/in_flight", t, f64::from(in_flight));
            ts.observe("rack/utilization", t, util);
            ts.observe("rack/steals", t, steals as f64);
            for (i, &d) in depths.iter().enumerate() {
                ts.observe(&format!("rack/server/{i}/depth"), t, f64::from(d));
            }
        });
    }

    /// End-of-run DES self-profile: per-kind event counters, the event
    /// queue's own bookkeeping, and the sketch's non-finite-drop counter
    /// (the satellite diagnostic for sketch-vs-exact count drift).
    fn flush_profile(&self) {
        for (rank, name) in [(0usize, "arrive"), (2usize, "depart")] {
            self.tracer
                .count(&format!("rack/events/{name}/pushed"), self.ev_pushed[rank]);
            self.tracer
                .count(&format!("rack/events/{name}/popped"), self.ev_popped[rank]);
        }
        let p = self.queue.profile();
        for (name, v) in [
            ("pushes", p.pushes),
            ("pops", p.pops),
            ("max_len", p.max_len),
            ("overflow_pushes", p.overflow_pushes),
            ("overflow_migrations", p.overflow_migrations),
            ("frontier_advances", p.frontier_advances),
            ("frontier_jumps", p.frontier_jumps),
            ("slots_skipped", p.slots_skipped),
            ("max_bucket_len", p.max_bucket_len),
        ] {
            self.tracer.count(&format!("rack/eventq/{name}"), v);
        }
        self.tracer.count(
            "rack/sketch/dropped_nonfinite",
            self.sketch.dropped_nonfinite(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{try_simulate_cluster_hedged, DuplicationPolicy};

    fn fast_opts(servers: usize, seed: u64) -> ClusterOptions {
        ClusterOptions {
            servers,
            max_samples: 120_000,
            warmup: 2_000,
            seed,
            ..ClusterOptions::default()
        }
    }

    fn exp_service(mean: f64) -> impl FnMut(&mut SimRng) -> f64 {
        move |rng: &mut SimRng| Exponential::new(mean).sample(rng)
    }

    const POLICIES: [BalancerPolicy; 5] = [
        BalancerPolicy::Random,
        BalancerPolicy::RoundRobin,
        BalancerPolicy::Jsq,
        BalancerPolicy::PowerOfD(2),
        BalancerPolicy::LeastWork,
    ];

    #[test]
    fn fresh_plan_is_bitwise_the_cluster_engine() {
        // Δ=0, no steal, one tenant: the rack must consume draw-for-draw
        // the cluster's RNG streams and bookkeeping — bitwise equality on
        // every derived statistic, for every policy and both event queues.
        for kind in [EventQueueKind::Wheel, EventQueueKind::Heap] {
            for policy in POLICIES {
                let mut opts = fast_opts(4, 17);
                opts.event_queue = kind;
                let mut svc = exp_service(1.0);
                let rack = try_simulate_rack(
                    3.0,
                    &mut svc,
                    policy,
                    &RackPlan::fresh(),
                    &opts,
                    &Tracer::disabled(),
                )
                .expect("stable");
                let mut svc = exp_service(1.0);
                let cluster = try_simulate_cluster_hedged(
                    3.0,
                    &mut svc,
                    policy.build().as_mut(),
                    &DuplicationPolicy::none(),
                    &opts,
                    &Tracer::disabled(),
                )
                .expect("stable");
                let (r, c) = (&rack.cluster, &cluster.cluster);
                assert_eq!(r.tail_us, c.tail_us, "{policy}/{kind:?}");
                assert_eq!(r.p50_us, c.p50_us, "{policy}/{kind:?}");
                assert_eq!(r.mean_sojourn_us, c.mean_sojourn_us, "{policy}/{kind:?}");
                assert_eq!(r.mean_wait_us, c.mean_wait_us, "{policy}/{kind:?}");
                assert_eq!(r.wait, c.wait, "{policy}/{kind:?}");
                assert_eq!(r.sojourn, c.sojourn, "{policy}/{kind:?}");
                assert_eq!(r.utilization, c.utilization, "{policy}/{kind:?}");
                assert_eq!(r.per_server_requests, c.per_server_requests);
                assert_eq!(r.samples, c.samples, "{policy}/{kind:?}");
                assert_eq!(r.converged, c.converged, "{policy}/{kind:?}");
                assert_eq!(r.sketch, c.sketch, "{policy}/{kind:?}");
                assert_eq!(r.measured_us, c.measured_us, "{policy}/{kind:?}");
                assert_eq!(rack.tally.steals, 0);
                assert_eq!(rack.tally.steal_probes, 0);
            }
        }
    }

    #[test]
    fn same_seed_is_bit_identical_with_all_features_on() {
        let plan = RackPlan::fresh()
            .with_delta(4.0)
            .distributed(2)
            .with_steal(2)
            .with_tenants(64, 0.99);
        let run = |_| {
            let mut svc = exp_service(1.0);
            simulate_rack(3.0, &mut svc, BalancerPolicy::Jsq, &plan, &fast_opts(4, 23))
        };
        let (a, b) = (run(0), run(1));
        assert_eq!(a.cluster.tail_us, b.cluster.tail_us);
        assert_eq!(a.cluster.sojourn, b.cluster.sojourn);
        assert_eq!(a.cluster.per_server_requests, b.cluster.per_server_requests);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.hot_sketch, b.hot_sketch);
        assert_eq!(a.cold_sketch, b.cold_sketch);
    }

    #[test]
    fn wheel_and_heap_agree_under_staleness_and_stealing() {
        let plan = RackPlan::fresh().with_delta(6.0).with_steal(2);
        let run = |kind| {
            let mut opts = fast_opts(4, 29);
            opts.event_queue = kind;
            let mut svc = exp_service(1.0);
            try_simulate_rack(
                3.2,
                &mut svc,
                BalancerPolicy::Jsq,
                &plan,
                &opts,
                &Tracer::disabled(),
            )
            .expect("stable")
        };
        let (w, h) = (run(EventQueueKind::Wheel), run(EventQueueKind::Heap));
        assert_eq!(w.cluster.tail_us, h.cluster.tail_us);
        assert_eq!(w.cluster.sketch, h.cluster.sketch);
        assert_eq!(w.tally, h.tally);
    }

    #[test]
    fn tail_degrades_monotonically_with_staleness() {
        // CRN across Δ: same arrivals and demands, only the dispatcher's
        // information ages. Staler signals must not improve the tail.
        let tails: Vec<f64> = [0.0, 10.0, 40.0]
            .iter()
            .map(|&delta| {
                let mut svc = exp_service(1.0);
                let plan = RackPlan::fresh().with_delta(delta);
                simulate_rack(6.4, &mut svc, BalancerPolicy::Jsq, &plan, &fast_opts(8, 31))
                    .cluster
                    .tail_us
            })
            .collect();
        assert!(
            tails[0] <= tails[1] && tails[1] <= tails[2],
            "p99 must degrade with Δ: {tails:?}"
        );
    }

    #[test]
    fn distributed_dispatch_is_no_better_than_centralized_when_stale() {
        // At Δ>0 a centralized dispatcher compensates with every
        // placement; distributed dispatchers each see only their own.
        let run = |plan: RackPlan| {
            let mut svc = exp_service(1.0);
            simulate_rack(6.4, &mut svc, BalancerPolicy::Jsq, &plan, &fast_opts(8, 37))
                .cluster
                .tail_us
        };
        let central = run(RackPlan::fresh().with_delta(8.0).with_tenants(64, 0.0));
        let dist = run(RackPlan::fresh()
            .with_delta(8.0)
            .with_tenants(64, 0.0)
            .distributed(4));
        assert!(
            central <= dist * 1.02,
            "central p99 {central} should not exceed distributed p99 {dist}"
        );
    }

    #[test]
    fn stealing_rescues_a_weak_placement_policy() {
        // Random placement piles work onto busy servers; idle thieves
        // should claw a large share of the tail back.
        let run = |plan: RackPlan| {
            let mut svc = exp_service(1.0);
            simulate_rack(
                5.6,
                &mut svc,
                BalancerPolicy::Random,
                &plan,
                &fast_opts(8, 41),
            )
        };
        let base = run(RackPlan::fresh());
        let stolen = run(RackPlan::fresh().with_steal(3));
        assert!(stolen.tally.steals > 0, "no steals happened");
        assert!(
            stolen.cluster.tail_us <= base.cluster.tail_us,
            "steal p99 {} vs base p99 {}",
            stolen.cluster.tail_us,
            base.cluster.tail_us
        );
    }

    #[test]
    fn hot_and_cold_tenant_sketches_partition_the_samples() {
        let plan = RackPlan::fresh().with_tenants(128, 0.99);
        let mut svc = exp_service(1.0);
        let r = simulate_rack(3.0, &mut svc, BalancerPolicy::Jsq, &plan, &fast_opts(4, 43));
        assert!(r.tally.hot_requests > 0, "zipf 0.99 must have a hot head");
        assert!(r.tally.hot_requests < r.tally.requests);
        assert_eq!(
            r.hot_sketch.count() + r.cold_sketch.count(),
            r.cluster.samples as u64
        );
        assert_eq!(r.cluster.sketch.count(), r.cluster.samples as u64);
    }

    #[test]
    fn replications_merge_deterministically() {
        let plan = RackPlan::fresh().with_delta(4.0).with_steal(2);
        let part = |seed| {
            let mut svc = exp_service(1.0);
            simulate_rack(
                3.0,
                &mut svc,
                BalancerPolicy::Jsq,
                &plan,
                &fast_opts(4, seed),
            )
        };
        let merged_a = merge_rack_replications(vec![part(1), part(2)], 0.99, 0.95);
        let merged_b = merge_rack_replications(vec![part(1), part(2)], 0.99, 0.95);
        assert_eq!(merged_a.cluster.tail_us, merged_b.cluster.tail_us);
        assert_eq!(merged_a.tally, merged_b.tally);
        assert_eq!(
            merged_a.tally.requests,
            part(1).tally.requests + part(2).tally.requests
        );
    }

    #[test]
    fn saturated_rack_is_a_typed_error() {
        let mut svc = exp_service(1.0);
        let err = try_simulate_rack(
            4.8, // rho = 1.2 on 4 servers
            &mut svc,
            BalancerPolicy::Jsq,
            &RackPlan::fresh(),
            &fast_opts(4, 47),
            &Tracer::disabled(),
        )
        .expect_err("saturated");
        assert!(err.rho_estimate > 1.0);
    }

    #[test]
    fn plan_labels_are_stable() {
        assert_eq!(RackPlan::fresh().label(), "central");
        assert_eq!(RackPlan::fresh().with_delta(4.0).label(), "central_d4");
        assert_eq!(
            RackPlan::fresh()
                .with_delta(4.0)
                .distributed(4)
                .with_tenants(64, 0.99)
                .label(),
            "dist4_d4_z0.99"
        );
        assert_eq!(RackPlan::fresh().with_steal(2).label(), "central_st2");
    }
}
