//! Fan-out ("tail at scale") modelling for mid-tier microservices.
//!
//! §I motivates mid-tier microservices that "must manage fan-out to leaf
//! nodes and wait for the responses": a request completes only when the
//! *slowest* of its `k` leaves answers, so leaf-latency tails are amplified
//! by order statistics. This module extends the paper's single-leaf McRouter
//! model with the max-of-`k` wait, both analytically (for exponential
//! leaves) and by sampling (for any leaf distribution), so fan-out scenarios
//! can be fed into the same M/G/1 machinery as everything else.

use duplexity_stats::dist::Distribution;
use duplexity_stats::rng::SimRng;

/// A synchronous fan-out stage: the caller waits for the slowest of `leaves`
/// independent leaf responses.
#[derive(Debug)]
pub struct FanOut<D> {
    leaves: usize,
    leaf_latency: D,
}

impl<D: Distribution> FanOut<D> {
    /// Creates a fan-out of `leaves` parallel requests with iid latencies.
    ///
    /// # Panics
    ///
    /// Panics if `leaves == 0`.
    #[must_use]
    pub fn new(leaves: usize, leaf_latency: D) -> Self {
        assert!(leaves > 0, "fan-out needs at least one leaf");
        Self {
            leaves,
            leaf_latency,
        }
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Samples the wait: the maximum of `leaves` leaf latencies.
    pub fn sample_wait(&self, rng: &mut SimRng) -> f64 {
        (0..self.leaves)
            .map(|_| self.leaf_latency.sample(rng))
            .fold(0.0, f64::max)
    }

    /// Monte-Carlo estimate of the mean wait over `samples` draws.
    pub fn mean_wait_estimate(&self, rng: &mut SimRng, samples: usize) -> f64 {
        (0..samples.max(1))
            .map(|_| self.sample_wait(rng))
            .sum::<f64>()
            / samples.max(1) as f64
    }
}

/// Analytic mean of the maximum of `k` iid exponential latencies with the
/// given mean: `mean * H_k` (the k-th harmonic number).
///
/// # Examples
///
/// ```
/// use duplexity_queueing::fanout::exponential_fanout_mean;
///
/// // One leaf: just the mean. 100 leaves: ~5.19x amplification.
/// assert_eq!(exponential_fanout_mean(1.0, 1), 1.0);
/// let amp = exponential_fanout_mean(1.0, 100);
/// assert!((amp - 5.19).abs() < 0.01);
/// ```
///
/// # Panics
///
/// Panics if `k == 0` or `mean <= 0`.
#[must_use]
pub fn exponential_fanout_mean(mean: f64, k: usize) -> f64 {
    assert!(k > 0, "fan-out needs at least one leaf");
    assert!(mean > 0.0, "mean must be positive");
    mean * (1..=k).map(|i| 1.0 / i as f64).sum::<f64>()
}

/// Analytic `q`-quantile of the maximum of `k` iid exponential latencies:
/// invert `F(t)^k = q`.
///
/// # Panics
///
/// Panics if `k == 0`, `mean <= 0`, or `q` outside `(0, 1)`.
#[must_use]
pub fn exponential_fanout_quantile(mean: f64, k: usize, q: f64) -> f64 {
    assert!(k > 0 && mean > 0.0, "bad parameters");
    assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
    // F_max(t) = (1 - e^{-t/mean})^k = q  =>  t = -mean ln(1 - q^{1/k}).
    -mean * (1.0 - q.powf(1.0 / k as f64)).ln()
}

/// The tail-amplification factor of fan-out: p99-of-max over p99-of-one.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn tail_amplification(k: usize) -> f64 {
    exponential_fanout_quantile(1.0, k, 0.99) / exponential_fanout_quantile(1.0, 1, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::dist::{Deterministic, Exponential, Uniform};
    use duplexity_stats::rng::rng_from_seed;

    #[test]
    fn single_leaf_is_identity() {
        assert!((exponential_fanout_mean(3.0, 1) - 3.0).abs() < 1e-12);
        let p99 = exponential_fanout_quantile(1.0, 1, 0.99);
        assert!((p99 - 100.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_matches_harmonic_mean() {
        let f = FanOut::new(100, Exponential::new(1.0));
        let mut rng = rng_from_seed(1);
        let est = f.mean_wait_estimate(&mut rng, 20_000);
        let analytic = exponential_fanout_mean(1.0, 100);
        assert!(
            (est - analytic).abs() / analytic < 0.03,
            "mc {est} vs analytic {analytic}"
        );
    }

    #[test]
    fn quantile_matches_sampling() {
        let f = FanOut::new(16, Exponential::new(2.0));
        let mut rng = rng_from_seed(2);
        let mut samples: Vec<f64> = (0..40_000).map(|_| f.sample_wait(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99_mc = samples[(samples.len() as f64 * 0.99) as usize];
        let p99 = exponential_fanout_quantile(2.0, 16, 0.99);
        assert!((p99_mc - p99).abs() / p99 < 0.06, "mc {p99_mc} vs {p99}");
    }

    #[test]
    fn amplification_grows_with_fanout() {
        let a1 = tail_amplification(1);
        let a10 = tail_amplification(10);
        let a100 = tail_amplification(100);
        assert!((a1 - 1.0).abs() < 1e-12);
        assert!(a10 > 1.3);
        assert!(a100 > a10);
        // But sub-linearly: 100x leaves is nowhere near 100x tail.
        assert!(a100 < 3.0, "a100 {a100}");
    }

    #[test]
    fn deterministic_leaves_do_not_amplify() {
        let f = FanOut::new(64, Deterministic::new(4.0));
        let mut rng = rng_from_seed(3);
        assert_eq!(f.sample_wait(&mut rng), 4.0);
    }

    #[test]
    fn bounded_leaves_max_out_near_the_bound() {
        // The paper's 3-5µs leaf band: wide fan-out pushes the wait to ~5µs.
        let f = FanOut::new(100, Uniform::new(3.0, 5.0));
        let mut rng = rng_from_seed(4);
        let est = f.mean_wait_estimate(&mut rng, 5_000);
        assert!((4.9..5.0).contains(&est), "est {est}");
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn rejects_zero_leaves() {
        let _ = FanOut::new(0, Deterministic::new(1.0));
    }
}
