//! Load-balanced n-server farm: many dyads behind one balancer.
//!
//! The paper's server-level results come from BigHouse-style simulation of
//! a *cluster* of servers fed by a load balancer, not a lone M/G/1 queue.
//! This module scales [`des`](crate::des) to that setting: `n` FCFS servers
//! whose service times are drawn from a caller-supplied closure (calibrated
//! per-design by the cycle-level dyad sims upstream), with arrivals routed
//! by a pluggable [`Balancer`]. RackSched-style results say the policy
//! choice — Random vs JSQ vs power-of-d — dominates the tail at
//! microsecond scale, so the policy is a first-class grid axis.
//!
//! Determinism contract: the arrival/service draws and the balancer's own
//! randomness come from two *independent* derived streams
//! ([`derive_stream`]). Every policy therefore sees the identical marked
//! point process (arrival time, service demand) and differs only in
//! assignments — common random numbers across the policy axis — and results
//! are a pure function of `(inputs, seed)`, bit-identical at any worker
//! count. With `n = 1` every policy degenerates to the same single queue
//! and consumes the exact RNG draw sequence of
//! [`simulate_mg1`](crate::des::simulate_mg1); waits agree up to
//! floating-point rounding (absolute-time bookkeeping here vs the
//! incremental Lindley recursion there).

use crate::des::{Mg1Options, Unstable};
use crate::eventcore::{EventQueue, EventQueueKind, HeapEventQueue, WheelEventQueue};
use duplexity_obs::{LatencySketch, TraceEvent, Tracer};
use duplexity_stats::ci::ConfidenceInterval;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{derive_stream, draw_batch, rng_from_seed, SimRng};
use duplexity_stats::summary::Summary;
use rand::RngExt;
use std::collections::VecDeque;

/// Cluster traces share the DES clock domain: 1000 ticks per simulated µs.
/// Shared with [`rack`](crate::rack), whose traces live in the same domain.
pub(crate) const CLUSTER_TICKS_PER_US: f64 = 1000.0;

/// Stream label for the balancer's private RNG (vs the arrival stream).
/// Shared with [`rack`](crate::rack): the rack scheduler derives its
/// balancer stream from the *same* label so a fresh-signal (Δ=0) rack plan
/// consumes draw-for-draw the cluster engine's balancer sequence — the
/// bitwise-degeneracy contract.
pub(crate) const BALANCER_STREAM: u64 = 0xBA1A;

/// Stream label for duplicate-copy service demands. Like the balancer
/// stream, this is derived independently from the seed so the primary
/// arrival/service point process is untouched by duplication: a plan that
/// issues zero duplicates draws nothing from it and is an RNG no-op,
/// which is what keeps every pre-existing golden fixture byte-identical.
const DUPLICATE_STREAM: u64 = 0xD0B7;

pub(crate) fn ns_ticks(us: f64) -> u64 {
    (us * CLUSTER_TICKS_PER_US).round().max(0.0) as u64
}

/// A load-balancing policy: given the per-server queue lengths and
/// unfinished-work backlogs at an arrival instant (both measured *before*
/// the new request is placed), pick a server index.
///
/// Implementations may consume `rng` (Random, power-of-d) or not (JSQ,
/// RoundRobin, LeastWork); either way the stream is private to the
/// balancer, so policies are interchangeable without perturbing the
/// arrival/service sample path.
pub trait Balancer {
    /// Short policy name for reports and trace labels.
    fn name(&self) -> &'static str;
    /// Chooses a server in `0..queues.len()`.
    fn pick(&mut self, queues: &[u32], backlog_us: &[f64], rng: &mut SimRng) -> usize;
}

/// Uniform-random assignment: the memoryless baseline every other policy
/// must beat.
#[derive(Debug, Default)]
pub struct RandomBalancer;

impl Balancer for RandomBalancer {
    fn name(&self) -> &'static str {
        "random"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], rng: &mut SimRng) -> usize {
        rng.random_range(0..queues.len())
    }
}

/// Strict rotation: request k goes to server k mod n.
#[derive(Debug, Default)]
pub struct RoundRobinBalancer {
    next: usize,
}

impl Balancer for RoundRobinBalancer {
    fn name(&self) -> &'static str {
        "round_robin"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], _rng: &mut SimRng) -> usize {
        let i = self.next % queues.len();
        self.next = (self.next + 1) % queues.len();
        i
    }
}

/// Join-the-shortest-queue: argmin of instantaneous queue *length*
/// (waiting + in service), ties to the lowest index.
#[derive(Debug, Default)]
pub struct JsqBalancer;

impl Balancer for JsqBalancer {
    fn name(&self) -> &'static str {
        "jsq"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], _rng: &mut SimRng) -> usize {
        argmin_u32(queues)
    }
}

/// Power-of-d choices: probe `d` *distinct* uniformly random servers
/// (sampled without replacement via a partial Fisher–Yates shuffle), join
/// the shortest probe, ties to the lowest server index. `d = 2` is the
/// classic "power of two choices"; `d ≥ n` probes every server and is
/// therefore identical to JSQ on every sample path (same pick at every
/// arrival), which the property suite asserts.
#[derive(Debug)]
pub struct PowerOfDBalancer {
    d: usize,
    scratch: Vec<usize>,
}

impl PowerOfDBalancer {
    /// A power-of-`d` balancer. `d` is clamped to at least 1 (and to the
    /// server count at pick time).
    pub fn new(d: usize) -> Self {
        Self {
            d: d.max(1),
            scratch: Vec::new(),
        }
    }
}

impl Balancer for PowerOfDBalancer {
    fn name(&self) -> &'static str {
        "power_of_d"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], rng: &mut SimRng) -> usize {
        let n = queues.len();
        let d = self.d.min(n);
        self.scratch.clear();
        self.scratch.extend(0..n);
        let mut best = usize::MAX;
        for j in 0..d {
            let r = j + rng.random_range(0..n - j);
            self.scratch.swap(j, r);
            let probe = self.scratch[j];
            if best == usize::MAX
                || queues[probe] < queues[best]
                || (queues[probe] == queues[best] && probe < best)
            {
                best = probe;
            }
        }
        best
    }
}

/// Least-unfinished-work: argmin of the per-server backlog in µs, ties to
/// the lowest index. With FCFS servers this is *exactly* equivalent to a
/// single central FCFS queue feeding `n` servers (every request starts as
/// early as possible), which is what makes the M/M/k Erlang-C cross-check
/// exact — JSQ by queue length is not, because a short queue can hide a
/// long residual service.
#[derive(Debug, Default)]
pub struct LeastWorkBalancer;

impl Balancer for LeastWorkBalancer {
    fn name(&self) -> &'static str {
        "least_work"
    }
    fn pick(&mut self, _queues: &[u32], backlog_us: &[f64], _rng: &mut SimRng) -> usize {
        let mut best = 0;
        for (i, &b) in backlog_us.iter().enumerate().skip(1) {
            if b < backlog_us[best] {
                best = i;
            }
        }
        best
    }
}

fn argmin_u32(xs: &[u32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// Value-level balancer selector, so experiment grids can enumerate
/// policies in config structs and serialize them by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Uniform-random assignment.
    Random,
    /// Strict rotation.
    RoundRobin,
    /// Join the shortest queue.
    Jsq,
    /// Probe `d` random servers, join the shortest probe.
    PowerOfD(usize),
    /// Join the server with the least unfinished work (central-queue
    /// equivalent).
    LeastWork,
}

impl BalancerPolicy {
    /// Instantiates the policy's balancer state.
    pub fn build(&self) -> Box<dyn Balancer> {
        match self {
            BalancerPolicy::Random => Box::new(RandomBalancer),
            BalancerPolicy::RoundRobin => Box::new(RoundRobinBalancer::default()),
            BalancerPolicy::Jsq => Box::new(JsqBalancer),
            BalancerPolicy::PowerOfD(d) => Box::new(PowerOfDBalancer::new(*d)),
            BalancerPolicy::LeastWork => Box::new(LeastWorkBalancer),
        }
    }

    /// Stable snake_case name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BalancerPolicy::Random => "random",
            BalancerPolicy::RoundRobin => "round_robin",
            BalancerPolicy::Jsq => "jsq",
            BalancerPolicy::PowerOfD(_) => "power_of_d",
            BalancerPolicy::LeastWork => "least_work",
        }
    }
}

impl std::fmt::Display for BalancerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalancerPolicy::PowerOfD(d) => write!(f, "power_of_{d}"),
            other => f.write_str(other.name()),
        }
    }
}

/// Cluster simulation control parameters. Mirrors [`Mg1Options`] (same
/// BigHouse stopping rule) plus the server count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterOptions {
    /// Number of servers behind the balancer (≥ 1).
    pub servers: usize,
    /// Target quantile of sojourn time (the paper reports p99).
    pub quantile: f64,
    /// Confidence level for the stopping rule.
    pub confidence: f64,
    /// Maximum relative CI half-width before stopping.
    pub max_relative_error: f64,
    /// Requests discarded as warm-up before measuring.
    pub warmup: usize,
    /// Hard cap on measured requests.
    pub max_samples: usize,
    /// Convergence is checked every this many samples.
    pub check_every: usize,
    /// RNG seed; arrival/service and balancer streams are derived from it.
    pub seed: u64,
    /// Future-event-set implementation for the event-driven engine
    /// ([`try_simulate_cluster_hedged`]). Bit-identical across kinds by
    /// the [`eventcore`](crate::eventcore) tie-break contract; the legacy
    /// Lindley engine ignores it.
    pub event_queue: EventQueueKind,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        let q = Mg1Options::default();
        Self {
            servers: 4,
            quantile: q.quantile,
            confidence: q.confidence,
            max_relative_error: q.max_relative_error,
            warmup: q.warmup,
            max_samples: q.max_samples,
            check_every: q.check_every,
            seed: q.seed,
            event_queue: EventQueueKind::default(),
        }
    }
}

impl ClusterOptions {
    /// Lifts single-queue options to a cluster of `servers`.
    pub fn from_mg1(servers: usize, q: &Mg1Options) -> Self {
        Self {
            servers,
            quantile: q.quantile,
            confidence: q.confidence,
            max_relative_error: q.max_relative_error,
            warmup: q.warmup,
            max_samples: q.max_samples,
            check_every: q.check_every,
            seed: q.seed,
            event_queue: EventQueueKind::default(),
        }
    }
}

/// Which simulation engine a zero-duplication cluster cell runs. The two
/// engines agree to ~1e-9 relative error (absolute-time bookkeeping vs
/// the incremental Lindley recursion) and make identical dispatch
/// decisions; the event engine is the fast path, the Lindley loop the
/// long-standing reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEngine {
    /// The legacy arrival-ordered Lindley loop ([`try_simulate_cluster`]).
    Lindley,
    /// The event-driven engine ([`try_simulate_cluster_hedged`] with
    /// [`DuplicationPolicy::none`]) on the given future-event set.
    Event(EventQueueKind),
}

impl Default for ClusterEngine {
    fn default() -> Self {
        ClusterEngine::Event(EventQueueKind::default())
    }
}

impl ClusterEngine {
    /// Stable snake_case name for reports and JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ClusterEngine::Lindley => "lindley",
            ClusterEngine::Event(EventQueueKind::Heap) => "event_heap",
            ClusterEngine::Event(EventQueueKind::Wheel) => "event_wheel",
        }
    }
}

impl std::fmt::Display for ClusterEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Results of one cluster simulation.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// The target quantile of sojourn time, µs.
    pub tail_us: f64,
    /// Confidence interval around [`ClusterResult::tail_us`], if computable.
    pub tail_ci: Option<ConfidenceInterval>,
    /// Mean sojourn time, µs.
    pub mean_sojourn_us: f64,
    /// Median sojourn time, µs.
    pub p50_us: f64,
    /// Mean queueing delay (time between arrival and service start), µs.
    pub mean_wait_us: f64,
    /// Queueing-delay statistics, µs (feeds the Erlang-C cross-check).
    pub wait: Summary,
    /// Sojourn-time statistics, µs.
    pub sojourn: Summary,
    /// Mean per-server busy fraction over the measured window.
    pub utilization: f64,
    /// Measured requests dispatched to each server.
    pub per_server_requests: Vec<u64>,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the cap.
    pub converged: bool,
    /// Raw sojourn samples (the estimator behind `tail_us`), retained so
    /// independent replications can be pooled exactly rather than by
    /// quantile averaging.
    pub sojourn_samples: QuantileEstimator,
    /// Streaming log-bucketed histogram of the same sojourn stream
    /// (constant memory, ~1% relative error on quantiles), mergeable
    /// across replications in replication order with results identical to
    /// sketching the concatenated stream.
    pub sketch: LatencySketch,
    /// Simulated measured-window duration, µs — the clock behind
    /// `utilization`, needed to reconstruct busy time when merging.
    pub measured_us: f64,
}

/// Pools independent replications of one cluster cell into a single
/// result, *in replication order*, so the merge is a pure function of the
/// ordered replication list (bit-identical at any worker count).
///
/// Sojourn quantiles/means come from the pooled raw samples; waits and
/// sojourn summaries use the exact Welford merge; utilization re-weights
/// each replication's busy time by its own measured window. `converged`
/// means every replication converged.
///
/// # Panics
///
/// Panics if `parts` is empty or the replications disagree on the server
/// count.
#[must_use]
pub fn merge_replications(
    parts: Vec<ClusterResult>,
    quantile: f64,
    confidence: f64,
) -> ClusterResult {
    assert!(!parts.is_empty(), "cannot merge zero replications");
    let servers = parts[0].per_server_requests.len();
    let total: usize = parts.iter().map(|p| p.sojourn_samples.count()).sum();
    let mut sojourns = QuantileEstimator::with_capacity(total);
    let mut sketch = LatencySketch::new();
    let mut wait = Summary::new();
    let mut sojourn = Summary::new();
    let mut per_server = vec![0u64; servers];
    let mut busy = 0.0f64;
    let mut measured_us = 0.0f64;
    let mut samples = 0usize;
    let mut converged = true;
    for part in parts {
        assert_eq!(
            part.per_server_requests.len(),
            servers,
            "replications must share the server count"
        );
        busy += part.utilization * servers as f64 * part.measured_us;
        measured_us += part.measured_us;
        wait.merge(&part.wait);
        sojourn.merge(&part.sojourn);
        for (acc, x) in per_server.iter_mut().zip(&part.per_server_requests) {
            *acc += x;
        }
        samples += part.samples;
        converged &= part.converged;
        sketch.merge(&part.sketch);
        sojourns.extend(part.sojourn_samples.into_sorted());
    }
    ClusterResult {
        tail_us: sojourns.quantile(quantile).unwrap_or(0.0),
        tail_ci: sojourns.quantile_ci(quantile, confidence),
        mean_sojourn_us: sojourns.mean().unwrap_or(0.0),
        p50_us: sojourns.quantile(0.5).unwrap_or(0.0),
        mean_wait_us: if wait.count() > 0 { wait.mean() } else { 0.0 },
        wait,
        sojourn,
        utilization: if measured_us > 0.0 {
            (busy / (servers as f64 * measured_us)).min(1.0)
        } else {
            0.0
        },
        per_server_requests: per_server,
        samples,
        converged,
        sojourn_samples: sojourns,
        sketch,
        measured_us,
    }
}

/// Simulates `n` FCFS servers behind `balancer` with aggregate Poisson
/// arrivals at `lambda_per_us` and iid service demands from `service`,
/// panicking on a saturated configuration.
///
/// # Panics
///
/// Panics if `lambda_per_us` is not positive, `opts.servers` is zero, or
/// the pilot load estimate `λ·E[S]/n` is ≥ 1. Sweep drivers should call
/// [`try_simulate_cluster`] and render the [`Unstable`] cell instead.
pub fn simulate_cluster(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    opts: &ClusterOptions,
) -> ClusterResult {
    try_simulate_cluster(lambda_per_us, service, balancer, opts, &Tracer::disabled())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking cluster simulation with an optional tracer attached.
///
/// Each measured request emits [`TraceEvent::RequestArrive`], a
/// [`TraceEvent::Dispatch`] carrying the chosen server and its pre-arrival
/// queue length, and [`TraceEvent::RequestComplete`], all stamped in the
/// DES nanosecond-tick domain (1000 ticks per simulated µs). The tracer
/// consumes no RNG draws, so tracing never perturbs results.
///
/// A pilot estimate of `λ·E[S]/n ≥ 1` yields `Err(Unstable)` — the typed
/// saturated-cell verdict — instead of panicking, so grids probing ρ → 1
/// survive their hopeless cells.
pub fn try_simulate_cluster(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    opts: &ClusterOptions,
    tracer: &Tracer,
) -> Result<ClusterResult, Unstable> {
    assert!(lambda_per_us > 0.0, "arrival rate must be positive");
    assert!(opts.servers >= 1, "cluster needs at least one server");
    tracer.set_ticks_per_us(CLUSTER_TICKS_PER_US);
    let traced = tracer.is_enabled();
    let series_on = tracer.has_timeseries();
    let n = opts.servers;

    // Two independent streams: the arrival stream reproduces the exact
    // draw order of the M/G/1 DES (service then interarrival), and the
    // balancer stream is private, so every policy sees the same marked
    // point process (common random numbers across the policy axis).
    let mut rng = rng_from_seed(opts.seed);
    let mut brng = rng_from_seed(derive_stream(opts.seed, BALANCER_STREAM));
    let interarrival = Exponential::from_rate(lambda_per_us);

    // Pilot: estimate the mean service demand to reject saturated inputs.
    // Drawn as one batch — bitwise the same stream as 512 sequential
    // draws (see `draw_batch`), just without 512 closure-call overheads
    // in between.
    let mut pilot_buf = Vec::new();
    draw_batch(&mut rng, 512, &mut pilot_buf, &mut *service);
    let pilot: f64 = pilot_buf.iter().sum::<f64>() / 512.0;
    let rho_estimate = lambda_per_us * pilot / n as f64;
    if rho_estimate >= 1.0 {
        return Err(Unstable { rho_estimate });
    }

    // Per-server FCFS state: `free_at[i]` is when server i drains its
    // backlog (so wait = max(0, free_at[i] - t)), and `in_system[i]` holds
    // the completion times of requests still present, pruned lazily, for
    // queue-length balancers.
    let mut free_at = vec![0.0f64; n];
    let mut in_system: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut queues = vec![0u32; n];
    let mut backlog = vec![0.0f64; n];
    let mut per_server = vec![0u64; n];

    let mut sojourns = QuantileEstimator::with_capacity(opts.max_samples.min(1 << 20));
    let mut sketch = LatencySketch::new();
    let mut sojourn_sum = Summary::new();
    let mut wait_sum = Summary::new();
    let mut busy_time = 0.0f64;
    let mut clock = 0.0f64;
    let mut converged = false;
    let mut t = 0.0f64;

    let total = opts.warmup + opts.max_samples;
    for k in 0..total {
        // Same draw order as the M/G/1 DES: service first, then the
        // interarrival gap — with n = 1 the RNG sequence is draw-for-draw
        // identical to `simulate_mg1`.
        let s = service(&mut rng);
        let measured = k >= opts.warmup;

        for i in 0..n {
            let q = &mut in_system[i];
            while q.front().is_some_and(|&done| done <= t) {
                q.pop_front();
            }
            queues[i] = q.len() as u32;
            backlog[i] = (free_at[i] - t).max(0.0);
        }

        let pick = balancer.pick(&queues, &backlog, &mut brng);
        debug_assert!(pick < n, "balancer picked out-of-range server {pick}");
        let wait = backlog[pick];
        let done = t + wait + s;
        free_at[pick] = done;
        in_system[pick].push_back(done);

        if measured {
            sojourns.record(wait + s);
            sketch.record(wait + s);
            sojourn_sum.record(wait + s);
            wait_sum.record(wait);
            busy_time += s;
            per_server[pick] += 1;
            if series_on {
                // Event-clock gauges, sampled at the (pre-placement)
                // arrival instant. Only runs when the tracer opted into
                // time series, so the default path never pays for it.
                tracer.sample(|ts| {
                    let mut in_flight = 0u64;
                    for (i, &q) in queues.iter().enumerate() {
                        ts.observe(&format!("cluster/server/{i}/depth"), t, f64::from(q));
                        in_flight += u64::from(q);
                    }
                    ts.observe("cluster/in_flight", t, in_flight as f64);
                    ts.observe("cluster/wait_us", t, wait);
                });
            }
            if traced {
                let at = ns_ticks(t);
                let fin = ns_ticks(done);
                tracer.emit(|| TraceEvent::RequestArrive { at });
                tracer.emit(|| TraceEvent::Dispatch {
                    at,
                    server: pick as u32,
                    queue_len: queues[pick],
                });
                tracer.emit(|| TraceEvent::RequestComplete {
                    at: fin,
                    latency: fin.saturating_sub(at),
                });
                tracer.count("cluster/requests", 1);
                tracer.count(&format!("cluster/server/{pick}/requests"), 1);
                tracer.observe("cluster/sojourn_us", wait + s);
                tracer.observe("cluster/wait_us", wait);
            }
        }

        let a = interarrival.sample(&mut rng);
        t += a;
        if measured {
            clock += a;
        }

        if measured && sojourns.count().is_multiple_of(opts.check_every) {
            if let Some(ci) = sojourns.quantile_ci(opts.quantile, opts.confidence) {
                if ci.converged(opts.max_relative_error) {
                    converged = true;
                    break;
                }
            }
        }
    }

    let samples = sojourns.count();
    Ok(ClusterResult {
        tail_us: sojourns.quantile(opts.quantile).unwrap_or(0.0),
        tail_ci: sojourns.quantile_ci(opts.quantile, opts.confidence),
        mean_sojourn_us: sojourns.mean().unwrap_or(0.0),
        p50_us: sojourns.quantile(0.5).unwrap_or(0.0),
        mean_wait_us: if wait_sum.count() > 0 {
            wait_sum.mean()
        } else {
            0.0
        },
        wait: wait_sum,
        sojourn: sojourn_sum,
        utilization: if clock > 0.0 {
            (busy_time / (n as f64 * clock)).min(1.0)
        } else {
            0.0
        },
        per_server_requests: per_server,
        samples,
        converged,
        sojourn_samples: sojourns,
        sketch,
        measured_us: clock,
    })
}

/// How duplicate copies of a request are launched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DupMode {
    /// No duplication: the undecorated base policy.
    None,
    /// Eagerly dispatch `copies` total copies at the arrival instant,
    /// masked to distinct servers where the farm allows it.
    Duplicate {
        /// Total copies including the primary (≥ 1; 1 means no extras).
        copies: usize,
    },
    /// Dispatch one copy at arrival and launch a single duplicate only if
    /// the request is still incomplete `deadline_us` later. A deadline of
    /// `0` degenerates to eager `Duplicate { copies: 2 }` (the duplicate
    /// launches in the same arrival instant, on the identical code path),
    /// and an infinite deadline never fires, making the plan a bitwise
    /// no-op over the base policy.
    Hedge {
        /// Latency budget before the duplicate launches, µs.
        deadline_us: f64,
    },
}

/// A cluster-level tail-cutting plan: when duplicates launch
/// ([`DupMode`]), whether the losing siblings are purged on first
/// completion (tied requests), and whether duplicates queue at low
/// priority behind primaries (D-Stage style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicationPolicy {
    /// When duplicate copies are launched.
    pub mode: DupMode,
    /// Purge sibling copies at the first completion: queued copies are
    /// removed from their queue, an in-service copy is abandoned
    /// mid-service (its remaining demand is never delivered).
    pub purge: bool,
    /// Queue duplicate copies behind *all* queued primaries
    /// (non-preemptive two-class priority; primaries never wait behind a
    /// queued duplicate).
    pub low_priority: bool,
}

impl DuplicationPolicy {
    /// The undecorated base policy: no duplicates, ever.
    #[must_use]
    pub fn none() -> Self {
        Self {
            mode: DupMode::None,
            purge: true,
            low_priority: false,
        }
    }

    /// Eager duplicate-to-`copies`-servers with purge-on-first-completion.
    #[must_use]
    pub fn duplicate(copies: usize) -> Self {
        Self {
            mode: DupMode::Duplicate { copies },
            purge: true,
            low_priority: false,
        }
    }

    /// Deadline-triggered hedge with purge-on-first-completion.
    #[must_use]
    pub fn hedge(deadline_us: f64) -> Self {
        Self {
            mode: DupMode::Hedge { deadline_us },
            purge: true,
            low_priority: false,
        }
    }

    /// Disables purging: losing copies run to completion (eager
    /// duplication at its most expensive).
    #[must_use]
    pub fn without_purge(mut self) -> Self {
        self.purge = false;
        self
    }

    /// Queues duplicates at low priority behind primaries.
    #[must_use]
    pub fn at_low_priority(mut self) -> Self {
        self.low_priority = true;
        self
    }

    /// Stable label for reports and JSON: `none`, `dup2`, `hedge20`, with
    /// `_np` (no purge) and `_lp` (low-priority duplicates) suffixes.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = match self.mode {
            DupMode::None => return "none".to_string(),
            DupMode::Duplicate { copies } => format!("dup{copies}"),
            DupMode::Hedge { deadline_us } => format!("hedge{deadline_us}"),
        };
        if !self.purge {
            s.push_str("_np");
        }
        if self.low_priority {
            s.push_str("_lp");
        }
        s
    }
}

impl std::fmt::Display for DuplicationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Duplication bookkeeping over the measured window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DupTally {
    /// Measured requests admitted (each completes exactly once).
    pub requests: u64,
    /// Copies dispatched for measured requests, primaries included.
    pub copies_issued: u64,
    /// Duplicate copies only (eager extras + fired hedges).
    pub dup_copies: u64,
    /// Copies that ran to completion (first + redundant).
    pub completions: u64,
    /// Redundant completions: a sibling had already finished (only
    /// possible with purging disabled).
    pub wasted_completions: u64,
    /// Hedge deadlines that fired a duplicate.
    pub hedges_fired: u64,
    /// Hedge deadlines that found the request already complete.
    pub hedges_cancelled: u64,
    /// Sibling copies purged while still queued (zero service delivered).
    pub purged_queued: u64,
    /// Sibling copies abandoned mid-service.
    pub purged_in_service: u64,
    /// Service time actually delivered to duplicate copies, µs (partial
    /// service up to the purge instant for abandoned copies).
    pub dup_delivered_us: f64,
}

/// Results of one duplication-aware cluster simulation.
#[derive(Debug, Clone)]
pub struct HedgedClusterResult {
    /// The base cluster metrics. `wait` / `mean_wait_us` cover primary
    /// copies only (the class the two-class priority closed form
    /// predicts); `utilization` counts *delivered* service time, so
    /// purged work is excluded.
    pub cluster: ClusterResult,
    /// Duplication/purge counters over the measured window.
    pub tally: DupTally,
    /// Queueing delay of duplicate copies that reached service, measured
    /// from their own dispatch instant, µs.
    pub dup_wait: Summary,
    /// Per-server busy fraction attributable to duplicate copies — the
    /// "added load" axis of the tail-latency-per-unit-added-load
    /// frontier.
    pub added_utilization: f64,
}

/// Pools independent replications of one hedged cluster cell, *in
/// replication order* (the hedged counterpart of [`merge_replications`]
/// — same contract: a pure function of the ordered replication list,
/// bit-identical at any worker count).
///
/// Cluster metrics merge via [`merge_replications`]; tallies sum
/// fieldwise; duplicate waits use the exact Welford merge; added
/// utilization re-derives from the pooled duplicate-delivered service
/// time over the pooled measured window, mirroring the single-run
/// definition.
///
/// # Panics
///
/// Panics if `parts` is empty or the replications disagree on the server
/// count.
#[must_use]
pub fn merge_hedged_replications(
    parts: Vec<HedgedClusterResult>,
    quantile: f64,
    confidence: f64,
) -> HedgedClusterResult {
    assert!(!parts.is_empty(), "cannot merge zero replications");
    let mut tally = DupTally::default();
    let mut dup_wait = Summary::new();
    let mut clusters = Vec::with_capacity(parts.len());
    for part in parts {
        tally.requests += part.tally.requests;
        tally.copies_issued += part.tally.copies_issued;
        tally.dup_copies += part.tally.dup_copies;
        tally.completions += part.tally.completions;
        tally.wasted_completions += part.tally.wasted_completions;
        tally.hedges_fired += part.tally.hedges_fired;
        tally.hedges_cancelled += part.tally.hedges_cancelled;
        tally.purged_queued += part.tally.purged_queued;
        tally.purged_in_service += part.tally.purged_in_service;
        tally.dup_delivered_us += part.tally.dup_delivered_us;
        dup_wait.merge(&part.dup_wait);
        clusters.push(part.cluster);
    }
    let cluster = merge_replications(clusters, quantile, confidence);
    let denom = cluster.per_server_requests.len() as f64 * cluster.measured_us;
    let added_utilization = if denom > 0.0 {
        (tally.dup_delivered_us / denom).min(1.0)
    } else {
        0.0
    };
    HedgedClusterResult {
        cluster,
        tally,
        dup_wait,
        added_utilization,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyState {
    Queued,
    InService,
    Done,
    Purged,
}

#[derive(Debug, Clone, Copy)]
struct CopyCell {
    req: usize,
    demand: f64,
    server: usize,
    issued_at: f64,
    is_dup: bool,
    state: CopyState,
}

#[derive(Debug)]
struct ReqCell {
    arrival: f64,
    measured: bool,
    completed: bool,
    copies: Vec<usize>,
}

/// Per-server queue state in struct-of-arrays layout. The dispatch hot
/// path reads `in_system` / `serve_end` / `queued_work` across *every*
/// candidate server at each pick, so parallel arrays keep those scans on
/// dense cache lines instead of striding over whole per-server structs —
/// the same reason the cycle sims pre-size their ROB/LSQ arrays.
#[derive(Debug, Default)]
struct ServerSoa {
    prim_q: Vec<VecDeque<usize>>,
    dup_q: Vec<VecDeque<usize>>,
    serving: Vec<Option<usize>>,
    serve_start: Vec<f64>,
    serve_end: Vec<f64>,
    /// Bumped at every service start *and* every in-service abort, so a
    /// Depart event scheduled for an aborted service is recognized as
    /// stale and ignored (lazy cancellation).
    epoch: Vec<u64>,
    /// Live copies per server: queued + in service.
    in_system: Vec<u32>,
    /// Unstarted demand queued per server, µs.
    queued_work: Vec<f64>,
}

impl ServerSoa {
    fn new(n: usize) -> Self {
        Self {
            prim_q: vec![VecDeque::new(); n],
            dup_q: vec![VecDeque::new(); n],
            serving: vec![None; n],
            serve_start: vec![0.0; n],
            serve_end: vec![0.0; n],
            epoch: vec![0; n],
            in_system: vec![0; n],
            queued_work: vec![0.0; n],
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum EvKind {
    Arrive,
    HedgeFire { req: usize },
    Depart { server: usize, epoch: u64 },
}

impl EvKind {
    /// The engine's tie-break rank at equal event times — the `kind`
    /// component of the [`EventKey`](crate::eventcore::EventKey) total
    /// order: arrivals first, then hedge deadlines, then departures.
    /// A hedge deadline landing exactly on its request's completion
    /// instant therefore *fires* (the completion is processed after it) —
    /// a deliberate, documented choice that both event-queue
    /// implementations honor by construction, so the tie cannot become an
    /// implementation-dependent coin flip.
    fn rank(self) -> u8 {
        match self {
            EvKind::Arrive => 0,
            EvKind::HedgeFire { .. } => 1,
            EvKind::Depart { .. } => 2,
        }
    }
}

/// Duplication-aware cluster simulation, panicking on saturation. See
/// [`try_simulate_cluster_hedged`].
///
/// # Panics
///
/// Panics on non-positive `lambda_per_us`, zero servers, or a saturated
/// pilot estimate.
pub fn simulate_cluster_hedged(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    plan: &DuplicationPolicy,
    opts: &ClusterOptions,
) -> HedgedClusterResult {
    try_simulate_cluster_hedged(
        lambda_per_us,
        service,
        balancer,
        plan,
        opts,
        &Tracer::disabled(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Event-driven cluster simulation with request duplication and hedging.
///
/// Unlike [`try_simulate_cluster`] — which walks arrivals in order with a
/// Lindley-style recursion and stays untouched as the zero-duplication
/// reference — this engine runs a proper event heap (arrivals, hedge
/// deadlines, departures) because a purge or hedge can change server state
/// *between* arrivals. Three independent RNG streams keep plans
/// comparable: the arrival stream draws exactly the legacy
/// service-then-interarrival sequence, the balancer stream is private to
/// placement, and duplicate-copy demands come from their own
/// [`derive_stream`]-derived stream, so every `(policy, plan)` pair sees
/// the identical marked point process and a plan issuing zero duplicates
/// is a bitwise no-op over the base policy.
///
/// Purge semantics (`plan.purge`): at a request's first completion every
/// sibling copy is purged — a queued copy is removed from its queue
/// (lazily: it is marked and skipped when it reaches the head), an
/// in-service copy is abandoned at that instant (its server moves on to
/// the next copy; only the service delivered *before* the purge counts
/// toward utilization). Scheduled departures of aborted services are
/// cancelled by a per-server epoch check.
///
/// Trace vocabulary: `Dispatch` for every copy placement,
/// [`TraceEvent::HedgeFire`] when a deadline launches a duplicate,
/// [`TraceEvent::Purge`] per purged sibling, plus the arrival/completion
/// events of the base simulator; counters land under `cluster/dup/*` and
/// `cluster/purge/*`.
///
/// # Errors
///
/// `Err(Unstable)` when the pilot load estimate saturates: `λ·E[S]·c/n ≥
/// 1`, where `c` is the eager copy count for no-purge eager plans (every
/// copy must complete) and `1` otherwise (purged duplicates add a bounded
/// extra load that vanishes as siblings win races; hedged/purged plans
/// whose *primary* load is stable always drain).
pub fn try_simulate_cluster_hedged(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    plan: &DuplicationPolicy,
    opts: &ClusterOptions,
    tracer: &Tracer,
) -> Result<HedgedClusterResult, Unstable> {
    assert!(lambda_per_us > 0.0, "arrival rate must be positive");
    assert!(opts.servers >= 1, "cluster needs at least one server");
    if let DupMode::Duplicate { copies } = plan.mode {
        assert!(copies >= 1, "Duplicate needs at least the primary copy");
    }
    tracer.set_ticks_per_us(CLUSTER_TICKS_PER_US);
    let n = opts.servers;

    let mut rng = rng_from_seed(opts.seed);
    let interarrival = Exponential::from_rate(lambda_per_us);

    // Same 512-draw pilot as the base simulator (identical arrival-stream
    // offset, so results are CRN-comparable across engines and plans),
    // batched exactly like the legacy engine's.
    let mut pilot_buf = Vec::new();
    draw_batch(&mut rng, 512, &mut pilot_buf, &mut *service);
    let pilot: f64 = pilot_buf.iter().sum::<f64>() / 512.0;
    let eager_copies = match plan.mode {
        DupMode::Duplicate { copies } if !plan.purge => copies as f64,
        _ => 1.0,
    };
    let rho_estimate = lambda_per_us * pilot * eager_copies / n as f64;
    if rho_estimate >= 1.0 {
        return Err(Unstable { rho_estimate });
    }

    // Expected copies per request, for buffer pre-sizing and wheel
    // geometry (a hedge adds at most one copy). Only constant factors
    // depend on this; pop order never does.
    let copies_hint = match plan.mode {
        DupMode::None => 1,
        DupMode::Duplicate { copies } => copies,
        DupMode::Hedge { .. } => 2,
    };
    match opts.event_queue {
        EventQueueKind::Heap => run_hedged(
            HeapEventQueue::new(),
            copies_hint,
            service,
            balancer,
            plan,
            opts,
            tracer,
            rng,
            interarrival,
        ),
        EventQueueKind::Wheel => {
            // Every copy contributes ~2 events (dispatch-side arrival or
            // hedge fire, plus a departure); size buckets for that rate.
            let event_rate = lambda_per_us * 2.0 * copies_hint as f64;
            run_hedged(
                WheelEventQueue::for_rate(event_rate),
                copies_hint,
                service,
                balancer,
                plan,
                opts,
                tracer,
                rng,
                interarrival,
            )
        }
    }
}

/// The engine proper, generic over the future-event set. Both
/// instantiations execute the identical push sequence, so by the
/// [`eventcore`](crate::eventcore) total-order contract they pop the
/// identical event sequence and produce bit-identical results — the
/// differential suite holds them to that.
#[allow(clippy::too_many_arguments)]
fn run_hedged<Q: EventQueue<EvKind>>(
    queue: Q,
    copies_hint: usize,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    plan: &DuplicationPolicy,
    opts: &ClusterOptions,
    tracer: &Tracer,
    mut rng: SimRng,
    interarrival: Exponential,
) -> Result<HedgedClusterResult, Unstable> {
    let n = opts.servers;
    let mut brng = rng_from_seed(derive_stream(opts.seed, BALANCER_STREAM));
    let mut drng = rng_from_seed(derive_stream(opts.seed, DUPLICATE_STREAM));
    let total = opts.warmup + opts.max_samples;
    let req_cap = total.min(1 << 20);
    let mut sim = HedgeSim {
        plan,
        opts,
        tracer,
        traced: tracer.is_enabled(),
        servers: ServerSoa::new(n),
        copies: Vec::with_capacity(req_cap.saturating_mul(copies_hint).min(1 << 21)),
        reqs: Vec::with_capacity(req_cap),
        queue,
        sojourns: QuantileEstimator::with_capacity(opts.max_samples.min(1 << 20)),
        sketch: LatencySketch::new(),
        ev_pushed: [0; 3],
        ev_popped: [0; 3],
        series_on: tracer.has_timeseries(),
        sojourn_sum: Summary::new(),
        wait_sum: Summary::new(),
        dup_wait: Summary::new(),
        per_server: vec![0u64; n],
        tally: DupTally::default(),
        delivered_us: 0.0,
        clock: 0.0,
        converged: false,
        arrivals: 0,
        pick_map: Vec::with_capacity(n),
        pick_queues: Vec::with_capacity(n),
        pick_backlog: Vec::with_capacity(n),
        demand_buf: Vec::new(),
    };
    sim.schedule(0.0, EvKind::Arrive);

    while let Some((key, kind)) = sim.queue.pop() {
        sim.ev_popped[usize::from(kind.rank())] += 1;
        match kind {
            EvKind::Arrive => {
                // A pending arrival is dropped (never admitted) once the
                // stopping rule fires; in-flight work still drains so
                // every admitted request completes.
                if sim.converged || sim.arrivals >= total {
                    continue;
                }
                sim.on_arrive(
                    key.t,
                    total,
                    service,
                    balancer,
                    &interarrival,
                    &mut rng,
                    &mut brng,
                    &mut drng,
                );
            }
            EvKind::HedgeFire { req } => {
                sim.on_hedge_fire(req, key.t, service, balancer, &mut brng, &mut drng);
            }
            EvKind::Depart { server, epoch } => {
                sim.on_depart(server, epoch, key.t);
            }
        }
        if sim.series_on {
            sim.sample_gauges(key.t);
        }
    }
    if sim.traced {
        sim.flush_profile();
    }

    let n_f = n as f64;
    let clock = sim.clock;
    let util = |busy: f64| {
        if clock > 0.0 {
            (busy / (n_f * clock)).min(1.0)
        } else {
            0.0
        }
    };
    let samples = sim.sojourns.count();
    let added_utilization = util(sim.tally.dup_delivered_us);
    Ok(HedgedClusterResult {
        cluster: ClusterResult {
            tail_us: sim.sojourns.quantile(opts.quantile).unwrap_or(0.0),
            tail_ci: sim.sojourns.quantile_ci(opts.quantile, opts.confidence),
            mean_sojourn_us: sim.sojourns.mean().unwrap_or(0.0),
            p50_us: sim.sojourns.quantile(0.5).unwrap_or(0.0),
            mean_wait_us: if sim.wait_sum.count() > 0 {
                sim.wait_sum.mean()
            } else {
                0.0
            },
            wait: sim.wait_sum,
            sojourn: sim.sojourn_sum,
            utilization: util(sim.delivered_us),
            per_server_requests: sim.per_server,
            samples,
            converged: sim.converged,
            sojourn_samples: sim.sojourns,
            sketch: sim.sketch,
            measured_us: clock,
        },
        tally: sim.tally,
        dup_wait: sim.dup_wait,
        added_utilization,
    })
}

struct HedgeSim<'a, Q> {
    plan: &'a DuplicationPolicy,
    opts: &'a ClusterOptions,
    tracer: &'a Tracer,
    traced: bool,
    servers: ServerSoa,
    copies: Vec<CopyCell>,
    reqs: Vec<ReqCell>,
    queue: Q,
    sojourns: QuantileEstimator,
    /// Streaming sojourn histogram, fed alongside `sojourns`.
    sketch: LatencySketch,
    /// Events pushed / popped per [`EvKind`] rank (Arrive, HedgeFire,
    /// Depart) — pure counts over the deterministic event sequence.
    ev_pushed: [u64; 3],
    ev_popped: [u64; 3],
    /// Cached `tracer.has_timeseries()`, so the per-event gauge pass is a
    /// single branch when sampling is off.
    series_on: bool,
    sojourn_sum: Summary,
    wait_sum: Summary,
    dup_wait: Summary,
    per_server: Vec<u64>,
    tally: DupTally,
    delivered_us: f64,
    clock: f64,
    converged: bool,
    arrivals: usize,
    /// Dispatch scratch (candidate server ids and their queue/backlog
    /// views), reused across every pick so the hot path never allocates.
    pick_map: Vec<usize>,
    pick_queues: Vec<u32>,
    pick_backlog: Vec<f64>,
    /// Batched duplicate-demand draws for eager arrival bursts.
    demand_buf: Vec<f64>,
}

impl<Q: EventQueue<EvKind>> HedgeSim<'_, Q> {
    fn schedule(&mut self, t: f64, kind: EvKind) {
        self.ev_pushed[usize::from(kind.rank())] += 1;
        self.queue.push(t, kind.rank(), kind);
    }

    /// How many duplicates launch *at the arrival instant*. A zero (or
    /// negative) hedge deadline is eager duplication: same instant, same
    /// code path, so `Hedge{0}` is event-for-event `Duplicate{2}`.
    fn eager_extras(&self) -> usize {
        match self.plan.mode {
            DupMode::None => 0,
            DupMode::Duplicate { copies } => copies - 1,
            DupMode::Hedge { deadline_us } => usize::from(deadline_us <= 0.0),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_arrive(
        &mut self,
        t: f64,
        total: usize,
        service: &mut dyn FnMut(&mut SimRng) -> f64,
        balancer: &mut dyn Balancer,
        interarrival: &Exponential,
        rng: &mut SimRng,
        brng: &mut SimRng,
        drng: &mut SimRng,
    ) {
        let k = self.arrivals;
        self.arrivals += 1;
        // Legacy draw order on the arrival stream: service first, then
        // the interarrival gap.
        let s = service(rng);
        let measured = k >= self.opts.warmup;
        let req = self.reqs.len();
        self.reqs.push(ReqCell {
            arrival: t,
            measured,
            completed: false,
            copies: Vec::new(),
        });
        if measured {
            self.tally.requests += 1;
            if self.traced {
                self.tracer
                    .emit(|| TraceEvent::RequestArrive { at: ns_ticks(t) });
                self.tracer.count("cluster/requests", 1);
            }
        }
        self.dispatch_copy(req, s, t, false, balancer, brng);
        let extras = self.eager_extras();
        if extras > 0 {
            // Duplicate demands batch into the reused buffer. The dup
            // stream is independent of the balancer stream, so drawing
            // every demand before the first dispatch consumes each
            // stream's exact per-stream sequence from the old
            // draw-then-dispatch interleave — bitwise the same results.
            let mut demands = std::mem::take(&mut self.demand_buf);
            draw_batch(drng, extras, &mut demands, &mut *service);
            for &d in &demands {
                self.dispatch_copy(req, d, t, true, balancer, brng);
            }
            self.demand_buf = demands;
        }
        if let DupMode::Hedge { deadline_us } = self.plan.mode {
            if deadline_us > 0.0 && deadline_us.is_finite() {
                self.schedule(t + deadline_us, EvKind::HedgeFire { req });
            }
        }
        let a = interarrival.sample(rng);
        if measured {
            self.clock += a;
        }
        if self.arrivals < total && !self.converged {
            self.schedule(t + a, EvKind::Arrive);
        }
    }

    fn on_hedge_fire(
        &mut self,
        req: usize,
        t: f64,
        service: &mut dyn FnMut(&mut SimRng) -> f64,
        balancer: &mut dyn Balancer,
        brng: &mut SimRng,
        drng: &mut SimRng,
    ) {
        let measured = self.reqs[req].measured;
        if self.reqs[req].completed {
            if measured {
                self.tally.hedges_cancelled += 1;
                if self.traced {
                    self.tracer.count("cluster/dup/hedge_cancelled", 1);
                }
            }
            return;
        }
        let d = service(drng);
        let server = self.dispatch_copy(req, d, t, true, balancer, brng);
        if measured {
            self.tally.hedges_fired += 1;
            if self.traced {
                self.tracer.emit(|| TraceEvent::HedgeFire {
                    at: ns_ticks(t),
                    server: server as u32,
                });
                self.tracer.count("cluster/dup/hedge_fired", 1);
            }
        }
    }

    /// Places one copy: masked pick (servers already holding a copy of
    /// this request are hidden from the balancer, unless that would leave
    /// it nothing to choose from), enqueue at the plan's priority, and a
    /// service start if the server is idle. Returns the chosen server.
    fn dispatch_copy(
        &mut self,
        req: usize,
        demand: f64,
        t: f64,
        is_dup: bool,
        balancer: &mut dyn Balancer,
        brng: &mut SimRng,
    ) -> usize {
        let n = self.servers.serving.len();
        // Masked candidate list and its queue/backlog views, rebuilt in
        // the reused scratch buffers (no per-dispatch allocation). A
        // request's existing copies are few, so the containment scan is
        // cheaper than materializing a taken-set.
        let held = &self.reqs[req].copies;
        let copies = &self.copies;
        self.pick_map.clear();
        self.pick_map
            .extend((0..n).filter(|&i| !held.iter().any(|&c| copies[c].server == i)));
        if self.pick_map.is_empty() {
            self.pick_map.extend(0..n);
        }
        self.pick_queues.clear();
        self.pick_backlog.clear();
        for &i in &self.pick_map {
            self.pick_queues.push(self.servers.in_system[i]);
            let residual = if self.servers.serving[i].is_some() {
                (self.servers.serve_end[i] - t).max(0.0)
            } else {
                0.0
            };
            self.pick_backlog
                .push(self.servers.queued_work[i] + residual);
        }
        let local = balancer.pick(&self.pick_queues, &self.pick_backlog, brng);
        debug_assert!(
            local < self.pick_map.len(),
            "balancer picked out-of-range {local}"
        );
        let server = self.pick_map[local];

        let copy = self.copies.len();
        self.copies.push(CopyCell {
            req,
            demand,
            server,
            issued_at: t,
            is_dup,
            state: CopyState::Queued,
        });
        self.reqs[req].copies.push(copy);
        let measured = self.reqs[req].measured;
        if measured {
            self.per_server[server] += 1;
            self.tally.copies_issued += 1;
            if is_dup {
                self.tally.dup_copies += 1;
                if self.traced {
                    self.tracer.count("cluster/dup/issued", 1);
                }
            }
            if self.traced {
                let queue_len = self.servers.in_system[server];
                self.tracer.emit(|| TraceEvent::Dispatch {
                    at: ns_ticks(t),
                    server: server as u32,
                    queue_len,
                });
                self.tracer
                    .count(&format!("cluster/server/{server}/requests"), 1);
            }
        }
        self.servers.in_system[server] += 1;
        self.servers.queued_work[server] += demand;
        if is_dup && self.plan.low_priority {
            self.servers.dup_q[server].push_back(copy);
        } else {
            self.servers.prim_q[server].push_back(copy);
        }
        self.maybe_start(server, t);
        server
    }

    /// Starts the next live copy on an idle server: queued primaries
    /// first, then queued duplicates (non-preemptive priority); purged
    /// copies are skipped as they reach the head.
    fn maybe_start(&mut self, server: usize, t: f64) {
        if self.servers.serving[server].is_some() {
            return;
        }
        let next = loop {
            let prim = self.servers.prim_q[server].pop_front();
            let Some(c) = prim.or_else(|| self.servers.dup_q[server].pop_front()) else {
                break None;
            };
            if self.copies[c].state == CopyState::Queued {
                break Some(c);
            }
        };
        let Some(c) = next else { return };
        self.copies[c].state = CopyState::InService;
        let demand = self.copies[c].demand;
        self.servers.serving[server] = Some(c);
        self.servers.serve_start[server] = t;
        self.servers.serve_end[server] = t + demand;
        self.servers.queued_work[server] -= demand;
        self.servers.epoch[server] += 1;
        let epoch = self.servers.epoch[server];
        let end = self.servers.serve_end[server];
        if self.reqs[self.copies[c].req].measured {
            let w = t - self.copies[c].issued_at;
            if self.copies[c].is_dup {
                self.dup_wait.record(w);
                if self.traced {
                    self.tracer.observe("cluster/dup/wait_us", w);
                }
            } else {
                self.wait_sum.record(w);
                if self.traced {
                    self.tracer.observe("cluster/wait_us", w);
                }
            }
        }
        self.schedule(end, EvKind::Depart { server, epoch });
    }

    fn on_depart(&mut self, server: usize, epoch: u64, t: f64) {
        if self.servers.epoch[server] != epoch {
            return; // stale: this service was aborted by a purge
        }
        let c = self.servers.serving[server]
            .take()
            .expect("live Depart on an idle server");
        self.copies[c].state = CopyState::Done;
        self.servers.in_system[server] -= 1;
        let req = self.copies[c].req;
        let measured = self.reqs[req].measured;
        if measured {
            self.delivered_us += self.copies[c].demand;
            self.tally.completions += 1;
            if self.copies[c].is_dup {
                self.tally.dup_delivered_us += self.copies[c].demand;
            }
        }
        if self.reqs[req].completed {
            if measured {
                self.tally.wasted_completions += 1;
                if self.traced {
                    self.tracer.count("cluster/dup/wasted", 1);
                }
            }
        } else {
            self.reqs[req].completed = true;
            let sojourn = t - self.reqs[req].arrival;
            if measured {
                self.sojourns.record(sojourn);
                self.sketch.record(sojourn);
                self.sojourn_sum.record(sojourn);
                if self.traced {
                    let at = ns_ticks(t);
                    let arrived = ns_ticks(self.reqs[req].arrival);
                    self.tracer.emit(|| TraceEvent::RequestComplete {
                        at,
                        latency: at.saturating_sub(arrived),
                    });
                    self.tracer.observe("cluster/sojourn_us", sojourn);
                }
                if self.sojourns.count().is_multiple_of(self.opts.check_every) {
                    if let Some(ci) = self
                        .sojourns
                        .quantile_ci(self.opts.quantile, self.opts.confidence)
                    {
                        if ci.converged(self.opts.max_relative_error) {
                            self.converged = true;
                        }
                    }
                }
            }
            if self.plan.purge {
                let siblings = self.reqs[req].copies.clone();
                for sib in siblings {
                    if sib != c {
                        self.purge_copy(sib, t, measured);
                    }
                }
            }
        }
        self.maybe_start(server, t);
    }

    /// Purges one sibling copy at the winning completion's instant `t`.
    fn purge_copy(&mut self, c: usize, t: f64, measured: bool) {
        let server = self.copies[c].server;
        match self.copies[c].state {
            CopyState::Queued => {
                self.copies[c].state = CopyState::Purged;
                self.servers.in_system[server] -= 1;
                self.servers.queued_work[server] -= self.copies[c].demand;
                if measured {
                    self.tally.purged_queued += 1;
                    if self.traced {
                        self.tracer.emit(|| TraceEvent::Purge {
                            at: ns_ticks(t),
                            server: server as u32,
                            in_service: false,
                        });
                        self.tracer.count("cluster/purge/queued", 1);
                    }
                }
            }
            CopyState::InService => {
                self.copies[c].state = CopyState::Purged;
                debug_assert_eq!(
                    self.servers.serving[server],
                    Some(c),
                    "in-service copy not serving"
                );
                let part = (t - self.servers.serve_start[server]).max(0.0);
                self.servers.serving[server] = None;
                self.servers.epoch[server] += 1; // the scheduled Depart is now stale
                self.servers.in_system[server] -= 1;
                if measured {
                    self.delivered_us += part;
                    if self.copies[c].is_dup {
                        self.tally.dup_delivered_us += part;
                    }
                    self.tally.purged_in_service += 1;
                    if self.traced {
                        self.tracer.emit(|| TraceEvent::Purge {
                            at: ns_ticks(t),
                            server: server as u32,
                            in_service: true,
                        });
                        self.tracer.count("cluster/purge/in_service", 1);
                    }
                }
                self.maybe_start(server, t);
            }
            CopyState::Done | CopyState::Purged => {}
        }
    }

    /// Samples the event-clock gauge series at simulated time `t` (µs):
    /// busy servers, copies in flight, pending hedge deadlines, cumulative
    /// purges, delivered utilization, and per-server depth. Runs once per
    /// popped event, and only when the tracer opted into time series, so
    /// the default path pays a single cached-bool branch.
    fn sample_gauges(&self, t: f64) {
        let n = self.servers.serving.len();
        let busy = self.servers.serving.iter().filter(|s| s.is_some()).count();
        let in_flight: u32 = self.servers.in_system.iter().sum();
        let hedges = self.ev_pushed[1] - self.ev_popped[1];
        let purges = self.tally.purged_queued + self.tally.purged_in_service;
        let util = if self.clock > 0.0 {
            (self.delivered_us / (n as f64 * self.clock)).min(1.0)
        } else {
            0.0
        };
        let depths = &self.servers.in_system;
        self.tracer.sample(|ts| {
            ts.observe("cluster/busy_servers", t, busy as f64);
            ts.observe("cluster/in_flight", t, f64::from(in_flight));
            ts.observe("cluster/hedges_in_flight", t, hedges as f64);
            ts.observe("cluster/purges", t, purges as f64);
            ts.observe("cluster/utilization", t, util);
            for (i, &d) in depths.iter().enumerate() {
                ts.observe(&format!("cluster/server/{i}/depth"), t, f64::from(d));
            }
        });
    }

    /// Flushes the DES self-profile into the registry at end of run:
    /// per-[`EvKind`] push/pop counters plus the event queue's own
    /// bookkeeping ([`EventQueue::profile`]). Pure counts over the
    /// deterministic event sequence — identical at any worker count and
    /// for both queue implementations (wheel-specific fields aside).
    fn flush_profile(&self) {
        const KIND_NAMES: [&str; 3] = ["arrive", "hedge_fire", "depart"];
        for (i, name) in KIND_NAMES.iter().enumerate() {
            self.tracer
                .count(&format!("cluster/events/{name}/pushed"), self.ev_pushed[i]);
            self.tracer
                .count(&format!("cluster/events/{name}/popped"), self.ev_popped[i]);
        }
        let p = self.queue.profile();
        for (name, v) in [
            ("pushes", p.pushes),
            ("pops", p.pops),
            ("max_len", p.max_len),
            ("overflow_pushes", p.overflow_pushes),
            ("overflow_migrations", p.overflow_migrations),
            ("frontier_advances", p.frontier_advances),
            ("frontier_jumps", p.frontier_jumps),
            ("slots_skipped", p.slots_skipped),
            ("max_bucket_len", p.max_bucket_len),
        ] {
            self.tracer.count(&format!("cluster/eventq/{name}"), v);
        }
        // Non-finite sojourns rejected by the sketch (should be zero; a
        // nonzero value explains any sketch-vs-exact count drift).
        self.tracer.count(
            "cluster/sketch/dropped_nonfinite",
            self.sketch.dropped_nonfinite(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_mg1;

    fn fast_opts(servers: usize, seed: u64) -> ClusterOptions {
        ClusterOptions {
            servers,
            max_samples: 200_000,
            warmup: 2_000,
            seed,
            ..ClusterOptions::default()
        }
    }

    fn exp_service(mean: f64) -> impl FnMut(&mut SimRng) -> f64 {
        move |rng: &mut SimRng| Exponential::new(mean).sample(rng)
    }

    #[test]
    fn single_server_cluster_matches_mg1() {
        // With n = 1 every policy picks server 0 and the RNG draw sequence
        // is identical to the M/G/1 DES; waits differ only by FP rounding
        // (absolute completion times here vs the Lindley recursion there).
        let copts = fast_opts(1, 7);
        let mut svc = exp_service(2.0);
        let cluster = simulate_cluster(0.3, &mut svc, &mut JsqBalancer, &copts);
        let qopts = Mg1Options {
            max_samples: copts.max_samples,
            warmup: copts.warmup,
            seed: copts.seed,
            ..Mg1Options::default()
        };
        let mut svc2 = exp_service(2.0);
        let single = simulate_mg1(0.3, &mut svc2, &qopts);
        assert_eq!(cluster.samples, single.samples);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(
            close(cluster.tail_us, single.tail_us),
            "{} vs {}",
            cluster.tail_us,
            single.tail_us
        );
        assert!(close(cluster.mean_sojourn_us, single.mean_sojourn_us));
        assert!(close(cluster.sojourn.mean(), single.sojourn.mean()));
    }

    #[test]
    fn same_seed_is_bit_identical() {
        for policy in [
            BalancerPolicy::Random,
            BalancerPolicy::RoundRobin,
            BalancerPolicy::Jsq,
            BalancerPolicy::PowerOfD(2),
            BalancerPolicy::LeastWork,
        ] {
            let run = |_| {
                let mut svc = exp_service(1.0);
                simulate_cluster(2.0, &mut svc, &mut *policy.build(), &fast_opts(4, 11))
            };
            let (a, b) = (run(0), run(1));
            assert_eq!(a.tail_us, b.tail_us, "{policy}");
            assert_eq!(a.sojourn, b.sojourn, "{policy}");
            assert_eq!(a.per_server_requests, b.per_server_requests, "{policy}");
        }
    }

    #[test]
    fn jsq_beats_random_p99_at_equal_load() {
        // rho = 0.7 on 4 servers; CRN means both policies see the same
        // arrivals and service demands, so the comparison is paired.
        let lambda = 2.8;
        let mut svc = exp_service(1.0);
        let random = simulate_cluster(lambda, &mut svc, &mut RandomBalancer, &fast_opts(4, 21));
        let mut svc = exp_service(1.0);
        let jsq = simulate_cluster(lambda, &mut svc, &mut JsqBalancer, &fast_opts(4, 21));
        assert!(
            jsq.tail_us <= random.tail_us,
            "jsq p99 {} must not exceed random p99 {}",
            jsq.tail_us,
            random.tail_us
        );
    }

    #[test]
    fn power_of_two_sits_between_random_and_jsq_on_mean() {
        let lambda = 3.2; // rho = 0.8 on 4 servers
        let run = |policy: BalancerPolicy| {
            let mut svc = exp_service(1.0);
            simulate_cluster(lambda, &mut svc, &mut *policy.build(), &fast_opts(4, 33))
        };
        let random = run(BalancerPolicy::Random);
        let pod2 = run(BalancerPolicy::PowerOfD(2));
        let jsq = run(BalancerPolicy::Jsq);
        assert!(
            pod2.mean_sojourn_us <= random.mean_sojourn_us,
            "pod2 {} vs random {}",
            pod2.mean_sojourn_us,
            random.mean_sojourn_us
        );
        assert!(
            jsq.mean_sojourn_us <= pod2.mean_sojourn_us * 1.05,
            "jsq {} vs pod2 {}",
            jsq.mean_sojourn_us,
            pod2.mean_sojourn_us
        );
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let mut svc = exp_service(1.0);
        let r = simulate_cluster(
            2.0,
            &mut svc,
            &mut RoundRobinBalancer::default(),
            &fast_opts(4, 44),
        );
        let min = *r.per_server_requests.iter().min().unwrap();
        let max = *r.per_server_requests.iter().max().unwrap();
        assert!(max - min <= 1, "round robin spread {min}..{max}");
    }

    #[test]
    fn utilization_tracks_offered_load_per_server() {
        let mut svc = exp_service(1.0);
        let r = simulate_cluster(2.8, &mut svc, &mut JsqBalancer, &fast_opts(4, 55));
        assert!(
            (r.utilization - 0.7).abs() < 0.03,
            "utilization {} vs rho 0.7",
            r.utilization
        );
    }

    #[test]
    fn saturated_cluster_is_a_typed_error_not_a_panic() {
        let mut svc = exp_service(1.0);
        let err = try_simulate_cluster(
            4.8, // rho = 1.2 on 4 servers
            &mut svc,
            &mut JsqBalancer,
            &fast_opts(4, 66),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(err.rho_estimate >= 1.0, "rho {}", err.rho_estimate);
    }

    fn hedged(
        lambda: f64,
        plan: DuplicationPolicy,
        policy: BalancerPolicy,
        opts: &ClusterOptions,
    ) -> HedgedClusterResult {
        let mut svc = exp_service(1.0);
        simulate_cluster_hedged(lambda, &mut svc, &mut *policy.build(), &plan, opts)
    }

    #[test]
    fn hedged_engine_conserves_requests_and_copies() {
        let opts = ClusterOptions {
            max_samples: 20_000,
            warmup: 1_000,
            max_relative_error: 0.001, // run the full window
            ..fast_opts(4, 91)
        };
        for plan in [
            DuplicationPolicy::none(),
            DuplicationPolicy::duplicate(2),
            DuplicationPolicy::duplicate(2).without_purge(),
            DuplicationPolicy::duplicate(2).at_low_priority(),
            DuplicationPolicy::hedge(2.0),
            DuplicationPolicy::hedge(2.0).at_low_priority(),
        ] {
            // rho_eff stays below 1 even for the eager no-purge plan
            // (1.6 * 2 / 4 = 0.8).
            let r = hedged(1.6, plan, BalancerPolicy::Jsq, &opts);
            let t = &r.tally;
            // Every admitted request completes exactly once.
            assert_eq!(r.cluster.samples as u64, t.requests, "{plan}");
            // Every issued copy either completes or is purged.
            assert_eq!(
                t.completions + t.purged_queued + t.purged_in_service,
                t.copies_issued,
                "{plan}"
            );
            assert!(t.completions <= t.copies_issued, "{plan}");
            if plan.purge {
                // A purged race has no redundant completions to waste.
                assert_eq!(t.wasted_completions, 0, "{plan}");
            }
            assert!(r.cluster.utilization <= 1.0, "{plan}");
            assert!(r.added_utilization <= r.cluster.utilization, "{plan}");
        }
    }

    #[test]
    fn eager_duplication_with_purge_cuts_p99_at_moderate_load() {
        let opts = ClusterOptions {
            max_samples: 60_000,
            warmup: 2_000,
            ..fast_opts(4, 101)
        };
        let none = hedged(2.0, DuplicationPolicy::none(), BalancerPolicy::Jsq, &opts);
        let dup2 = hedged(
            2.0,
            DuplicationPolicy::duplicate(2),
            BalancerPolicy::Jsq,
            &opts,
        );
        assert!(
            dup2.cluster.tail_us <= none.cluster.tail_us,
            "dup2 p99 {} vs none {}",
            dup2.cluster.tail_us,
            none.cluster.tail_us
        );
        assert!(dup2.tally.dup_copies > 0);
    }

    #[test]
    fn purge_delivers_strictly_less_duplicate_work_than_eager_no_purge() {
        let opts = ClusterOptions {
            max_samples: 30_000,
            warmup: 1_000,
            ..fast_opts(4, 111)
        };
        let purged = hedged(
            1.6,
            DuplicationPolicy::duplicate(2),
            BalancerPolicy::Jsq,
            &opts,
        );
        let eager = hedged(
            1.6,
            DuplicationPolicy::duplicate(2).without_purge(),
            BalancerPolicy::Jsq,
            &opts,
        );
        assert!(
            purged.added_utilization < eager.added_utilization,
            "purged {} vs eager {}",
            purged.added_utilization,
            eager.added_utilization
        );
    }

    #[test]
    fn low_priority_duplicates_never_delay_primaries_more_than_fcfs_duplicates() {
        // D-Stage's whole point: queued duplicates yield to primaries, so
        // the primary-class mean wait under low-priority duplication must
        // not exceed the same plan with FCFS (shared-queue) duplicates.
        let opts = ClusterOptions {
            max_samples: 40_000,
            warmup: 2_000,
            ..fast_opts(2, 121)
        };
        let plan = DuplicationPolicy::duplicate(2).without_purge();
        let fcfs = hedged(0.8, plan, BalancerPolicy::Jsq, &opts);
        let lp = hedged(0.8, plan.at_low_priority(), BalancerPolicy::Jsq, &opts);
        assert!(
            lp.cluster.mean_wait_us <= fcfs.cluster.mean_wait_us,
            "low-priority primary wait {} vs FCFS {}",
            lp.cluster.mean_wait_us,
            fcfs.cluster.mean_wait_us
        );
    }

    #[test]
    fn saturated_eager_no_purge_plan_is_a_typed_error() {
        // rho_eff = lambda * copies * E[S] / n = 2.4 * 2 / 4 = 1.2.
        let mut svc = exp_service(1.0);
        let err = try_simulate_cluster_hedged(
            2.4,
            &mut svc,
            &mut JsqBalancer,
            &DuplicationPolicy::duplicate(2).without_purge(),
            &fast_opts(4, 131),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(err.rho_estimate >= 1.0, "rho {}", err.rho_estimate);
    }

    #[test]
    fn hedged_tracing_emits_purges_and_does_not_perturb() {
        let opts = ClusterOptions {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(4, 141)
        };
        let plan = DuplicationPolicy::hedge(0.5);
        let plain = hedged(2.0, plan, BalancerPolicy::Jsq, &opts);
        let tracer = Tracer::enabled(1 << 20, CLUSTER_TICKS_PER_US);
        let mut svc = exp_service(1.0);
        let traced =
            try_simulate_cluster_hedged(2.0, &mut svc, &mut JsqBalancer, &plan, &opts, &tracer)
                .unwrap();
        assert_eq!(plain.cluster.tail_us, traced.cluster.tail_us);
        assert_eq!(plain.tally, traced.tally);
        let log = tracer.take();
        assert_eq!(
            log.registry.counter("cluster/dup/hedge_fired"),
            traced.tally.hedges_fired
        );
        assert_eq!(
            log.registry.counter("cluster/purge/queued")
                + log.registry.counter("cluster/purge/in_service"),
            traced.tally.purged_queued + traced.tally.purged_in_service
        );
        let purges = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Purge { .. }))
            .count() as u64;
        assert_eq!(
            purges,
            traced.tally.purged_queued + traced.tally.purged_in_service
        );
        assert!(traced.tally.hedges_fired > 0, "hedges must fire at 0.5us");
    }

    #[test]
    fn sketch_shadows_the_exact_estimator() {
        let opts = ClusterOptions {
            max_samples: 20_000,
            warmup: 1_000,
            ..fast_opts(4, 161)
        };
        for engine in [true, false] {
            let mut r = if engine {
                hedged(
                    2.0,
                    DuplicationPolicy::hedge(1.0),
                    BalancerPolicy::Jsq,
                    &opts,
                )
                .cluster
            } else {
                let mut svc = exp_service(1.0);
                simulate_cluster(2.0, &mut svc, &mut JsqBalancer, &opts)
            };
            assert_eq!(r.sketch.count(), r.samples as u64);
            let alpha = r.sketch.relative_accuracy();
            for q in [0.5, 0.95, 0.99] {
                let exact = r.sojourn_samples.quantile(q).unwrap();
                let approx = r.sketch.quantile(q).unwrap();
                assert!(
                    (approx - exact).abs() <= alpha * exact,
                    "q{q}: sketch {approx} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn merged_sketch_equals_sketch_of_pooled_replications() {
        let opts = ClusterOptions {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(4, 171)
        };
        let parts: Vec<ClusterResult> = (0..3)
            .map(|rep| {
                let mut svc = exp_service(1.0);
                let o = ClusterOptions {
                    seed: opts.seed + rep,
                    ..opts
                };
                simulate_cluster(2.0, &mut svc, &mut JsqBalancer, &o)
            })
            .collect();
        let total: u64 = parts.iter().map(|p| p.sketch.count()).sum();
        let merged = merge_replications(parts, 0.99, 0.95);
        assert_eq!(merged.sketch.count(), total);
        assert_eq!(merged.sketch.count(), merged.samples as u64);
    }

    #[test]
    fn traced_run_flushes_the_event_core_profile() {
        let opts = ClusterOptions {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(4, 181)
        };
        let tracer = Tracer::enabled(1 << 20, CLUSTER_TICKS_PER_US).with_timeseries(1_000.0);
        let mut svc = exp_service(1.0);
        let r = try_simulate_cluster_hedged(
            2.0,
            &mut svc,
            &mut JsqBalancer,
            &DuplicationPolicy::hedge(1.0),
            &opts,
            &tracer,
        )
        .unwrap();
        let log = tracer.take();
        let reg = &log.registry;
        // Push/pop balance: the queue drained, so every push was popped.
        let pushed: u64 = ["arrive", "hedge_fire", "depart"]
            .iter()
            .map(|k| reg.counter(&format!("cluster/events/{k}/pushed")))
            .sum();
        assert_eq!(pushed, reg.counter("cluster/eventq/pushes"));
        assert_eq!(
            reg.counter("cluster/eventq/pushes"),
            reg.counter("cluster/eventq/pops")
        );
        assert!(reg.counter("cluster/events/hedge_fire/pushed") > 0);
        assert!(reg.counter("cluster/eventq/max_len") > 0);
        // The gauge series sampled on the event clock.
        let ts = log.timeseries.expect("timeseries opted in");
        assert!(ts.get("cluster/busy_servers").is_some());
        assert!(ts.get("cluster/in_flight").is_some());
        // And none of it perturbed the simulation.
        let plain = hedged(
            2.0,
            DuplicationPolicy::hedge(1.0),
            BalancerPolicy::Jsq,
            &opts,
        );
        assert_eq!(plain.cluster.tail_us.to_bits(), r.cluster.tail_us.to_bits());
        assert_eq!(plain.cluster.sketch, r.cluster.sketch);
    }

    #[test]
    fn duplication_plan_labels_are_stable() {
        assert_eq!(DuplicationPolicy::none().label(), "none");
        assert_eq!(DuplicationPolicy::duplicate(2).label(), "dup2");
        assert_eq!(
            DuplicationPolicy::duplicate(3).without_purge().label(),
            "dup3_np"
        );
        assert_eq!(
            DuplicationPolicy::duplicate(2).at_low_priority().label(),
            "dup2_lp"
        );
        assert_eq!(DuplicationPolicy::hedge(20.0).label(), "hedge20");
        assert_eq!(
            DuplicationPolicy::hedge(2.5).at_low_priority().label(),
            "hedge2.5_lp"
        );
    }

    #[test]
    fn power_of_n_matches_jsq_on_every_sample_path() {
        let opts = ClusterOptions {
            max_samples: 20_000,
            warmup: 1_000,
            ..fast_opts(4, 151)
        };
        let jsq = hedged(2.4, DuplicationPolicy::none(), BalancerPolicy::Jsq, &opts);
        let pod = hedged(
            2.4,
            DuplicationPolicy::none(),
            BalancerPolicy::PowerOfD(4),
            &opts,
        );
        assert_eq!(jsq.cluster.tail_us.to_bits(), pod.cluster.tail_us.to_bits());
        assert_eq!(jsq.cluster.sojourn, pod.cluster.sojourn);
        assert_eq!(
            jsq.cluster.per_server_requests,
            pod.cluster.per_server_requests
        );
    }

    #[test]
    fn tracing_does_not_perturb_results_and_emits_dispatches() {
        let opts = ClusterOptions {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(4, 77)
        };
        let mut svc = exp_service(1.0);
        let plain = simulate_cluster(2.0, &mut svc, &mut JsqBalancer, &opts);
        let tracer = Tracer::enabled(1 << 20, CLUSTER_TICKS_PER_US);
        let mut svc = exp_service(1.0);
        let traced = try_simulate_cluster(2.0, &mut svc, &mut JsqBalancer, &opts, &tracer).unwrap();
        assert_eq!(plain.tail_us, traced.tail_us);
        assert_eq!(plain.sojourn, traced.sojourn);
        assert_eq!(plain.per_server_requests, traced.per_server_requests);
        let log = tracer.take();
        let dispatches = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
            .count();
        assert_eq!(dispatches, traced.samples);
        assert_eq!(
            log.registry.counter("cluster/requests"),
            traced.samples as u64
        );
    }
}
