//! Load-balanced n-server farm: many dyads behind one balancer.
//!
//! The paper's server-level results come from BigHouse-style simulation of
//! a *cluster* of servers fed by a load balancer, not a lone M/G/1 queue.
//! This module scales [`des`](crate::des) to that setting: `n` FCFS servers
//! whose service times are drawn from a caller-supplied closure (calibrated
//! per-design by the cycle-level dyad sims upstream), with arrivals routed
//! by a pluggable [`Balancer`]. RackSched-style results say the policy
//! choice — Random vs JSQ vs power-of-d — dominates the tail at
//! microsecond scale, so the policy is a first-class grid axis.
//!
//! Determinism contract: the arrival/service draws and the balancer's own
//! randomness come from two *independent* derived streams
//! ([`derive_stream`]). Every policy therefore sees the identical marked
//! point process (arrival time, service demand) and differs only in
//! assignments — common random numbers across the policy axis — and results
//! are a pure function of `(inputs, seed)`, bit-identical at any worker
//! count. With `n = 1` every policy degenerates to the same single queue
//! and consumes the exact RNG draw sequence of
//! [`simulate_mg1`](crate::des::simulate_mg1); waits agree up to
//! floating-point rounding (absolute-time bookkeeping here vs the
//! incremental Lindley recursion there).

use crate::des::{Mg1Options, Unstable};
use duplexity_obs::{TraceEvent, Tracer};
use duplexity_stats::ci::ConfidenceInterval;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use duplexity_stats::summary::Summary;
use rand::RngExt;
use std::collections::VecDeque;

/// Cluster traces share the DES clock domain: 1000 ticks per simulated µs.
const CLUSTER_TICKS_PER_US: f64 = 1000.0;

/// Stream label for the balancer's private RNG (vs the arrival stream).
const BALANCER_STREAM: u64 = 0xBA1A;

fn ns_ticks(us: f64) -> u64 {
    (us * CLUSTER_TICKS_PER_US).round().max(0.0) as u64
}

/// A load-balancing policy: given the per-server queue lengths and
/// unfinished-work backlogs at an arrival instant (both measured *before*
/// the new request is placed), pick a server index.
///
/// Implementations may consume `rng` (Random, power-of-d) or not (JSQ,
/// RoundRobin, LeastWork); either way the stream is private to the
/// balancer, so policies are interchangeable without perturbing the
/// arrival/service sample path.
pub trait Balancer {
    /// Short policy name for reports and trace labels.
    fn name(&self) -> &'static str;
    /// Chooses a server in `0..queues.len()`.
    fn pick(&mut self, queues: &[u32], backlog_us: &[f64], rng: &mut SimRng) -> usize;
}

/// Uniform-random assignment: the memoryless baseline every other policy
/// must beat.
#[derive(Debug, Default)]
pub struct RandomBalancer;

impl Balancer for RandomBalancer {
    fn name(&self) -> &'static str {
        "random"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], rng: &mut SimRng) -> usize {
        rng.random_range(0..queues.len())
    }
}

/// Strict rotation: request k goes to server k mod n.
#[derive(Debug, Default)]
pub struct RoundRobinBalancer {
    next: usize,
}

impl Balancer for RoundRobinBalancer {
    fn name(&self) -> &'static str {
        "round_robin"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], _rng: &mut SimRng) -> usize {
        let i = self.next % queues.len();
        self.next = (self.next + 1) % queues.len();
        i
    }
}

/// Join-the-shortest-queue: argmin of instantaneous queue *length*
/// (waiting + in service), ties to the lowest index.
#[derive(Debug, Default)]
pub struct JsqBalancer;

impl Balancer for JsqBalancer {
    fn name(&self) -> &'static str {
        "jsq"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], _rng: &mut SimRng) -> usize {
        argmin_u32(queues)
    }
}

/// Power-of-d choices: probe `d` uniformly random servers (with
/// replacement), join the shortest of the probes. `d = 2` is the classic
/// "power of two choices"; `d = n` converges to JSQ in expectation but
/// still pays `d` probes of randomness.
#[derive(Debug)]
pub struct PowerOfDBalancer {
    d: usize,
}

impl PowerOfDBalancer {
    /// A power-of-`d` balancer. `d` is clamped to at least 1.
    pub fn new(d: usize) -> Self {
        Self { d: d.max(1) }
    }
}

impl Balancer for PowerOfDBalancer {
    fn name(&self) -> &'static str {
        "power_of_d"
    }
    fn pick(&mut self, queues: &[u32], _backlog_us: &[f64], rng: &mut SimRng) -> usize {
        let mut best = rng.random_range(0..queues.len());
        for _ in 1..self.d {
            let probe = rng.random_range(0..queues.len());
            if queues[probe] < queues[best] {
                best = probe;
            }
        }
        best
    }
}

/// Least-unfinished-work: argmin of the per-server backlog in µs, ties to
/// the lowest index. With FCFS servers this is *exactly* equivalent to a
/// single central FCFS queue feeding `n` servers (every request starts as
/// early as possible), which is what makes the M/M/k Erlang-C cross-check
/// exact — JSQ by queue length is not, because a short queue can hide a
/// long residual service.
#[derive(Debug, Default)]
pub struct LeastWorkBalancer;

impl Balancer for LeastWorkBalancer {
    fn name(&self) -> &'static str {
        "least_work"
    }
    fn pick(&mut self, _queues: &[u32], backlog_us: &[f64], _rng: &mut SimRng) -> usize {
        let mut best = 0;
        for (i, &b) in backlog_us.iter().enumerate().skip(1) {
            if b < backlog_us[best] {
                best = i;
            }
        }
        best
    }
}

fn argmin_u32(xs: &[u32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// Value-level balancer selector, so experiment grids can enumerate
/// policies in config structs and serialize them by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Uniform-random assignment.
    Random,
    /// Strict rotation.
    RoundRobin,
    /// Join the shortest queue.
    Jsq,
    /// Probe `d` random servers, join the shortest probe.
    PowerOfD(usize),
    /// Join the server with the least unfinished work (central-queue
    /// equivalent).
    LeastWork,
}

impl BalancerPolicy {
    /// Instantiates the policy's balancer state.
    pub fn build(&self) -> Box<dyn Balancer> {
        match self {
            BalancerPolicy::Random => Box::new(RandomBalancer),
            BalancerPolicy::RoundRobin => Box::new(RoundRobinBalancer::default()),
            BalancerPolicy::Jsq => Box::new(JsqBalancer),
            BalancerPolicy::PowerOfD(d) => Box::new(PowerOfDBalancer::new(*d)),
            BalancerPolicy::LeastWork => Box::new(LeastWorkBalancer),
        }
    }

    /// Stable snake_case name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BalancerPolicy::Random => "random",
            BalancerPolicy::RoundRobin => "round_robin",
            BalancerPolicy::Jsq => "jsq",
            BalancerPolicy::PowerOfD(_) => "power_of_d",
            BalancerPolicy::LeastWork => "least_work",
        }
    }
}

impl std::fmt::Display for BalancerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalancerPolicy::PowerOfD(d) => write!(f, "power_of_{d}"),
            other => f.write_str(other.name()),
        }
    }
}

/// Cluster simulation control parameters. Mirrors [`Mg1Options`] (same
/// BigHouse stopping rule) plus the server count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterOptions {
    /// Number of servers behind the balancer (≥ 1).
    pub servers: usize,
    /// Target quantile of sojourn time (the paper reports p99).
    pub quantile: f64,
    /// Confidence level for the stopping rule.
    pub confidence: f64,
    /// Maximum relative CI half-width before stopping.
    pub max_relative_error: f64,
    /// Requests discarded as warm-up before measuring.
    pub warmup: usize,
    /// Hard cap on measured requests.
    pub max_samples: usize,
    /// Convergence is checked every this many samples.
    pub check_every: usize,
    /// RNG seed; arrival/service and balancer streams are derived from it.
    pub seed: u64,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        let q = Mg1Options::default();
        Self {
            servers: 4,
            quantile: q.quantile,
            confidence: q.confidence,
            max_relative_error: q.max_relative_error,
            warmup: q.warmup,
            max_samples: q.max_samples,
            check_every: q.check_every,
            seed: q.seed,
        }
    }
}

impl ClusterOptions {
    /// Lifts single-queue options to a cluster of `servers`.
    pub fn from_mg1(servers: usize, q: &Mg1Options) -> Self {
        Self {
            servers,
            quantile: q.quantile,
            confidence: q.confidence,
            max_relative_error: q.max_relative_error,
            warmup: q.warmup,
            max_samples: q.max_samples,
            check_every: q.check_every,
            seed: q.seed,
        }
    }
}

/// Results of one cluster simulation.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// The target quantile of sojourn time, µs.
    pub tail_us: f64,
    /// Confidence interval around [`ClusterResult::tail_us`], if computable.
    pub tail_ci: Option<ConfidenceInterval>,
    /// Mean sojourn time, µs.
    pub mean_sojourn_us: f64,
    /// Median sojourn time, µs.
    pub p50_us: f64,
    /// Mean queueing delay (time between arrival and service start), µs.
    pub mean_wait_us: f64,
    /// Queueing-delay statistics, µs (feeds the Erlang-C cross-check).
    pub wait: Summary,
    /// Sojourn-time statistics, µs.
    pub sojourn: Summary,
    /// Mean per-server busy fraction over the measured window.
    pub utilization: f64,
    /// Measured requests dispatched to each server.
    pub per_server_requests: Vec<u64>,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the cap.
    pub converged: bool,
}

/// Simulates `n` FCFS servers behind `balancer` with aggregate Poisson
/// arrivals at `lambda_per_us` and iid service demands from `service`,
/// panicking on a saturated configuration.
///
/// # Panics
///
/// Panics if `lambda_per_us` is not positive, `opts.servers` is zero, or
/// the pilot load estimate `λ·E[S]/n` is ≥ 1. Sweep drivers should call
/// [`try_simulate_cluster`] and render the [`Unstable`] cell instead.
pub fn simulate_cluster(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    opts: &ClusterOptions,
) -> ClusterResult {
    try_simulate_cluster(lambda_per_us, service, balancer, opts, &Tracer::disabled())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking cluster simulation with an optional tracer attached.
///
/// Each measured request emits [`TraceEvent::RequestArrive`], a
/// [`TraceEvent::Dispatch`] carrying the chosen server and its pre-arrival
/// queue length, and [`TraceEvent::RequestComplete`], all stamped in the
/// DES nanosecond-tick domain (1000 ticks per simulated µs). The tracer
/// consumes no RNG draws, so tracing never perturbs results.
///
/// A pilot estimate of `λ·E[S]/n ≥ 1` yields `Err(Unstable)` — the typed
/// saturated-cell verdict — instead of panicking, so grids probing ρ → 1
/// survive their hopeless cells.
pub fn try_simulate_cluster(
    lambda_per_us: f64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
    balancer: &mut dyn Balancer,
    opts: &ClusterOptions,
    tracer: &Tracer,
) -> Result<ClusterResult, Unstable> {
    assert!(lambda_per_us > 0.0, "arrival rate must be positive");
    assert!(opts.servers >= 1, "cluster needs at least one server");
    tracer.set_ticks_per_us(CLUSTER_TICKS_PER_US);
    let traced = tracer.is_enabled();
    let n = opts.servers;

    // Two independent streams: the arrival stream reproduces the exact
    // draw order of the M/G/1 DES (service then interarrival), and the
    // balancer stream is private, so every policy sees the same marked
    // point process (common random numbers across the policy axis).
    let mut rng = rng_from_seed(opts.seed);
    let mut brng = rng_from_seed(derive_stream(opts.seed, BALANCER_STREAM));
    let interarrival = Exponential::from_rate(lambda_per_us);

    // Pilot: estimate the mean service demand to reject saturated inputs.
    let pilot: f64 = (0..512).map(|_| service(&mut rng)).sum::<f64>() / 512.0;
    let rho_estimate = lambda_per_us * pilot / n as f64;
    if rho_estimate >= 1.0 {
        return Err(Unstable { rho_estimate });
    }

    // Per-server FCFS state: `free_at[i]` is when server i drains its
    // backlog (so wait = max(0, free_at[i] - t)), and `in_system[i]` holds
    // the completion times of requests still present, pruned lazily, for
    // queue-length balancers.
    let mut free_at = vec![0.0f64; n];
    let mut in_system: Vec<VecDeque<f64>> = vec![VecDeque::new(); n];
    let mut queues = vec![0u32; n];
    let mut backlog = vec![0.0f64; n];
    let mut per_server = vec![0u64; n];

    let mut sojourns = QuantileEstimator::with_capacity(opts.max_samples.min(1 << 20));
    let mut sojourn_sum = Summary::new();
    let mut wait_sum = Summary::new();
    let mut busy_time = 0.0f64;
    let mut clock = 0.0f64;
    let mut converged = false;
    let mut t = 0.0f64;

    let total = opts.warmup + opts.max_samples;
    for k in 0..total {
        // Same draw order as the M/G/1 DES: service first, then the
        // interarrival gap — with n = 1 the RNG sequence is draw-for-draw
        // identical to `simulate_mg1`.
        let s = service(&mut rng);
        let measured = k >= opts.warmup;

        for i in 0..n {
            let q = &mut in_system[i];
            while q.front().is_some_and(|&done| done <= t) {
                q.pop_front();
            }
            queues[i] = q.len() as u32;
            backlog[i] = (free_at[i] - t).max(0.0);
        }

        let pick = balancer.pick(&queues, &backlog, &mut brng);
        debug_assert!(pick < n, "balancer picked out-of-range server {pick}");
        let wait = backlog[pick];
        let done = t + wait + s;
        free_at[pick] = done;
        in_system[pick].push_back(done);

        if measured {
            sojourns.record(wait + s);
            sojourn_sum.record(wait + s);
            wait_sum.record(wait);
            busy_time += s;
            per_server[pick] += 1;
            if traced {
                let at = ns_ticks(t);
                let fin = ns_ticks(done);
                tracer.emit(|| TraceEvent::RequestArrive { at });
                tracer.emit(|| TraceEvent::Dispatch {
                    at,
                    server: pick as u32,
                    queue_len: queues[pick],
                });
                tracer.emit(|| TraceEvent::RequestComplete {
                    at: fin,
                    latency: fin.saturating_sub(at),
                });
                tracer.count("cluster/requests", 1);
                tracer.count(&format!("cluster/server/{pick}/requests"), 1);
                tracer.observe("cluster/sojourn_us", wait + s);
                tracer.observe("cluster/wait_us", wait);
            }
        }

        let a = interarrival.sample(&mut rng);
        t += a;
        if measured {
            clock += a;
        }

        if measured && sojourns.count().is_multiple_of(opts.check_every) {
            if let Some(ci) = sojourns.quantile_ci(opts.quantile, opts.confidence) {
                if ci.converged(opts.max_relative_error) {
                    converged = true;
                    break;
                }
            }
        }
    }

    let samples = sojourns.count();
    Ok(ClusterResult {
        tail_us: sojourns.quantile(opts.quantile).unwrap_or(0.0),
        tail_ci: sojourns.quantile_ci(opts.quantile, opts.confidence),
        mean_sojourn_us: sojourns.mean().unwrap_or(0.0),
        p50_us: sojourns.quantile(0.5).unwrap_or(0.0),
        mean_wait_us: if wait_sum.count() > 0 {
            wait_sum.mean()
        } else {
            0.0
        },
        wait: wait_sum,
        sojourn: sojourn_sum,
        utilization: if clock > 0.0 {
            (busy_time / (n as f64 * clock)).min(1.0)
        } else {
            0.0
        },
        per_server_requests: per_server,
        samples,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_mg1;

    fn fast_opts(servers: usize, seed: u64) -> ClusterOptions {
        ClusterOptions {
            servers,
            max_samples: 200_000,
            warmup: 2_000,
            seed,
            ..ClusterOptions::default()
        }
    }

    fn exp_service(mean: f64) -> impl FnMut(&mut SimRng) -> f64 {
        move |rng: &mut SimRng| Exponential::new(mean).sample(rng)
    }

    #[test]
    fn single_server_cluster_matches_mg1() {
        // With n = 1 every policy picks server 0 and the RNG draw sequence
        // is identical to the M/G/1 DES; waits differ only by FP rounding
        // (absolute completion times here vs the Lindley recursion there).
        let copts = fast_opts(1, 7);
        let mut svc = exp_service(2.0);
        let cluster = simulate_cluster(0.3, &mut svc, &mut JsqBalancer, &copts);
        let qopts = Mg1Options {
            max_samples: copts.max_samples,
            warmup: copts.warmup,
            seed: copts.seed,
            ..Mg1Options::default()
        };
        let mut svc2 = exp_service(2.0);
        let single = simulate_mg1(0.3, &mut svc2, &qopts);
        assert_eq!(cluster.samples, single.samples);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(
            close(cluster.tail_us, single.tail_us),
            "{} vs {}",
            cluster.tail_us,
            single.tail_us
        );
        assert!(close(cluster.mean_sojourn_us, single.mean_sojourn_us));
        assert!(close(cluster.sojourn.mean(), single.sojourn.mean()));
    }

    #[test]
    fn same_seed_is_bit_identical() {
        for policy in [
            BalancerPolicy::Random,
            BalancerPolicy::RoundRobin,
            BalancerPolicy::Jsq,
            BalancerPolicy::PowerOfD(2),
            BalancerPolicy::LeastWork,
        ] {
            let run = |_| {
                let mut svc = exp_service(1.0);
                simulate_cluster(2.0, &mut svc, &mut *policy.build(), &fast_opts(4, 11))
            };
            let (a, b) = (run(0), run(1));
            assert_eq!(a.tail_us, b.tail_us, "{policy}");
            assert_eq!(a.sojourn, b.sojourn, "{policy}");
            assert_eq!(a.per_server_requests, b.per_server_requests, "{policy}");
        }
    }

    #[test]
    fn jsq_beats_random_p99_at_equal_load() {
        // rho = 0.7 on 4 servers; CRN means both policies see the same
        // arrivals and service demands, so the comparison is paired.
        let lambda = 2.8;
        let mut svc = exp_service(1.0);
        let random = simulate_cluster(lambda, &mut svc, &mut RandomBalancer, &fast_opts(4, 21));
        let mut svc = exp_service(1.0);
        let jsq = simulate_cluster(lambda, &mut svc, &mut JsqBalancer, &fast_opts(4, 21));
        assert!(
            jsq.tail_us <= random.tail_us,
            "jsq p99 {} must not exceed random p99 {}",
            jsq.tail_us,
            random.tail_us
        );
    }

    #[test]
    fn power_of_two_sits_between_random_and_jsq_on_mean() {
        let lambda = 3.2; // rho = 0.8 on 4 servers
        let run = |policy: BalancerPolicy| {
            let mut svc = exp_service(1.0);
            simulate_cluster(lambda, &mut svc, &mut *policy.build(), &fast_opts(4, 33))
        };
        let random = run(BalancerPolicy::Random);
        let pod2 = run(BalancerPolicy::PowerOfD(2));
        let jsq = run(BalancerPolicy::Jsq);
        assert!(
            pod2.mean_sojourn_us <= random.mean_sojourn_us,
            "pod2 {} vs random {}",
            pod2.mean_sojourn_us,
            random.mean_sojourn_us
        );
        assert!(
            jsq.mean_sojourn_us <= pod2.mean_sojourn_us * 1.05,
            "jsq {} vs pod2 {}",
            jsq.mean_sojourn_us,
            pod2.mean_sojourn_us
        );
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let mut svc = exp_service(1.0);
        let r = simulate_cluster(
            2.0,
            &mut svc,
            &mut RoundRobinBalancer::default(),
            &fast_opts(4, 44),
        );
        let min = *r.per_server_requests.iter().min().unwrap();
        let max = *r.per_server_requests.iter().max().unwrap();
        assert!(max - min <= 1, "round robin spread {min}..{max}");
    }

    #[test]
    fn utilization_tracks_offered_load_per_server() {
        let mut svc = exp_service(1.0);
        let r = simulate_cluster(2.8, &mut svc, &mut JsqBalancer, &fast_opts(4, 55));
        assert!(
            (r.utilization - 0.7).abs() < 0.03,
            "utilization {} vs rho 0.7",
            r.utilization
        );
    }

    #[test]
    fn saturated_cluster_is_a_typed_error_not_a_panic() {
        let mut svc = exp_service(1.0);
        let err = try_simulate_cluster(
            4.8, // rho = 1.2 on 4 servers
            &mut svc,
            &mut JsqBalancer,
            &fast_opts(4, 66),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(err.rho_estimate >= 1.0, "rho {}", err.rho_estimate);
    }

    #[test]
    fn tracing_does_not_perturb_results_and_emits_dispatches() {
        let opts = ClusterOptions {
            max_samples: 5_000,
            warmup: 500,
            ..fast_opts(4, 77)
        };
        let mut svc = exp_service(1.0);
        let plain = simulate_cluster(2.0, &mut svc, &mut JsqBalancer, &opts);
        let tracer = Tracer::enabled(1 << 20, CLUSTER_TICKS_PER_US);
        let mut svc = exp_service(1.0);
        let traced = try_simulate_cluster(2.0, &mut svc, &mut JsqBalancer, &opts, &tracer).unwrap();
        assert_eq!(plain.tail_us, traced.tail_us);
        assert_eq!(plain.sojourn, traced.sojourn);
        assert_eq!(plain.per_server_requests, traced.per_server_requests);
        let log = tracer.take();
        let dispatches = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
            .count();
        assert_eq!(dispatches, traced.samples);
        assert_eq!(
            log.registry.counter("cluster/requests"),
            traced.samples as u64
        );
    }
}
