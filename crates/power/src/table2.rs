//! Table II: area and clock frequencies per component.

use crate::components::{core_area_mm2, CoreKind};
use crate::LLC_MM2_PER_MB;
use serde::{Deserialize, Serialize};

/// One Table II row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Component name as printed in the paper.
    pub component: &'static str,
    /// Area in mm² (per MB for the LLC row).
    pub area_mm2: f64,
    /// Clock frequency in GHz; `None` for the LLC.
    pub frequency_ghz: Option<f64>,
    /// The paper's published value, for side-by-side reporting.
    pub paper_area_mm2: f64,
}

/// Computes all Table II rows from the component model.
#[must_use]
pub fn table2_rows() -> Vec<Table2Row> {
    vec![
        Table2Row {
            component: "Baseline OoO",
            area_mm2: core_area_mm2(CoreKind::BaselineOoo),
            frequency_ghz: Some(3.4),
            paper_area_mm2: 12.1,
        },
        Table2Row {
            component: "SMT",
            area_mm2: core_area_mm2(CoreKind::Smt2),
            frequency_ghz: Some(3.35),
            paper_area_mm2: 12.2,
        },
        Table2Row {
            component: "MorphCore",
            area_mm2: core_area_mm2(CoreKind::MorphCore),
            frequency_ghz: Some(3.3),
            paper_area_mm2: 12.4,
        },
        Table2Row {
            component: "Master-core",
            area_mm2: core_area_mm2(CoreKind::MasterCore),
            frequency_ghz: Some(3.25),
            paper_area_mm2: 12.7,
        },
        Table2Row {
            component: "Master-core + replication",
            area_mm2: core_area_mm2(CoreKind::MasterCoreReplicated),
            frequency_ghz: Some(3.25),
            paper_area_mm2: 16.7,
        },
        Table2Row {
            component: "Lender-core",
            area_mm2: core_area_mm2(CoreKind::LenderCore),
            frequency_ghz: Some(3.4),
            paper_area_mm2: 5.5,
        },
        Table2Row {
            component: "LLC (per MB)",
            area_mm2: LLC_MM2_PER_MB,
            frequency_ghz: None,
            paper_area_mm2: 3.9,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_close_to_paper() {
        for row in table2_rows() {
            let err = (row.area_mm2 - row.paper_area_mm2).abs() / row.paper_area_mm2;
            assert!(
                err < 0.01,
                "{}: model {} vs paper {}",
                row.component,
                row.area_mm2,
                row.paper_area_mm2
            );
        }
    }

    #[test]
    fn frequencies_match_table2() {
        let rows = table2_rows();
        let freq = |name: &str| {
            rows.iter()
                .find(|r| r.component == name)
                .and_then(|r| r.frequency_ghz)
                .unwrap()
        };
        assert_eq!(freq("Baseline OoO"), 3.4);
        assert_eq!(freq("SMT"), 3.35);
        assert_eq!(freq("MorphCore"), 3.3);
        assert_eq!(freq("Master-core"), 3.25);
        assert_eq!(freq("Lender-core"), 3.4);
        assert!(rows.last().unwrap().frequency_ghz.is_none());
    }

    #[test]
    fn seven_rows_like_the_paper() {
        assert_eq!(table2_rows().len(), 7);
    }
}
