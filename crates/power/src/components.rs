//! Component-level area breakdown at 32nm, calibrated to Table II.
//!
//! Components use CACTI-like SRAM densities: latency-optimized L1 arrays at
//! ~0.0234 mm²/KB, density-optimized LLC arrays at 3.9 mm²/MB (Table II),
//! and logic blocks sized so the per-core totals reproduce the published
//! numbers:
//!
//! | Core | Table II | This model |
//! |---|---|---|
//! | Baseline OoO | 12.1 mm² | 12.1 |
//! | SMT | 12.2 mm² | 12.2 |
//! | MorphCore | 12.4 mm² | 12.4 |
//! | Master-core | 12.7 mm² | ~12.75 |
//! | Master + replication | 16.7 mm² | ~16.75 |
//! | Lender-core | 5.5 mm² | 5.5 |

use crate::LLC_MM2_PER_MB;
use serde::{Deserialize, Serialize};

/// The core organizations whose area the model reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// 4-wide OoO, single-threaded.
    BaselineOoo,
    /// Baseline + 2-way SMT thread state and ICOUNT logic.
    Smt2,
    /// SMT + mode-switch muxing (Khubaib reports ~2% over baseline).
    MorphCore,
    /// MorphCore + filler TLBs, reduced predictor, L0 I/D filters, lender
    /// data path (~5% over baseline, §V Overheads).
    MasterCore,
    /// Master-core with all stateful structures replicated, incl. L1s
    /// (38% over baseline).
    MasterCoreReplicated,
    /// 8-way in-order HSMT lender-core.
    LenderCore,
}

/// One named block of silicon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentArea {
    /// Block name.
    pub name: &'static str,
    /// Area in mm² at 32nm.
    pub mm2: f64,
}

/// L1-class SRAM density, mm² per KB (latency-optimized, with tags/periphery).
const L1_MM2_PER_KB: f64 = 0.0234;

fn l1_pair() -> [ComponentArea; 2] {
    [
        ComponentArea {
            name: "L1-I 64KB",
            mm2: 64.0 * L1_MM2_PER_KB,
        },
        ComponentArea {
            name: "L1-D 64KB",
            mm2: 64.0 * L1_MM2_PER_KB,
        },
    ]
}

/// The component breakdown of one core organization.
#[must_use]
pub fn core_components(kind: CoreKind) -> Vec<ComponentArea> {
    let mut v: Vec<ComponentArea> = Vec::new();
    match kind {
        CoreKind::LenderCore => {
            v.extend(l1_pair()); // 3.00
            v.push(ComponentArea {
                name: "gshare(8K)+BTB+RAS",
                mm2: 0.45,
            });
            v.push(ComponentArea {
                name: "I/D TLBs",
                mm2: 0.12,
            });
            v.push(ComponentArea {
                name: "128-entry ARF (8 contexts)",
                mm2: 0.40,
            });
            v.push(ComponentArea {
                name: "InO issue queues + scoreboard",
                mm2: 0.35,
            });
            v.push(ComponentArea {
                name: "fetch/decode (RR, 8 threads)",
                mm2: 0.60,
            });
            v.push(ComponentArea {
                name: "functional units (4-wide)",
                mm2: 0.58,
            });
        }
        _ => {
            v.extend(l1_pair()); // 3.00
            v.push(ComponentArea {
                name: "tournament(16K x3)+BTB+RAS",
                mm2: 0.90,
            });
            v.push(ComponentArea {
                name: "I/D TLBs",
                mm2: 0.12,
            });
            v.push(ComponentArea {
                name: "rename+ROB+IQ+LSQ",
                mm2: 1.90,
            });
            v.push(ComponentArea {
                name: "PRF 144 x (int+fp)",
                mm2: 1.10,
            });
            v.push(ComponentArea {
                name: "functional units (4-wide)",
                mm2: 2.60,
            });
            v.push(ComponentArea {
                name: "fetch/decode pipeline",
                mm2: 1.30,
            });
            v.push(ComponentArea {
                name: "bypass/clock/interconnect",
                mm2: 1.18,
            });
            if matches!(
                kind,
                CoreKind::Smt2
                    | CoreKind::MorphCore
                    | CoreKind::MasterCore
                    | CoreKind::MasterCoreReplicated
            ) {
                v.push(ComponentArea {
                    name: "2nd thread state + ICOUNT",
                    mm2: 0.10,
                });
            }
            if matches!(
                kind,
                CoreKind::MorphCore | CoreKind::MasterCore | CoreKind::MasterCoreReplicated
            ) {
                // Khubaib [49]: ~2% for morph muxing/select/wakeup paths.
                v.push(ComponentArea {
                    name: "morph muxes + InO select",
                    mm2: 0.20,
                });
            }
            if matches!(kind, CoreKind::MasterCore | CoreKind::MasterCoreReplicated) {
                // §V Overheads: TLBs 0.7%, predictor 1.2%, L0s 1.0%.
                v.push(ComponentArea {
                    name: "filler I/D TLBs",
                    mm2: 0.085,
                });
                v.push(ComponentArea {
                    name: "filler gshare(8K) predictor",
                    mm2: 0.145,
                });
                v.push(ComponentArea {
                    name: "L0-I 2KB + L0-D 4KB",
                    mm2: 0.12,
                });
            }
            if kind == CoreKind::MasterCoreReplicated {
                // Replicate the large stateful structures: L1 pair, full
                // predictor, TLBs, extra RF banks.
                v.push(ComponentArea {
                    name: "replicated L1-I/D",
                    mm2: 3.00,
                });
                v.push(ComponentArea {
                    name: "replicated predictor+BTB",
                    mm2: 0.70,
                });
                v.push(ComponentArea {
                    name: "replicated RF banks",
                    mm2: 0.30,
                });
            }
        }
    }
    v
}

/// Total core area in mm².
#[must_use]
pub fn core_area_mm2(kind: CoreKind) -> f64 {
    core_components(kind).iter().map(|c| c.mm2).sum()
}

/// Chip area of one dyad-equivalent unit: the latency-critical core, its
/// paired throughput (lender) core, and a 2MB LLC share.
///
/// §VI-B pairs every design alternative with a throughput-oriented HSMT core
/// for fair comparison, so the unit is uniform across designs.
#[must_use]
pub fn chip_area_mm2(kind: CoreKind) -> f64 {
    core_area_mm2(kind) + core_area_mm2(CoreKind::LenderCore) + 2.0 * LLC_MM2_PER_MB
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expect: f64, tol: f64) {
        assert!(
            (actual - expect).abs() <= tol,
            "expected {expect} +- {tol}, got {actual}"
        );
    }

    #[test]
    fn table2_baseline() {
        close(core_area_mm2(CoreKind::BaselineOoo), 12.1, 0.05);
    }

    #[test]
    fn table2_smt() {
        close(core_area_mm2(CoreKind::Smt2), 12.2, 0.05);
    }

    #[test]
    fn table2_morphcore() {
        close(core_area_mm2(CoreKind::MorphCore), 12.4, 0.05);
    }

    #[test]
    fn table2_master() {
        close(core_area_mm2(CoreKind::MasterCore), 12.7, 0.1);
    }

    #[test]
    fn table2_master_replicated() {
        close(core_area_mm2(CoreKind::MasterCoreReplicated), 16.7, 0.1);
    }

    #[test]
    fn table2_lender() {
        close(core_area_mm2(CoreKind::LenderCore), 5.5, 0.05);
    }

    #[test]
    fn master_overhead_is_about_5_percent() {
        // §V: "The total area overhead of the master-core is approximately
        // 5% compared to a baseline 4-wide OoO core."
        let overhead =
            core_area_mm2(CoreKind::MasterCore) / core_area_mm2(CoreKind::BaselineOoo) - 1.0;
        assert!((0.03..0.07).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn replication_overhead_is_about_38_percent() {
        let overhead = core_area_mm2(CoreKind::MasterCoreReplicated)
            / core_area_mm2(CoreKind::BaselineOoo)
            - 1.0;
        assert!((0.33..0.43).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn lender_is_less_than_half_an_ooo_core() {
        assert!(core_area_mm2(CoreKind::LenderCore) < 0.5 * core_area_mm2(CoreKind::BaselineOoo));
    }

    #[test]
    fn chip_area_includes_lender_and_llc() {
        let chip = chip_area_mm2(CoreKind::BaselineOoo);
        close(chip, 12.1 + 5.5 + 7.8, 0.2);
    }

    #[test]
    fn components_are_positive_and_named() {
        for kind in [
            CoreKind::BaselineOoo,
            CoreKind::Smt2,
            CoreKind::MorphCore,
            CoreKind::MasterCore,
            CoreKind::MasterCoreReplicated,
            CoreKind::LenderCore,
        ] {
            for c in core_components(kind) {
                assert!(c.mm2 > 0.0, "{kind:?}/{}", c.name);
                assert!(!c.name.is_empty());
            }
        }
    }
}
