//! Power and energy model.
//!
//! Static power scales with area (leakage-dominated at 32nm high
//! performance); dynamic power scales with retired micro-ops and the energy
//! cost of the issue style: in-order issue avoids the rename/wakeup/select
//! energy of out-of-order issue (one of MorphCore's original motivations
//! \[49\]), and replicated structures burn extra leakage even when idle.

use crate::components::{core_area_mm2, CoreKind};
use serde::{Deserialize, Serialize};

/// Leakage density at 32nm high-performance (W per mm²).
pub const STATIC_W_PER_MM2: f64 = 0.12;

/// Dynamic energy per retired micro-op under out-of-order issue (nJ),
/// including fetch/rename/wakeup/bypass and cache access shares.
pub const OOO_NJ_PER_OP: f64 = 0.50;

/// Dynamic energy per retired micro-op under in-order issue (nJ).
pub const INO_NJ_PER_OP: f64 = 0.28;

/// Power split of one core running a given instruction mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Leakage, W.
    pub static_w: f64,
    /// Switching, W.
    pub dynamic_w: f64,
}

impl PowerBreakdown {
    /// Total power, W.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w
    }
}

/// Dynamic energy per micro-op for a core kind, nJ.
///
/// Morphable cores execute filler ops at in-order cost; `ino_fraction` is
/// the fraction of retired ops executed in in-order mode (0 for the
/// baseline, 1 for the lender-core).
#[must_use]
pub fn energy_per_op_nj(kind: CoreKind, ino_fraction: f64) -> f64 {
    let ino_fraction = ino_fraction.clamp(0.0, 1.0);
    match kind {
        CoreKind::LenderCore => INO_NJ_PER_OP,
        _ => OOO_NJ_PER_OP * (1.0 - ino_fraction) + INO_NJ_PER_OP * ino_fraction,
    }
}

/// Power of one core retiring `ipc` micro-ops per cycle at `clock_ghz`,
/// with `ino_fraction` of them in in-order mode.
#[must_use]
pub fn power_w(kind: CoreKind, ipc: f64, clock_ghz: f64, ino_fraction: f64) -> PowerBreakdown {
    let static_w = core_area_mm2(kind) * STATIC_W_PER_MM2;
    // ops/ns * nJ/op = W.
    let dynamic_w = ipc * clock_ghz * energy_per_op_nj(kind, ino_fraction);
    PowerBreakdown {
        static_w,
        dynamic_w,
    }
}

/// Power attributed to one named block of a core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Block name (matches [`crate::components::core_components`]).
    pub name: &'static str,
    /// Leakage, W (proportional to the block's area).
    pub static_w: f64,
    /// Switching, W (the core's dynamic power split by activity share).
    pub dynamic_w: f64,
}

impl ComponentPower {
    /// Total power of this block, W.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w
    }
}

/// Dynamic-energy share of a block by name: how much of each retired op's
/// switching energy lands in it. In-order issue moves the scheduling share
/// out of the rename/wakeup structures (they are clock-gated in filler
/// mode), which is where MorphCore's energy saving comes from \[49\].
fn dynamic_share(name: &str, ino_fraction: f64) -> f64 {
    let ooo = 1.0 - ino_fraction;
    if name.contains("L1") || name.contains("L0") {
        0.22
    } else if name.contains("rename") || name.contains("ROB") {
        0.25 * ooo + 0.04 * ino_fraction
    } else if name.contains("issue queues") || name.contains("scoreboard") {
        0.10
    } else if name.contains("functional") {
        0.24
    } else if name.contains("fetch/decode") {
        0.16
    } else if name.contains("PRF") || name.contains("ARF") || name.contains("RF") {
        0.09
    } else if name.contains("predictor") || name.contains("gshare") || name.contains("tournament") {
        0.05
    } else if name.contains("TLB") {
        0.02
    } else {
        0.03
    }
}

/// Splits a core's power across its named components.
///
/// Leakage is exact per block (area-proportional); switching is distributed
/// by activity shares and renormalized so the breakdown sums to
/// [`power_w`]'s totals.
#[must_use]
pub fn component_power(
    kind: CoreKind,
    ipc: f64,
    clock_ghz: f64,
    ino_fraction: f64,
) -> Vec<ComponentPower> {
    let components = crate::components::core_components(kind);
    let total = power_w(kind, ipc, clock_ghz, ino_fraction);
    let raw_shares: Vec<f64> = components
        .iter()
        .map(|c| dynamic_share(c.name, ino_fraction))
        .collect();
    let share_sum: f64 = raw_shares.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    components
        .iter()
        .zip(raw_shares)
        .map(|(c, share)| ComponentPower {
            name: c.name,
            static_w: c.mm2 * STATIC_W_PER_MM2,
            dynamic_w: total.dynamic_w * share / share_sum,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_breakdown_sums_to_core_power() {
        for kind in [
            CoreKind::BaselineOoo,
            CoreKind::MasterCore,
            CoreKind::LenderCore,
        ] {
            for ino in [0.0, 0.5, 1.0] {
                let total = power_w(kind, 1.5, 3.3, ino);
                let parts = component_power(kind, 1.5, 3.3, ino);
                let s: f64 = parts.iter().map(|p| p.static_w).sum();
                let d: f64 = parts.iter().map(|p| p.dynamic_w).sum();
                assert!((s - total.static_w).abs() < 1e-9, "{kind:?} static");
                assert!((d - total.dynamic_w).abs() < 1e-9, "{kind:?} dynamic");
            }
        }
    }

    #[test]
    fn inorder_mode_gates_the_scheduler() {
        let parts_ooo = component_power(CoreKind::MasterCore, 2.0, 3.25, 0.0);
        let parts_ino = component_power(CoreKind::MasterCore, 2.0, 3.25, 1.0);
        let sched = |parts: &[ComponentPower]| {
            parts
                .iter()
                .find(|p| p.name.contains("rename"))
                .map(|p| p.dynamic_w)
                .expect("rename block exists")
        };
        assert!(
            sched(&parts_ino) < 0.3 * sched(&parts_ooo),
            "filler mode must gate the OoO scheduler"
        );
    }

    #[test]
    fn caches_are_a_major_dynamic_consumer() {
        let parts = component_power(CoreKind::BaselineOoo, 2.0, 3.4, 0.0);
        let cache_w: f64 = parts
            .iter()
            .filter(|p| p.name.contains("L1"))
            .map(|p| p.dynamic_w)
            .sum();
        let total_dyn: f64 = parts.iter().map(|p| p.dynamic_w).sum();
        assert!((0.1..0.4).contains(&(cache_w / total_dyn)));
    }

    #[test]
    fn static_power_tracks_area() {
        let base = power_w(CoreKind::BaselineOoo, 0.0, 3.4, 0.0);
        let repl = power_w(CoreKind::MasterCoreReplicated, 0.0, 3.25, 0.0);
        assert!(repl.static_w > 1.3 * base.static_w);
        assert_eq!(base.dynamic_w, 0.0);
    }

    #[test]
    fn plausible_absolute_power() {
        // A 4-wide OoO at IPC 2 and 3.4GHz should land in the 3-7W range.
        let p = power_w(CoreKind::BaselineOoo, 2.0, 3.4, 0.0).total_w();
        assert!((3.0..7.0).contains(&p), "power {p} W");
    }

    #[test]
    fn inorder_ops_are_cheaper() {
        assert!(energy_per_op_nj(CoreKind::LenderCore, 0.0) < OOO_NJ_PER_OP);
        let mixed = energy_per_op_nj(CoreKind::MasterCore, 0.5);
        assert!(mixed < OOO_NJ_PER_OP && mixed > INO_NJ_PER_OP);
    }

    #[test]
    fn ino_fraction_is_clamped() {
        assert_eq!(energy_per_op_nj(CoreKind::MasterCore, 5.0), INO_NJ_PER_OP);
        assert_eq!(energy_per_op_nj(CoreKind::MasterCore, -1.0), OOO_NJ_PER_OP);
    }

    #[test]
    fn dynamic_power_scales_with_throughput() {
        let p1 = power_w(CoreKind::BaselineOoo, 1.0, 3.4, 0.0);
        let p2 = power_w(CoreKind::BaselineOoo, 2.0, 3.4, 0.0);
        assert!((p2.dynamic_w - 2.0 * p1.dynamic_w).abs() < 1e-12);
    }
}
