//! Area, frequency and power model for the Duplexity reproduction.
//!
//! The paper sizes its designs with McPAT \[87\] and CACTI \[120\] at 32nm and
//! reports the results in Table II. Neither tool can be linked here, so this
//! crate provides an analytical substitute: a component-level area breakdown
//! ([`components`]) whose totals are calibrated to Table II, plus a power
//! model ([`energy`]) with static power proportional to area and dynamic
//! energy per retired micro-op per core style. The experiment drivers use it
//! for performance density (Fig. 5(b)), energy (Fig. 5(c)), and the
//! iso-throughput normalization of Fig. 5(e).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod energy;
pub mod table2;

pub use components::{chip_area_mm2, core_area_mm2, core_components, ComponentArea, CoreKind};
pub use energy::{component_power, energy_per_op_nj, power_w, ComponentPower, PowerBreakdown};
pub use table2::{table2_rows, Table2Row};

use duplexity_cpu::designs::Design;

/// Maps an evaluated design to the core organization occupying its
/// latency-critical slot.
#[must_use]
pub fn core_kind_for(design: Design) -> CoreKind {
    match design {
        Design::Baseline | Design::Runahead => CoreKind::BaselineOoo,
        Design::Smt | Design::SmtPlus | Design::Elfen => CoreKind::Smt2,
        Design::MorphCore | Design::MorphCorePlus => CoreKind::MorphCore,
        Design::DuplexityReplication => CoreKind::MasterCoreReplicated,
        Design::Duplexity => CoreKind::MasterCore,
    }
}

/// LLC area per megabyte at 32nm (Table II: 3.9 mm²/MB).
pub const LLC_MM2_PER_MB: f64 = 3.9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_mapping_is_total() {
        for d in Design::ALL {
            let _ = core_kind_for(d);
        }
        assert_eq!(core_kind_for(Design::Duplexity), CoreKind::MasterCore);
        assert_eq!(
            core_kind_for(Design::DuplexityReplication),
            CoreKind::MasterCoreReplicated
        );
    }
}
