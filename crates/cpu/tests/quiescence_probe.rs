//! Verifies the quiescence probe's claims against the naive stepper.
//!
//! `DyadSim::next_event_cycle` promises that every cycle strictly before
//! the returned event is a pure counter bump: no retirement, no morphs, no
//! remote ops, no memory traffic. This test runs the *naive* loop and,
//! after every probe that claims a non-trivial span, checks that promise
//! cycle by cycle — so a violated claim fails at the exact cycle it is
//! first wrong, rather than as a downstream metrics diff.

use duplexity_cpu::dyad::{DyadConfig, DyadSim};
use duplexity_cpu::op::{LoopedTrace, MicroOp, Op};
use duplexity_stats::rng::rng_from_seed;

fn stall_heavy_master() -> Box<LoopedTrace> {
    let mut ops = Vec::new();
    for i in 0..48u64 {
        ops.push(MicroOp::new(i * 4, Op::IntAlu).with_dst((i % 8) as u8));
    }
    ops.push(MicroOp::new(0x400, Op::RemoteLoad { latency_us: 1.0 }));
    Box::new(LoopedTrace::new(ops))
}

fn batch_stream(id: usize) -> Box<LoopedTrace> {
    let base = 0x10_0000 * (id as u64 + 1);
    Box::new(LoopedTrace::new(
        (0..64)
            .map(|i| MicroOp::new(base + i * 4, Op::IntAlu).with_dst((i % 4) as u8))
            .collect(),
    ))
}

#[test]
fn probe_claims_hold_under_naive_stepping() {
    let configs: [(&str, DyadConfig); 4] = [
        ("morphcore", DyadConfig::morphcore()),
        ("morphcore_plus", DyadConfig::morphcore_plus()),
        ("duplexity_replication", DyadConfig::duplexity_replication()),
        ("duplexity", DyadConfig::duplexity()),
    ];
    for (name, cfg) in configs {
        let mut dyad = DyadSim::new(cfg, stall_heavy_master());
        if cfg.hsmt_fillers {
            for id in 0..16 {
                dyad.add_batch_thread(id, batch_stream(id));
            }
        } else {
            for id in 0..8 {
                dyad.add_fixed_filler(id, batch_stream(id));
            }
        }
        let mut rng = rng_from_seed(11);
        let horizon = 120_000u64;
        // Outstanding claim: (target, metrics snapshot, cycle it was made).
        let mut claim: Option<(u64, duplexity_cpu::dyad::DyadMetrics, u64)> = None;
        while dyad.now() < horizon {
            dyad.step(&mut rng);
            if let Some((target, ref snap, at)) = claim {
                if dyad.now() <= target {
                    let m = dyad.metrics();
                    let frozen = m.master_retired == snap.master_retired
                        && m.filler_retired_on_master == snap.filler_retired_on_master
                        && m.lender_retired == snap.lender_retired
                        && m.morphs == snap.morphs
                        && m.remote_ops_master == snap.remote_ops_master
                        && m.remote_ops_batch == snap.remote_ops_batch
                        && m.retired_by_ctx == snap.retired_by_ctx
                        && m.request_latencies_cycles == snap.request_latencies_cycles;
                    assert!(
                        frozen,
                        "{name}: probe at cycle {at} claimed quiescence until {target}, \
                         but cycle {} changed state:\n  snap: {snap:?}\n  now:  {m:?}",
                        dyad.now() - 1,
                    );
                }
                if dyad.now() >= target {
                    claim = None;
                }
            }
            if claim.is_none() {
                if let Some(t) = dyad.next_event_cycle() {
                    if t > dyad.now() {
                        claim = Some((t, dyad.metrics(), dyad.now()));
                    }
                }
            }
        }
    }
}
