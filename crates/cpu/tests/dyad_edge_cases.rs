//! Edge-case and failure-injection tests for the dyad controller.

use duplexity_cpu::dyad::{DyadConfig, DyadSim, FillerPlacement};
use duplexity_cpu::op::{Fetched, InstructionStream, MicroOp, Op, RequestKernel, NO_REG};
use duplexity_cpu::request::RequestStream;
use duplexity_stats::rng::{rng_from_seed, SimRng};

#[derive(Debug)]
struct StallKernel;
impl RequestKernel for StallKernel {
    fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
        for i in 0..1000u64 {
            out.push(
                MicroOp::new(i * 4, Op::IntAlu)
                    .with_srcs(0, NO_REG)
                    .with_dst(0),
            );
        }
        out.push(
            MicroOp::new(4096, Op::RemoteLoad { latency_us: 2.0 })
                .with_srcs(0, NO_REG)
                .with_dst(1),
        );
        out.push(MicroOp::new(4100, Op::IntAlu).with_srcs(1, NO_REG));
    }
    fn nominal_service_us(&self) -> f64 {
        2.4
    }
}

fn master(cfg: &DyadConfig) -> Box<dyn InstructionStream> {
    Box::new(RequestStream::open_loop(
        Box::new(StallKernel),
        0.5,
        2.4,
        cfg.machine.cycles_per_us(),
    ))
}

/// A dyad with an EMPTY virtual-context pool: the master-core still morphs
/// but finds no fillers; the master-thread must be completely unaffected.
#[test]
fn empty_pool_does_not_harm_master() {
    let cfg = DyadConfig::duplexity();
    let mut empty = DyadSim::new(cfg, master(&cfg));
    let mut rng = rng_from_seed(1);
    empty.run(1_000_000, &mut rng);
    let m = empty.metrics();
    assert!(m.morphs > 0, "morphs still trigger");
    assert_eq!(m.filler_retired_on_master, 0, "no fillers exist");
    assert!(!m.request_latencies_cycles.is_empty());

    // Compare master latency against a no-morph run: the morph machinery
    // itself (with the resume penalty) must cost only the documented ~50
    // cycles per transition.
    let mut nomorph_cfg = cfg;
    nomorph_cfg.min_morph_gain_cycles = u64::MAX;
    let mut nomorph = DyadSim::new(nomorph_cfg, master(&nomorph_cfg));
    let mut rng = rng_from_seed(1);
    nomorph.run(1_000_000, &mut rng);
    let lat = |m: &duplexity_cpu::dyad::DyadMetrics| {
        m.request_latencies_cycles.iter().sum::<u64>() as f64
            / m.request_latencies_cycles.len().max(1) as f64
    };
    let with = lat(&empty.metrics());
    let without = lat(&nomorph.metrics());
    assert!(
        with < without * 1.1 + 200.0,
        "empty-pool morphing cost too much: {with} vs {without} cycles"
    );
}

/// A dyad whose batch threads all finish: the pool drains and the dyad
/// keeps serving the master without wedging.
#[test]
fn finite_fillers_drain_cleanly() {
    #[derive(Debug)]
    struct Finite(u32);
    impl InstructionStream for Finite {
        fn next(&mut self, _now: u64, _rng: &mut SimRng) -> Fetched {
            if self.0 == 0 {
                return Fetched::Done;
            }
            self.0 -= 1;
            Fetched::Op(MicroOp::new(u64::from(self.0) * 4, Op::IntAlu))
        }
    }
    let cfg = DyadConfig::duplexity();
    let mut dyad = DyadSim::new(cfg, master(&cfg));
    for id in 0..8 {
        dyad.add_batch_thread(id, Box::new(Finite(5_000)));
    }
    let mut rng = rng_from_seed(2);
    dyad.run(2_000_000, &mut rng);
    let m = dyad.metrics();
    // All 40k filler ops eventually retire somewhere, then the threads die.
    let batch_total = m.filler_retired_on_master + m.lender_retired;
    assert_eq!(batch_total, 8 * 5_000);
    assert!(
        !m.request_latencies_cycles.is_empty(),
        "master kept serving"
    );
}

/// All three filler placements run against the same scenario and their
/// isolation ordering holds: master L1 misses are highest when fillers share
/// the master's caches.
#[test]
fn placement_isolation_ordering() {
    let run = |placement: FillerPlacement| {
        let cfg = match placement {
            FillerPlacement::MasterCaches => DyadConfig::morphcore_plus(),
            FillerPlacement::ReplicatedCaches => DyadConfig::duplexity_replication(),
            FillerPlacement::LenderCaches => DyadConfig::duplexity(),
        };
        assert_eq!(cfg.placement, placement);
        let mut dyad = DyadSim::new(cfg, master(&cfg));
        for id in 0..16 {
            // Memory-hungry fillers.
            let base = 0x5000_0000 + 0x100_0000 * id as u64;
            let ops: Vec<MicroOp> = (0..256)
                .map(|i| {
                    MicroOp::new(
                        base + i * 4,
                        Op::Load {
                            addr: base + 0x10_000 + i * 2048,
                        },
                    )
                    .with_dst((i % 8) as u8)
                })
                .collect();
            dyad.add_batch_thread(id, Box::new(duplexity_cpu::op::LoopedTrace::new(ops)));
        }
        let mut rng = rng_from_seed(3);
        dyad.run(800_000, &mut rng);
        dyad.master_mem().l1_misses()
    };
    let shared = run(FillerPlacement::MasterCaches);
    let replicated = run(FillerPlacement::ReplicatedCaches);
    let lender = run(FillerPlacement::LenderCaches);
    assert!(
        shared > 2 * replicated.max(1),
        "shared {shared} vs replicated {replicated}"
    );
    assert!(
        shared > 2 * lender.max(1),
        "shared {shared} vs lender {lender}"
    );
}

/// §IV "Demarcating stalls": slower stall recognition (mwait-style polling
/// instead of queue-pair demarcation) shrinks every hole by the detection
/// delay, costing filler throughput monotonically.
#[test]
fn detection_latency_costs_filler_throughput() {
    let run = |delay: u64| {
        let cfg = DyadConfig {
            stall_detection_delay: delay,
            ..DyadConfig::duplexity()
        };
        let mut dyad = DyadSim::new(cfg, master(&cfg));
        for id in 0..16 {
            let base = 0x6000_0000 + 0x100_0000 * id as u64;
            let ops: Vec<MicroOp> = (0..128)
                .map(|i| MicroOp::new(base + i * 4, Op::IntAlu).with_dst((i % 8) as u8))
                .collect();
            dyad.add_batch_thread(id, Box::new(duplexity_cpu::op::LoopedTrace::new(ops)));
        }
        let mut rng = rng_from_seed(5);
        dyad.run(1_200_000, &mut rng);
        dyad.metrics().filler_retired_on_master
    };
    let instant = run(0);
    let slow = run(3_400); // a full 1µs of detection latency
    assert!(instant > 0);
    assert!(
        slow < instant,
        "1µs detection must cost filler work: {slow} vs {instant}"
    );
}

/// The morph log classifies holes correctly: a stall-heavy master produces
/// `Stall` morphs; an idle-only master produces `Idle` morphs.
#[test]
fn morph_log_classifies_causes() {
    use duplexity_cpu::dyad::MorphCause;
    use duplexity_cpu::op::RequestKernel;

    // Stall-heavy, saturated: only Stall morphs possible.
    let cfg = DyadConfig::duplexity();
    let mut stall_dyad = DyadSim::new(
        cfg,
        Box::new(RequestStream::saturated(Box::new(StallKernel))),
    );
    let mut rng = rng_from_seed(7);
    stall_dyad.run(600_000, &mut rng);
    assert!(!stall_dyad.morph_log().is_empty());
    assert!(stall_dyad
        .morph_log()
        .iter()
        .all(|e| e.cause == MorphCause::Stall));
    // Every event's window is at least the minimum morph gain.
    for e in stall_dyad.morph_log() {
        assert!(e.hole_cycles() >= cfg.min_morph_gain_cycles);
    }

    // Compute-only at low load: only Idle morphs possible.
    #[derive(Debug)]
    struct ComputeOnly;
    impl RequestKernel for ComputeOnly {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            for i in 0..1500u64 {
                out.push(
                    MicroOp::new(i * 4, Op::IntAlu)
                        .with_srcs(0, NO_REG)
                        .with_dst(0),
                );
            }
        }
        fn nominal_service_us(&self) -> f64 {
            0.5
        }
    }
    let mut idle_dyad = DyadSim::new(
        cfg,
        Box::new(RequestStream::open_loop(
            Box::new(ComputeOnly),
            0.2,
            0.5,
            cfg.machine.cycles_per_us(),
        )),
    );
    let mut rng = rng_from_seed(8);
    idle_dyad.run(1_000_000, &mut rng);
    assert!(!idle_dyad.morph_log().is_empty());
    assert!(idle_dyad
        .morph_log()
        .iter()
        .all(|e| e.cause == MorphCause::Idle));
    // The log agrees with the morph counter.
    assert_eq!(idle_dyad.morph_log().len() as u64, idle_dyad.morphs());
}
