//! Property-based tests over the cycle-level engines: arbitrary trace
//! programs must never break structural invariants.

use duplexity_cpu::inorder::InoEngine;
use duplexity_cpu::memsys::MemSys;
use duplexity_cpu::ooo::{FetchPolicy, OooEngine, SmtPartition, ThreadClass};
use duplexity_cpu::op::{LoopedTrace, MicroOp, Op, NO_REG};
use duplexity_stats::rng::rng_from_seed;
use duplexity_uarch::config::{CoreConfig, LatencyModel};
use proptest::prelude::*;

/// Strategy: one arbitrary micro-op with bounded fields.
fn arb_op() -> impl Strategy<Value = MicroOp> {
    (
        0u64..1 << 20,
        0u8..6,
        any::<bool>(),
        0u8..16,
        0u8..16,
        prop::option::of(0u8..16),
    )
        .prop_map(|(pc, kind, taken, s1, s2, dst)| {
            let op = match kind {
                0 => Op::IntAlu,
                1 => Op::IntMul,
                2 => Op::FpAlu,
                3 => Op::Load { addr: pc * 8 },
                4 => Op::Store { addr: pc * 8 + 4 },
                _ => Op::Branch {
                    taken,
                    target: pc + 64,
                },
            };
            let mut m = MicroOp::new(pc * 4, op).with_srcs(
                if s1 < 12 { s1 } else { NO_REG },
                if s2 < 8 { s2 } else { NO_REG },
            );
            if let Some(d) = dst {
                m = m.with_dst(d);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The OoO engine retires at most `width` per cycle, never wedges on an
    /// arbitrary program, and keeps counters consistent.
    #[test]
    fn ooo_structural_invariants(
        ops in prop::collection::vec(arb_op(), 4..200),
        threads in 1usize..4,
    ) {
        let mut engine =
            OooEngine::new(CoreConfig::baseline_ooo(), FetchPolicy::Icount, 3400.0);
        for t in 0..threads {
            let class = if t == 0 { ThreadClass::Primary } else { ThreadClass::Secondary };
            engine.add_thread(Box::new(LoopedTrace::new(ops.clone())), class);
        }
        let mut mem = MemSys::table1(LatencyModel::default());
        let mut rng = rng_from_seed(1);
        let horizon = 20_000u64;
        for now in 0..horizon {
            engine.step(now, &mut mem, &mut rng);
        }
        let s = engine.stats();
        prop_assert!(s.retired_total() > 0, "engine wedged");
        prop_assert!(s.retired_total() <= horizon * 4, "retired more than peak bandwidth");
        prop_assert!(s.utilization(4) <= 1.0 + 1e-9);
        prop_assert!(s.mispredicts <= s.branches);
    }

    /// SMT+ never starves the primary thread entirely.
    #[test]
    fn smt_plus_primary_progress(ops in prop::collection::vec(arb_op(), 8..120)) {
        let mut engine =
            OooEngine::new(CoreConfig::baseline_ooo(), FetchPolicy::PrimaryFirst, 3400.0);
        engine.set_partition(SmtPartition::paper());
        engine.add_thread(Box::new(LoopedTrace::new(ops.clone())), ThreadClass::Primary);
        engine.add_thread(Box::new(LoopedTrace::new(ops)), ThreadClass::Secondary);
        let mut mem = MemSys::table1(LatencyModel::default());
        let mut rng = rng_from_seed(2);
        for now in 0..20_000u64 {
            engine.step(now, &mut mem, &mut rng);
        }
        prop_assert!(engine.stats().retired_primary > 0);
        // With identical programs, the prioritized primary keeps pace with
        // (or beats) the capped co-runner; a tiny deficit can arise only
        // from end-of-horizon skew.
        prop_assert!(
            engine.stats().retired_primary as f64
                >= 0.8 * engine.stats().retired_secondary as f64,
            "primary {} far behind secondary {}",
            engine.stats().retired_primary,
            engine.stats().retired_secondary
        );
    }

    /// The in-order engine preserves the same invariants with any program
    /// and any context count.
    #[test]
    fn ino_structural_invariants(
        ops in prop::collection::vec(arb_op(), 4..120),
        contexts in 1usize..8,
    ) {
        let mut engine = InoEngine::new(contexts, 4, false, 3400.0, 64);
        for c in 0..contexts {
            engine.add_fixed_context(c, Box::new(LoopedTrace::new(ops.clone())));
        }
        let mut mem = MemSys::table1(LatencyModel::default());
        let mut rng = rng_from_seed(3);
        let horizon = 20_000u64;
        for now in 0..horizon {
            engine.step(now, &mut mem, None, None, &mut rng);
        }
        let s = engine.stats();
        prop_assert!(s.retired_total() > 0, "engine wedged");
        prop_assert!(s.retired_total() <= horizon * 4);
        // Per-context accounting sums to the aggregate.
        let per: u64 = engine.retired_by_ctx().iter().sum();
        prop_assert_eq!(per, s.retired_secondary);
    }

    /// Remote-load-free programs never report remote ops; programs with them
    /// do (once the engine has run long enough to reach one).
    #[test]
    fn remote_accounting(stall_us in 0.01f64..2.0) {
        // Fully serial loop: alu -> remote -> alu -> (wraps) alu ...
        let ops = vec![
            MicroOp::new(0, Op::IntAlu).with_srcs(2, NO_REG).with_dst(0),
            MicroOp::new(4, Op::RemoteLoad { latency_us: stall_us })
                .with_srcs(0, NO_REG)
                .with_dst(1),
            MicroOp::new(8, Op::IntAlu).with_srcs(1, NO_REG).with_dst(2),
        ];
        let mut engine =
            OooEngine::new(CoreConfig::baseline_ooo(), FetchPolicy::Icount, 3400.0);
        engine.add_thread(Box::new(LoopedTrace::new(ops)), ThreadClass::Primary);
        let mut mem = MemSys::table1(LatencyModel::default());
        let mut rng = rng_from_seed(4);
        for now in 0..60_000u64 {
            engine.step(now, &mut mem, &mut rng);
        }
        prop_assert!(engine.stats().remote_ops > 0);
        // Throughput is bounded by the serialized stall duty cycle.
        let cycles_per_iter = stall_us * 3400.0 + 2.0;
        let max_ops = 3.0 * 60_000.0 / cycles_per_iter;
        prop_assert!(
            (engine.stats().retired_total() as f64) < max_ops * 1.3 + 500.0,
            "retired {} exceeds stall-bound {}",
            engine.stats().retired_total(),
            max_ops
        );
    }
}
