//! The HSMT virtual-context pool shared across a dyad.
//!
//! Lender-cores "maintain a pointer to a FIFO run queue in dedicated memory,
//! which holds the state of all virtual contexts" (§III-A). When a physical
//! context stalls, its state is dumped to the tail of the run queue and the
//! head context is loaded. Master-cores borrow from the *head* of the same
//! queue, which is what prevents filler contexts from starving (§III-C).

use crate::op::InstructionStream;
use std::collections::VecDeque;

/// One latency-insensitive batch thread's architectural state.
pub struct VirtualContext {
    /// Stable identifier.
    pub id: usize,
    /// The thread's dynamic instruction stream.
    pub stream: Box<dyn InstructionStream>,
    /// Per-architectural-register readiness (completion cycle of the last
    /// writer); carried across swaps.
    pub reg_ready: [u64; 32],
}

impl std::fmt::Debug for VirtualContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualContext")
            .field("id", &self.id)
            .finish()
    }
}

impl VirtualContext {
    /// Wraps `stream` as virtual context `id`.
    #[must_use]
    pub fn new(id: usize, stream: Box<dyn InstructionStream>) -> Self {
        Self {
            id,
            stream,
            reg_ready: [0; 32],
        }
    }
}

/// FIFO run queue of ready virtual contexts plus a parking lot for contexts
/// blocked on µs-scale stalls.
#[derive(Debug, Default)]
pub struct ContextPool {
    ready: VecDeque<VirtualContext>,
    parked: Vec<(u64, VirtualContext)>, // (resume_at, ctx)
}

impl ContextPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ready context at the queue tail.
    pub fn add(&mut self, ctx: VirtualContext) {
        self.ready.push_back(ctx);
    }

    /// Moves parked contexts whose stall has resolved by `now` back to the
    /// ready queue (in resume order).
    pub fn poll(&mut self, now: u64) {
        let mut due: Vec<(u64, VirtualContext)> = Vec::new();
        let mut i = 0;
        while i < self.parked.len() {
            if self.parked[i].0 <= now {
                due.push(self.parked.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|(at, _)| *at);
        for (_, ctx) in due {
            self.ready.push_back(ctx);
        }
    }

    /// Earliest cycle `t >= from` at which [`ContextPool::poll`] could move
    /// a parked context to the ready queue (`Some(from)` if one is already
    /// due). Ready contexts carry no inherent event — whether they get a
    /// physical slot is the engines' decision, probed separately. `None`
    /// means nothing is parked.
    #[must_use]
    pub fn next_event_cycle(&self, from: u64) -> Option<u64> {
        self.parked.iter().map(|&(at, _)| at.max(from)).min()
    }

    /// Takes the head ready context, if any. Callers should [`Self::poll`]
    /// first.
    pub fn take(&mut self) -> Option<VirtualContext> {
        self.ready.pop_front()
    }

    /// Parks a context until its µs-scale stall resolves at `resume_at`.
    pub fn park(&mut self, ctx: VirtualContext, resume_at: u64) {
        self.parked.push((resume_at, ctx));
    }

    /// Returns a still-runnable context to the tail (quantum expiry or
    /// filler eviction).
    pub fn put_back(&mut self, ctx: VirtualContext) {
        self.ready.push_back(ctx);
    }

    /// Ready contexts waiting for a physical slot.
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Contexts blocked on stalls.
    #[must_use]
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Total contexts resident in the pool (excludes ones currently loaded
    /// into physical contexts).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ready.len() + self.parked.len()
    }

    /// True when no contexts are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{LoopedTrace, MicroOp, Op};

    fn ctx(id: usize) -> VirtualContext {
        VirtualContext::new(
            id,
            Box::new(LoopedTrace::new(vec![MicroOp::new(0, Op::IntAlu)])),
        )
    }

    #[test]
    fn fifo_order() {
        let mut p = ContextPool::new();
        p.add(ctx(1));
        p.add(ctx(2));
        p.add(ctx(3));
        assert_eq!(p.take().unwrap().id, 1);
        assert_eq!(p.take().unwrap().id, 2);
        p.put_back(ctx(4));
        assert_eq!(p.take().unwrap().id, 3);
        assert_eq!(p.take().unwrap().id, 4);
        assert!(p.take().is_none());
    }

    #[test]
    fn parked_contexts_resume_in_order() {
        let mut p = ContextPool::new();
        p.park(ctx(1), 100);
        p.park(ctx(2), 50);
        p.park(ctx(3), 200);
        p.poll(60);
        assert_eq!(p.ready_len(), 1);
        assert_eq!(p.take().unwrap().id, 2);
        p.poll(150);
        assert_eq!(p.take().unwrap().id, 1);
        assert_eq!(p.parked_len(), 1);
    }

    #[test]
    fn poll_respects_resume_ordering_within_batch() {
        let mut p = ContextPool::new();
        p.park(ctx(9), 30);
        p.park(ctx(7), 10);
        p.park(ctx(8), 20);
        p.poll(100);
        let order: Vec<usize> = std::iter::from_fn(|| p.take()).map(|c| c.id).collect();
        assert_eq!(order, vec![7, 8, 9]);
    }

    #[test]
    fn counts() {
        let mut p = ContextPool::new();
        assert!(p.is_empty());
        p.add(ctx(1));
        p.park(ctx(2), 10);
        assert_eq!(p.len(), 2);
        assert_eq!(p.ready_len(), 1);
        assert_eq!(p.parked_len(), 1);
    }
}
