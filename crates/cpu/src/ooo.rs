//! The 4-wide out-of-order engine.
//!
//! Models the Table I baseline: 4-wide fetch/issue/commit, 144-entry
//! ROB/PRF, 48/32-entry LQ/SQ, a 60-entry issue window, tournament branch
//! prediction with BTB, and per-line I-cache fetch. SMT variants multiplex
//! several threads with ICOUNT fetch \[117\]; the SMT+ variant prioritizes the
//! latency-critical thread for bandwidth resources and caps the co-runner at
//! 30% of storage resources (§V, designs 2–3).
//!
//! Scheduling model: per-thread program-order ROBs with register-dependency
//! tracking, out-of-order issue from a bounded window, structural occupancy
//! limits, and in-order per-thread commit. Wrong-path fetch is approximated
//! by halting fetch from a thread between a mispredicted branch's dispatch
//! and its resolution plus the redirect penalty — equivalent throughput-wise
//! to fetching and squashing the wrong path.

use crate::memsys::MemSys;
use crate::metrics::EngineStats;
use crate::op::{Fetched, InstructionStream, MicroOp, Op, NO_REG};
use duplexity_obs::{RemoteKind, ThreadTag, TraceEvent, Tracer};
use duplexity_stats::rng::SimRng;
use duplexity_uarch::branch::{BranchPredictor, Btb, PredictorKind};
use duplexity_uarch::cache::AccessKind;
use duplexity_uarch::config::CoreConfig;
use std::collections::VecDeque;

/// Fetch/thread-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPolicy {
    /// ICOUNT \[117\]: fetch from the thread with the fewest in-flight ops.
    Icount,
    /// Rotate across threads.
    RoundRobin,
    /// SMT+ (design 3): thread 0 gets every slot it can use; co-runners get
    /// leftovers only.
    PrimaryFirst,
}

/// SMT+ storage-resource partition: co-runner threads may hold at most
/// `secondary_share` of each storage structure (ROB, IQ, LQ, SQ) \[119\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmtPartition {
    /// Maximum fraction of each storage resource available to non-primary
    /// threads (the paper uses 0.3).
    pub secondary_share: f64,
}

impl SmtPartition {
    /// The paper's 30% cap.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            secondary_share: 0.3,
        }
    }
}

/// Whether a thread is the latency-critical microservice or a batch thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadClass {
    /// The latency-critical master-thread.
    Primary,
    /// A batch / filler thread.
    Secondary,
}

#[derive(Debug)]
struct Entry {
    op: Op,
    seq: u64,   // thread-local sequence number
    order: u64, // global fetch order (age priority)
    deps: [Option<u64>; 2],
    dst: bool,
    issued: bool,
    complete: u64, // valid when issued
    mispredicted: bool,
    end_of_request: Option<u64>,
}

struct ThreadCtx {
    stream: Box<dyn InstructionStream>,
    class: ThreadClass,
    rob: VecDeque<Entry>,
    base_seq: u64,
    next_seq: u64,
    scoreboard: [Option<u64>; 32],
    pending: Option<MicroOp>,
    fetch_blocked_until: u64,
    awaiting_branch: bool,
    idle_until: u64,
    done: bool,
    last_line: u64,
    lq_used: usize,
    sq_used: usize,
    unissued: usize,
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("class", &self.class)
            .field("rob_len", &self.rob.len())
            .field("idle_until", &self.idle_until)
            .field("done", &self.done)
            .finish()
    }
}

impl ThreadCtx {
    fn new(stream: Box<dyn InstructionStream>, class: ThreadClass, rob_capacity: usize) -> Self {
        Self {
            stream,
            class,
            rob: VecDeque::with_capacity(rob_capacity),
            base_seq: 0,
            next_seq: 0,
            scoreboard: [None; 32],
            pending: None,
            fetch_blocked_until: 0,
            awaiting_branch: false,
            idle_until: 0,
            done: false,
            last_line: u64::MAX,
            lq_used: 0,
            sq_used: 0,
            unissued: 0,
        }
    }

    fn dep_ready(&self, dep: Option<u64>, now: u64) -> bool {
        match dep {
            None => true,
            Some(seq) => {
                if seq < self.base_seq {
                    true // already retired
                } else {
                    let e = &self.rob[(seq - self.base_seq) as usize];
                    e.issued && e.complete <= now
                }
            }
        }
    }
}

/// A multi-threaded out-of-order core engine.
///
/// Step it one cycle at a time against a [`MemSys`]; all state (ROBs,
/// predictors, occupancy) persists across steps so morph controllers can
/// pause and resume it.
///
/// # Examples
///
/// ```
/// use duplexity_cpu::memsys::MemSys;
/// use duplexity_cpu::ooo::{FetchPolicy, OooEngine, ThreadClass};
/// use duplexity_cpu::op::{LoopedTrace, MicroOp, Op};
/// use duplexity_stats::rng::rng_from_seed;
/// use duplexity_uarch::config::{CoreConfig, LatencyModel};
///
/// let mut engine = OooEngine::new(CoreConfig::baseline_ooo(), FetchPolicy::Icount, 3400.0);
/// let ops: Vec<MicroOp> =
///     (0..16).map(|i| MicroOp::new(i * 4, Op::IntAlu).with_dst((i % 8) as u8)).collect();
/// engine.add_thread(Box::new(LoopedTrace::new(ops)), ThreadClass::Primary);
///
/// let mut mem = MemSys::table1(LatencyModel::default());
/// let mut rng = rng_from_seed(1);
/// for now in 0..1_000 {
///     engine.step(now, &mut mem, &mut rng);
/// }
/// assert!(engine.stats().ipc() > 1.0);
/// ```
#[derive(Debug)]
pub struct OooEngine {
    cfg: CoreConfig,
    policy: FetchPolicy,
    partition: Option<SmtPartition>,
    elfen: bool,
    runahead: bool,
    runahead_until: u64,
    runahead_replay: VecDeque<MicroOp>,
    runahead_poisoned: [bool; 32],
    threads: Vec<ThreadCtx>,
    predictor: Box<dyn BranchPredictor>,
    btb: Btb,
    rename_free: usize,
    rr_next: usize,
    next_order: u64,
    cycles_per_us: f64,
    mispredict_penalty: u64,
    l1_hit: u64,
    stats: EngineStats,
    tracer: Tracer,
    // Reusable per-cycle scratch (hot path: no per-step allocations).
    issue_scratch: Vec<(u64, bool, usize, usize)>,
    fetch_blocked_scratch: Vec<bool>,
}

impl OooEngine {
    /// Creates an engine with `cfg` sizing. Threads are added with
    /// [`OooEngine::add_thread`].
    ///
    /// `cycles_per_us` converts µs-scale stall durations to cycles (clock
    /// dependent: 3400 at 3.4GHz).
    #[must_use]
    pub fn new(cfg: CoreConfig, policy: FetchPolicy, cycles_per_us: f64) -> Self {
        Self {
            cfg,
            policy,
            partition: None,
            elfen: false,
            runahead: false,
            runahead_until: 0,
            runahead_replay: VecDeque::new(),
            runahead_poisoned: [false; 32],
            threads: Vec::new(),
            predictor: PredictorKind::Tournament16k.build(),
            btb: Btb::table1(),
            // The PRF holds one thread's architectural state; the rest renames.
            // Extra threads' architectural registers are provisioned
            // separately (§II-B experiment protocol), so the rename pool stays
            // fixed as thread count scales.
            rename_free: cfg.prf_entries.saturating_sub(crate::op::ARCH_REGS),
            rr_next: 0,
            next_order: 0,
            cycles_per_us,
            mispredict_penalty: 12,
            l1_hit: 3,
            stats: EngineStats::default(),
            tracer: Tracer::disabled(),
            issue_scratch: Vec::with_capacity(cfg.iq_entries),
            fetch_blocked_scratch: Vec::new(),
        }
    }

    /// Attaches a tracer for µs-stall and request lifecycle events.
    /// Tracing consumes no RNG draws; a disabled tracer costs one branch.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Enables the SMT+ storage partition.
    pub fn set_partition(&mut self, partition: SmtPartition) {
        self.partition = Some(partition);
    }

    /// Enables Elfen-style lane borrowing \[45\]: batch threads may fetch only
    /// while the latency-critical thread is napping (no request in flight),
    /// and voluntarily stop the moment it wakes.
    pub fn set_elfen(&mut self, elfen: bool) {
        self.elfen = elfen;
    }

    /// Enables runahead execution \[53\] (extension): while the single thread
    /// is blocked on a µs-scale remote access, the front-end keeps fetching
    /// *pseudo-retired* future instructions that warm the caches and
    /// predictors but retire nothing; on resume they replay for real. The
    /// paper's §II point — that this cannot recover µs-scale holes — is
    /// directly measurable.
    ///
    /// # Panics
    ///
    /// Panics if more than one thread has been added (runahead is a
    /// single-thread mechanism).
    pub fn set_runahead(&mut self, runahead: bool) {
        assert!(
            self.threads.len() <= 1,
            "runahead applies to single-thread cores"
        );
        self.runahead = runahead;
    }

    /// Overrides latency parameters that the engine charges internally.
    pub fn set_latencies(&mut self, mispredict: u64, l1_hit: u64) {
        self.mispredict_penalty = mispredict;
        self.l1_hit = l1_hit;
    }

    /// Adds a hardware thread running `stream`; returns its thread id.
    pub fn add_thread(&mut self, stream: Box<dyn InstructionStream>, class: ThreadClass) -> usize {
        self.threads
            .push(ThreadCtx::new(stream, class, self.cfg.rob_entries));
        self.threads.len() - 1
    }

    /// Number of hardware threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Mutable access to counters (the dyad controller drains latencies).
    pub fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// If the primary thread (0) is idle, returns the cycle its next request
    /// arrives.
    #[must_use]
    pub fn primary_idle_until(&self, now: u64) -> Option<u64> {
        let t = self.threads.first()?;
        (t.idle_until > now && t.rob.is_empty() && t.pending.is_none()).then_some(t.idle_until)
    }

    /// If the primary thread is blocked on an outstanding µs-scale remote
    /// access and has no other issuable work, returns the remote's completion
    /// cycle. This is the morph trigger for stall-induced holes.
    #[must_use]
    pub fn primary_stalled_on_remote(&self, now: u64) -> Option<u64> {
        let t = self.threads.first()?;
        let mut latest_remote: Option<u64> = None;
        for e in &t.rob {
            match (&e.op, e.issued) {
                (Op::RemoteLoad { .. }, true) if e.complete > now => {
                    latest_remote = Some(latest_remote.map_or(e.complete, |c| c.max(e.complete)));
                }
                _ => {
                    if e.issued && e.complete > now {
                        return None; // other work still executing
                    }
                    if !e.issued && t.dep_ready(e.deps[0], now) && t.dep_ready(e.deps[1], now) {
                        return None; // issuable work remains
                    }
                }
            }
        }
        latest_remote
    }

    /// Blocks fetch of the primary thread until `cycle` (morph controller:
    /// master-thread resume penalty, §III-B4).
    pub fn block_primary_fetch_until(&mut self, cycle: u64) {
        if let Some(t) = self.threads.first_mut() {
            t.fetch_blocked_until = t.fetch_blocked_until.max(cycle);
        }
    }

    /// True once every thread has permanently finished and drained.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.done && t.rob.is_empty() && t.pending.is_none())
    }

    /// Earliest cycle `t >= from` at which [`OooEngine::step`] could change
    /// architectural state: a commit, an issue, a fetch/dispatch (including
    /// any `stream.next` call, which may draw RNG), or runahead activity.
    ///
    /// `Some(from)` means "not quiescent — step every cycle". `Some(t)` with
    /// `t > from` guarantees that stepping cycles `from..t` would only bump
    /// the cycle/idle counters (no RNG draws, no retirement), so a caller
    /// may fold them arithmetically with [`OooEngine::skip_quiescent`] and
    /// resume stepping at `t`. `None` means no future step can ever act
    /// (e.g. every thread is done and drained).
    ///
    /// The checks mirror [`OooEngine::step`]'s own comparisons exactly:
    /// commit (`front.complete <= now`), in-window wake-up (`dep_ready`),
    /// thread fetch eligibility, and the structural dispatch gates.
    #[must_use]
    pub fn next_event_cycle(&self, from: u64) -> Option<u64> {
        if self.threads.is_empty() {
            return None;
        }
        // Runahead pseudo-execution draws RNG from the stream: never skip
        // while it is active, nor when this cycle's entry check would fire.
        // (`primary_stalled_on_remote` is frozen over a quiescent span and
        // its `resume > now + 200` entry gate only weakens as `now` grows,
        // so "would not enter at `from`" extends to the whole span.)
        if self.runahead {
            if self.runahead_until != 0 {
                return Some(from);
            }
            if let Some(resume) = self.primary_stalled_on_remote(from) {
                if resume > from + 200 {
                    return Some(from);
                }
            }
        }

        let mut best: Option<u64> = None;
        let bump = |best: &mut Option<u64>, t: u64| {
            *best = Some(best.map_or(t, |b| b.min(t)));
        };

        let window = self.cfg.iq_entries;
        for t in &self.threads {
            // Commit: the in-order front retires the moment it completes.
            if let Some(front) = t.rob.front() {
                if front.issued && front.complete <= from {
                    return Some(from);
                }
            }
            let mut scanned = 0usize;
            for e in &t.rob {
                if e.issued {
                    // A future completion wakes dependants and unblocks the
                    // commit front.
                    if e.complete > from {
                        bump(&mut best, e.complete);
                    }
                    continue;
                }
                // Only the first `window` un-issued entries are scanned by
                // `issue`; deeper entries cannot act until the window moves
                // (a commit/issue event).
                if scanned < window {
                    scanned += 1;
                    if t.dep_ready(e.deps[0], from) && t.dep_ready(e.deps[1], from) {
                        return Some(from); // would issue this cycle
                    }
                }
            }
        }

        // Fetch: mirror `select_thread` eligibility, then the dispatch gates.
        let primary_napping = self
            .threads
            .first()
            .is_some_and(|t| t.idle_until > from && t.rob.is_empty() && t.pending.is_none());
        for (tid, t) in self.threads.iter().enumerate() {
            if t.done || t.awaiting_branch {
                continue; // freed only by an issue event, bumped above
            }
            if self.elfen && t.class == ThreadClass::Secondary && !primary_napping {
                continue; // eligibility can only flip at a primary event
            }
            let resume = t.fetch_blocked_until.max(t.idle_until);
            if resume > from {
                bump(&mut best, resume);
                continue;
            }
            if self.fetch_would_act(tid) {
                return Some(from);
            }
            // Structurally gated: frees only at a commit/issue event, and
            // those completions are already bumped above.
        }
        best
    }

    /// Whether an eligible thread's fetch/dispatch would do anything this
    /// cycle: either its pending buffer needs a refill (a `stream.next`
    /// call — possibly an RNG draw — or a runahead replay pop), or the
    /// buffered op passes every structural dispatch gate.
    fn fetch_would_act(&self, tid: usize) -> bool {
        let rob_cap = self.cfg.rob_entries;
        let iq_cap = self.cfg.iq_entries;
        let n_threads = self.threads.len();
        let rob_total: usize = self.threads.iter().map(|t| t.rob.len()).sum();
        let iq_total: usize = self.threads.iter().map(|t| t.unissued).sum();
        if rob_total >= rob_cap || iq_total >= iq_cap {
            return false;
        }
        let (rob_lim, iq_lim, lq_lim, sq_lim) = if self.partition.is_some() || n_threads <= 1 {
            (rob_cap, iq_cap, self.cfg.lq_entries, self.cfg.sq_entries)
        } else {
            (
                rob_cap.div_ceil(n_threads).max(4),
                iq_cap.div_ceil(n_threads).max(2),
                self.cfg.lq_entries.div_ceil(n_threads).max(1),
                self.cfg.sq_entries.div_ceil(n_threads).max(1),
            )
        };
        let t = &self.threads[tid];
        if t.rob.len() >= rob_lim || t.unissued >= iq_lim {
            return false;
        }
        let Some(op) = t.pending else {
            return true; // refill: replay pop or stream.next
        };
        let (lq_total, sq_total): (usize, usize) = self
            .threads
            .iter()
            .fold((0, 0), |(l, s), t| (l + t.lq_used, s + t.sq_used));
        if op.op.is_load() && (lq_total >= self.cfg.lq_entries.max(1) || t.lq_used >= lq_lim) {
            return false;
        }
        if op.op.is_store() && (sq_total >= self.cfg.sq_entries.max(1) || t.sq_used >= sq_lim) {
            return false;
        }
        if op.dst.is_some() && self.rename_free == 0 {
            return false;
        }
        if let Some(p) = self.partition {
            if t.class == ThreadClass::Secondary {
                let cap = |total: usize| ((total as f64) * p.secondary_share) as usize;
                let sec = |f: fn(&ThreadCtx) -> usize| -> usize {
                    self.threads
                        .iter()
                        .filter(|t| t.class == ThreadClass::Secondary)
                        .map(f)
                        .sum()
                };
                if sec(|t| t.rob.len()) >= cap(rob_cap).max(1)
                    || (op.op.is_load() && sec(|t| t.lq_used) >= cap(self.cfg.lq_entries).max(1))
                    || (op.op.is_store() && sec(|t| t.sq_used) >= cap(self.cfg.sq_entries).max(1))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Folds `count` provably quiescent cycles starting at `from` into the
    /// counters, exactly as if [`OooEngine::step`] had been called for each
    /// of `from..from + count`: total cycles, the all-threads-idle counter
    /// (clamped at the earliest `idle_until`), and the round-robin pointer.
    /// Callers must only pass spans vouched for by
    /// [`OooEngine::next_event_cycle`].
    pub fn skip_quiescent(&mut self, from: u64, count: u64) {
        self.stats.cycles += count;
        let n = self.threads.len() as u64;
        if n == 0 {
            return;
        }
        // `step` counts an idle cycle when every thread is drained and
        // napping; over a quiescent span the drained shape is frozen and
        // only the `idle_until > now` comparison varies with `now`.
        if self
            .threads
            .iter()
            .all(|t| !t.done && t.rob.is_empty() && t.pending.is_none())
        {
            let min_idle = self.threads.iter().map(|t| t.idle_until).min().unwrap_or(0);
            self.stats.idle_cycles += min_idle.saturating_sub(from).min(count);
        }
        self.rr_next = ((self.rr_next as u64 + count % n) % n) as usize;
    }

    /// Advances the engine by one cycle against `mem`.
    pub fn step(&mut self, now: u64, mem: &mut MemSys, rng: &mut SimRng) {
        self.stats.cycles += 1;
        self.commit(now);
        self.issue(now, mem, rng);
        self.fetch_dispatch(now, mem, rng);
        if self.runahead {
            self.runahead_step(now, mem, rng);
        }
        if self
            .threads
            .iter()
            .all(|t| !t.done && t.rob.is_empty() && t.pending.is_none() && t.idle_until > now)
            && !self.threads.is_empty()
        {
            self.stats.idle_cycles += 1;
        }
    }

    fn commit(&mut self, now: u64) {
        let mut slots = self.cfg.width;
        let n = self.threads.len();
        for i in 0..n {
            let tid = (self.rr_next + i) % n;
            let t = &mut self.threads[tid];
            while slots > 0 {
                let Some(front) = t.rob.front() else { break };
                if !(front.issued && front.complete <= now) {
                    break;
                }
                let e = t.rob.pop_front().expect("front exists");
                t.base_seq += 1;
                slots -= 1;
                if e.dst {
                    self.rename_free += 1;
                }
                if e.op.is_load() {
                    t.lq_used -= 1;
                }
                if e.op.is_store() {
                    t.sq_used -= 1;
                }
                match t.class {
                    ThreadClass::Primary => self.stats.retired_primary += 1,
                    ThreadClass::Secondary => self.stats.retired_secondary += 1,
                }
                if let Some(arrival) = e.end_of_request {
                    let latency = now.saturating_sub(arrival) + 1;
                    self.stats.request_latencies_cycles.push(latency);
                    self.tracer
                        .emit(|| TraceEvent::RequestArrive { at: arrival });
                    self.tracer.emit(|| TraceEvent::RequestComplete {
                        at: arrival + latency,
                        latency,
                    });
                }
                // Clear stale scoreboard pointers to retired producers.
                for sb in t.scoreboard.iter_mut() {
                    if *sb == Some(e.seq) {
                        *sb = None;
                    }
                }
            }
        }
    }

    fn issue(&mut self, now: u64, mem: &mut MemSys, rng: &mut SimRng) {
        // Gather ready, un-issued entries from each thread's window into the
        // engine's reusable scratch buffer: (order, is_secondary, tid, idx).
        let mut cands = std::mem::take(&mut self.issue_scratch);
        cands.clear();
        let window = self.cfg.iq_entries;
        for (tid, t) in self.threads.iter().enumerate() {
            let mut scanned = 0;
            for (idx, e) in t.rob.iter().enumerate() {
                if e.issued {
                    continue;
                }
                scanned += 1;
                if scanned > window {
                    break;
                }
                if t.dep_ready(e.deps[0], now) && t.dep_ready(e.deps[1], now) {
                    cands.push((e.order, t.class == ThreadClass::Secondary, tid, idx));
                }
            }
        }
        // Age order; under SMT+ the primary thread's ops go first.
        if self.partition.is_some() {
            cands.sort_unstable_by_key(|&(order, sec, _, _)| (sec, order));
        } else {
            cands.sort_unstable_by_key(|&(order, _, _, _)| order);
        }

        let mut slots = self.cfg.width;
        let mut mem_slots = 2usize;
        for &(_, _, tid, idx) in &cands {
            if slots == 0 {
                break;
            }
            let is_mem = {
                let e = &self.threads[tid].rob[idx];
                matches!(e.op, Op::Load { .. } | Op::Store { .. })
            };
            if is_mem && mem_slots == 0 {
                continue;
            }
            let thread_class = self.threads[tid].class;
            let (complete, mispredicted) = {
                let e = &self.threads[tid].rob[idx];
                let complete = match e.op {
                    Op::Load { addr } => {
                        let lat = mem.data_access(addr, AccessKind::Read).max(1);
                        if thread_class == ThreadClass::Primary {
                            self.stats.primary_loads += 1;
                            if lat > self.l1_hit {
                                self.stats.primary_load_l1_misses += 1;
                            }
                        }
                        now + lat
                    }
                    Op::Store { addr } => {
                        mem.data_access(addr, AccessKind::Write);
                        now + 1
                    }
                    Op::RemoteLoad { latency_us } => {
                        // The fault layer may retry/duplicate/degrade the
                        // remote access (identity without a plan).
                        let eff = mem.remote_stall_us(now, latency_us, rng);
                        let done = now + (eff * self.cycles_per_us).round().max(1.0) as u64;
                        let tag = if thread_class == ThreadClass::Primary {
                            ThreadTag::Master
                        } else {
                            ThreadTag::Filler
                        };
                        self.tracer.emit(|| TraceEvent::StallBegin {
                            at: now,
                            kind: RemoteKind::RemoteMemory,
                            tag,
                        });
                        self.tracer.emit(|| TraceEvent::StallEnd {
                            at: done,
                            kind: RemoteKind::RemoteMemory,
                            tag,
                        });
                        done
                    }
                    ref op => now + op.exec_latency(),
                };
                (complete, e.mispredicted)
            };
            let t = &mut self.threads[tid];
            let e = &mut t.rob[idx];
            if matches!(e.op, Op::RemoteLoad { .. }) {
                self.stats.remote_ops += 1;
            }
            e.issued = true;
            e.complete = complete;
            t.unissued -= 1;
            if mispredicted {
                t.fetch_blocked_until = t
                    .fetch_blocked_until
                    .max(complete + self.mispredict_penalty);
                t.awaiting_branch = false;
            }
            slots -= 1;
            if is_mem {
                mem_slots -= 1;
            }
        }
        self.issue_scratch = cands;
    }

    fn fetch_dispatch(&mut self, now: u64, mem: &mut MemSys, rng: &mut SimRng) {
        let rob_cap = self.cfg.rob_entries;
        let iq_cap = self.cfg.iq_entries;
        let n_threads = self.threads.len();
        // Plain SMT statically partitions storage resources across threads
        // (gem5's default SMT policy); this keeps one stalled thread from
        // clogging the shared window. SMT+ instead enforces the 30% co-runner
        // share below, and single-threaded cores get everything.
        let (rob_lim, iq_lim, lq_lim, sq_lim) = if self.partition.is_some() || n_threads <= 1 {
            (rob_cap, iq_cap, self.cfg.lq_entries, self.cfg.sq_entries)
        } else {
            (
                rob_cap.div_ceil(n_threads).max(4),
                iq_cap.div_ceil(n_threads).max(2),
                self.cfg.lq_entries.div_ceil(n_threads).max(1),
                self.cfg.sq_entries.div_ceil(n_threads).max(1),
            )
        };
        let mut slots = self.cfg.width;
        let mut blocked_this_cycle = std::mem::take(&mut self.fetch_blocked_scratch);
        blocked_this_cycle.clear();
        blocked_this_cycle.resize(self.threads.len(), false);

        while slots > 0 {
            let rob_total: usize = self.threads.iter().map(|t| t.rob.len()).sum();
            let iq_total: usize = self.threads.iter().map(|t| t.unissued).sum();
            if rob_total >= rob_cap || iq_total >= iq_cap {
                break;
            }
            let Some(tid) = self.select_thread(now, &blocked_this_cycle) else {
                break;
            };
            if self.threads[tid].rob.len() >= rob_lim || self.threads[tid].unissued >= iq_lim {
                blocked_this_cycle[tid] = true;
                continue;
            }

            // Fill the one-op pending buffer (replaying any instructions the
            // runahead front-end already consumed from the stream).
            if self.threads[tid].pending.is_none() {
                if let Some(op) = self.runahead_replay.pop_front() {
                    self.threads[tid].pending = Some(op);
                }
            }
            if self.threads[tid].pending.is_none() {
                match self.threads[tid].stream.next(now, rng) {
                    Fetched::Op(op) => self.threads[tid].pending = Some(op),
                    Fetched::IdleUntil(c) => {
                        self.threads[tid].idle_until = c;
                        blocked_this_cycle[tid] = true;
                        continue;
                    }
                    Fetched::Done => {
                        self.threads[tid].done = true;
                        continue;
                    }
                }
            }

            let op = self.threads[tid].pending.expect("just filled");
            // Structural checks that depend on the op kind.
            let (lq_total, sq_total): (usize, usize) = self
                .threads
                .iter()
                .fold((0, 0), |(l, s), t| (l + t.lq_used, s + t.sq_used));
            if op.op.is_load()
                && (lq_total >= self.cfg.lq_entries.max(1) || self.threads[tid].lq_used >= lq_lim)
            {
                blocked_this_cycle[tid] = true;
                continue;
            }
            if op.op.is_store()
                && (sq_total >= self.cfg.sq_entries.max(1) || self.threads[tid].sq_used >= sq_lim)
            {
                blocked_this_cycle[tid] = true;
                continue;
            }
            if op.dst.is_some() && self.rename_free == 0 {
                blocked_this_cycle[tid] = true;
                continue;
            }
            if let Some(p) = self.partition {
                if self.threads[tid].class == ThreadClass::Secondary {
                    let cap = |total: usize| ((total as f64) * p.secondary_share) as usize;
                    let sec_rob: usize = self
                        .threads
                        .iter()
                        .filter(|t| t.class == ThreadClass::Secondary)
                        .map(|t| t.rob.len())
                        .sum();
                    let sec_lq: usize = self
                        .threads
                        .iter()
                        .filter(|t| t.class == ThreadClass::Secondary)
                        .map(|t| t.lq_used)
                        .sum();
                    let sec_sq: usize = self
                        .threads
                        .iter()
                        .filter(|t| t.class == ThreadClass::Secondary)
                        .map(|t| t.sq_used)
                        .sum();
                    if sec_rob >= cap(rob_cap).max(1)
                        || (op.op.is_load() && sec_lq >= cap(self.cfg.lq_entries).max(1))
                        || (op.op.is_store() && sec_sq >= cap(self.cfg.sq_entries).max(1))
                    {
                        blocked_this_cycle[tid] = true;
                        continue;
                    }
                }
            }

            // Dispatch.
            self.threads[tid].pending = None;
            self.dispatch_op(tid, op, now, mem);
            slots -= 1;
        }
        self.rr_next = (self.rr_next + 1) % self.threads.len().max(1);
        self.fetch_blocked_scratch = blocked_this_cycle;
    }

    /// One cycle of runahead: if the (single) thread is blocked on a remote
    /// access, pseudo-execute future instructions for their prefetch and
    /// predictor-training side effects only.
    fn runahead_step(&mut self, now: u64, mem: &mut MemSys, rng: &mut SimRng) {
        const MAX_RUNAHEAD_OPS: usize = 16_384;
        if self.runahead_until == 0 {
            let Some(resume) = self.primary_stalled_on_remote(now) else {
                return;
            };
            if resume <= now + 200 {
                return; // not worth entering for sub-100ns stalls
            }
            self.runahead_until = resume;
            self.runahead_poisoned = [false; 32];
            // Poison the destinations of the outstanding remote loads: real
            // runahead cannot prefetch through the missing data.
            if let Some(t) = self.threads.first() {
                for e in &t.rob {
                    if matches!(e.op, Op::RemoteLoad { .. }) && e.issued && e.complete > now {
                        // The dst registers are tracked via the scoreboard;
                        // poison every register whose last writer is a
                        // still-flying entry.
                        for (reg, writer) in t.scoreboard.iter().enumerate() {
                            if *writer == Some(e.seq) {
                                self.runahead_poisoned[reg] = true;
                            }
                        }
                    }
                }
            }
        }
        if now >= self.runahead_until {
            self.runahead_until = 0;
            return;
        }
        if self.runahead_replay.len() >= MAX_RUNAHEAD_OPS {
            return; // runahead window exhausted
        }
        // Pseudo-execute up to `width` future ops; at most one prefetch per
        // cycle (miss-bandwidth limited).
        let mut prefetched = false;
        for _ in 0..self.cfg.width {
            let Some(t) = self.threads.first_mut() else {
                return;
            };
            // Never speculate into a request that has not been dispatched
            // yet: in an open system it has not even arrived (§II — runahead
            // cannot fill idle periods, only the tail of the current one).
            if t.stream.at_request_boundary() {
                self.runahead_until = 0;
                return;
            }
            let op = match t.stream.next(now, rng) {
                Fetched::Op(op) => op,
                Fetched::IdleUntil(_) | Fetched::Done => return, // cannot run ahead into idleness
            };
            self.runahead_replay.push_back(op);
            if op.end_of_request.is_some() {
                self.runahead_until = 0;
                return;
            }
            // Propagate poison through register dataflow.
            let poisoned_src = op
                .srcs
                .iter()
                .any(|&r| r != NO_REG && self.runahead_poisoned[r as usize]);
            if let Some(dst) = op.dst {
                self.runahead_poisoned[dst as usize] =
                    poisoned_src || matches!(op.op, Op::RemoteLoad { .. });
            }
            match op.op {
                Op::Load { addr } if !poisoned_src && !prefetched => {
                    mem.data_access(addr, AccessKind::Read);
                    prefetched = true;
                }
                Op::Branch { taken, .. } => {
                    // Train the direction predictor on the real outcome.
                    self.predictor.update(op.pc, taken);
                }
                _ => {}
            }
            // Touch the instruction line.
            mem.inst_fetch(op.pc);
        }
    }

    fn select_thread(&self, now: u64, blocked: &[bool]) -> Option<usize> {
        // Elfen lane borrowing: batch threads are eligible only while the
        // primary thread naps (idle with an empty window).
        let primary_napping = self
            .threads
            .first()
            .is_some_and(|t| t.idle_until > now && t.rob.is_empty() && t.pending.is_none());
        let eligible = |tid: usize| {
            let t = &self.threads[tid];
            !blocked[tid]
                && !t.done
                && !t.awaiting_branch
                && t.fetch_blocked_until <= now
                && t.idle_until <= now
                && (!self.elfen || t.class == ThreadClass::Primary || primary_napping)
        };
        match self.policy {
            FetchPolicy::Icount => (0..self.threads.len())
                .filter(|&tid| eligible(tid))
                .min_by_key(|&tid| self.threads[tid].rob.len()),
            FetchPolicy::RoundRobin => (0..self.threads.len())
                .map(|i| (self.rr_next + i) % self.threads.len())
                .find(|&tid| eligible(tid)),
            FetchPolicy::PrimaryFirst => (0..self.threads.len()).find(|&tid| eligible(tid)),
        }
    }

    fn dispatch_op(&mut self, tid: usize, op: MicroOp, now: u64, mem: &mut MemSys) {
        // Per-line instruction fetch.
        let line = op.pc >> 6;
        if line != self.threads[tid].last_line {
            let lat = mem.inst_fetch(op.pc);
            self.threads[tid].last_line = line;
            if lat > self.l1_hit {
                let t = &mut self.threads[tid];
                t.fetch_blocked_until = t.fetch_blocked_until.max(now + lat);
            }
        }

        // Branch prediction.
        let mut mispredicted = false;
        if let Op::Branch { taken, target } = op.op {
            self.stats.branches += 1;
            let predicted = self.predictor.predict(op.pc);
            self.predictor.update(op.pc, taken);
            if taken {
                if self.btb.lookup(op.pc) != Some(target) {
                    // Target unknown: one-cycle fetch bubble.
                    let t = &mut self.threads[tid];
                    t.fetch_blocked_until = t.fetch_blocked_until.max(now + 1);
                }
                self.btb.update(op.pc, target);
            }
            if predicted != taken {
                self.stats.mispredicts += 1;
                mispredicted = true;
                self.threads[tid].awaiting_branch = true;
            }
        }

        let t = &mut self.threads[tid];
        let seq = t.next_seq;
        t.next_seq += 1;
        let deps = [
            (op.srcs[0] != NO_REG)
                .then(|| t.scoreboard[op.srcs[0] as usize])
                .flatten(),
            (op.srcs[1] != NO_REG)
                .then(|| t.scoreboard[op.srcs[1] as usize])
                .flatten(),
        ];
        if let Some(dst) = op.dst {
            t.scoreboard[dst as usize] = Some(seq);
            self.rename_free -= 1;
        }
        if op.op.is_load() {
            t.lq_used += 1;
        }
        if op.op.is_store() {
            t.sq_used += 1;
        }
        t.unissued += 1;
        t.rob.push_back(Entry {
            op: op.op,
            seq,
            order: self.next_order,
            deps,
            dst: op.dst.is_some(),
            issued: false,
            complete: 0,
            mispredicted,
            end_of_request: op.end_of_request,
        });
        self.next_order += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{LoopedTrace, MicroOp, ARCH_REGS};
    use duplexity_stats::rng::rng_from_seed;
    use duplexity_uarch::config::LatencyModel;

    fn engine(policy: FetchPolicy) -> OooEngine {
        OooEngine::new(CoreConfig::baseline_ooo(), policy, 3400.0)
    }

    fn mem() -> MemSys {
        MemSys::table1(LatencyModel::default())
    }

    fn run(e: &mut OooEngine, m: &mut MemSys, cycles: u64) {
        let mut rng = rng_from_seed(1);
        for now in 0..cycles {
            e.step(now, m, &mut rng);
        }
    }

    /// Independent ALU ops: should retire ~width per cycle.
    #[test]
    fn independent_alu_saturates_width() {
        let mut e = engine(FetchPolicy::Icount);
        let ops: Vec<MicroOp> = (0..64)
            .map(|i| MicroOp::new(i * 4, Op::IntAlu).with_dst((i % ARCH_REGS as u64) as u8))
            .collect();
        e.add_thread(Box::new(LoopedTrace::new(ops)), ThreadClass::Primary);
        let mut m = mem();
        run(&mut e, &mut m, 10_000);
        let util = e.stats().utilization(4);
        assert!(util > 0.9, "utilization {util}");
    }

    /// A serial dependency chain issues one op per cycle at best.
    #[test]
    fn dependency_chain_limits_ipc() {
        let mut e = engine(FetchPolicy::Icount);
        let ops: Vec<MicroOp> = (0..64)
            .map(|i| {
                MicroOp::new(i * 4, Op::IntAlu)
                    .with_srcs(0, NO_REG)
                    .with_dst(0)
            })
            .collect();
        e.add_thread(Box::new(LoopedTrace::new(ops)), ThreadClass::Primary);
        let mut m = mem();
        run(&mut e, &mut m, 10_000);
        let ipc = e.stats().ipc();
        assert!(ipc <= 1.05, "ipc {ipc}");
        assert!(ipc > 0.8, "ipc {ipc}");
    }

    /// µs-scale remote loads crater single-thread utilization (the killer
    /// microsecond effect, Fig. 1(a) at the core level).
    #[test]
    fn remote_loads_crater_utilization() {
        let mut e = engine(FetchPolicy::Icount);
        let mut ops: Vec<MicroOp> = (0..100)
            .map(|i| MicroOp::new(i * 4, Op::IntAlu).with_dst((i % 8) as u8))
            .collect();
        // ~1µs stall every ~100 ops: compute ~25 cycles vs stall 3400 cycles.
        ops.push(MicroOp::new(400, Op::RemoteLoad { latency_us: 1.0 }).with_dst(9));
        ops.push(
            MicroOp::new(404, Op::IntAlu)
                .with_srcs(9, NO_REG)
                .with_dst(10),
        );
        e.add_thread(Box::new(LoopedTrace::new(ops)), ThreadClass::Primary);
        let mut m = mem();
        run(&mut e, &mut m, 100_000);
        let util = e.stats().utilization(4);
        assert!(util < 0.05, "utilization {util}");
        assert!(e.stats().remote_ops > 10);
    }

    /// Two SMT threads on independent work outperform one on throughput.
    #[test]
    fn smt_increases_throughput_under_stalls() {
        let make_ops = |base: u64| -> Vec<MicroOp> {
            let mut v: Vec<MicroOp> = (0..50)
                .map(|i| {
                    MicroOp::new(base + i * 4, Op::IntAlu)
                        .with_srcs(0, NO_REG)
                        .with_dst(0)
                })
                .collect();
            // Dependent on the chain so it serializes regardless of window
            // partitioning.
            v.push(
                MicroOp::new(base + 512, Op::RemoteLoad { latency_us: 0.05 })
                    .with_srcs(0, NO_REG)
                    .with_dst(0),
            );
            v
        };
        let mut one = engine(FetchPolicy::Icount);
        one.add_thread(
            Box::new(LoopedTrace::new(make_ops(0))),
            ThreadClass::Primary,
        );
        let mut m1 = mem();
        run(&mut one, &mut m1, 50_000);

        let mut two = engine(FetchPolicy::Icount);
        two.add_thread(
            Box::new(LoopedTrace::new(make_ops(0))),
            ThreadClass::Primary,
        );
        two.add_thread(
            Box::new(LoopedTrace::new(make_ops(1 << 30))),
            ThreadClass::Secondary,
        );
        let mut m2 = mem();
        run(&mut two, &mut m2, 50_000);

        assert!(
            two.stats().retired_total() as f64 > 1.5 * one.stats().retired_total() as f64,
            "1T {} vs 2T {}",
            one.stats().retired_total(),
            two.stats().retired_total()
        );
    }

    /// SMT+ protects primary-thread IPC better than plain ICOUNT SMT.
    #[test]
    fn smt_plus_protects_primary() {
        let primary_ops: Vec<MicroOp> = (0..64)
            .map(|i| MicroOp::new(i * 4, Op::IntAlu).with_dst((i % 8) as u8))
            .collect();
        // A memory-hog co-runner.
        let hog_ops: Vec<MicroOp> = (0..256)
            .map(|i| {
                MicroOp::new(
                    (1 << 30) + i * 4,
                    Op::Load {
                        addr: (1 << 31) + i * 4096,
                    },
                )
            })
            .collect();

        let mut smt = engine(FetchPolicy::Icount);
        smt.add_thread(
            Box::new(LoopedTrace::new(primary_ops.clone())),
            ThreadClass::Primary,
        );
        smt.add_thread(
            Box::new(LoopedTrace::new(hog_ops.clone())),
            ThreadClass::Secondary,
        );
        let mut m1 = mem();
        run(&mut smt, &mut m1, 30_000);

        let mut plus = engine(FetchPolicy::PrimaryFirst);
        plus.set_partition(SmtPartition::paper());
        plus.add_thread(
            Box::new(LoopedTrace::new(primary_ops)),
            ThreadClass::Primary,
        );
        plus.add_thread(Box::new(LoopedTrace::new(hog_ops)), ThreadClass::Secondary);
        let mut m2 = mem();
        run(&mut plus, &mut m2, 30_000);

        assert!(
            plus.stats().primary_ipc() > smt.stats().primary_ipc(),
            "SMT+ {} vs SMT {}",
            plus.stats().primary_ipc(),
            smt.stats().primary_ipc()
        );
    }

    /// Branch mispredictions cost cycles.
    #[test]
    fn mispredictions_reduce_ipc() {
        // Random branch outcomes defeat the predictor.
        #[derive(Debug)]
        struct RandomBranches;
        impl InstructionStream for RandomBranches {
            fn next(&mut self, _now: u64, rng: &mut SimRng) -> Fetched {
                use rand::RngExt;
                let taken = rng.random::<bool>();
                Fetched::Op(MicroOp::new(
                    u64::from(rng.random::<u16>()) * 4,
                    Op::Branch {
                        taken,
                        target: 0x100,
                    },
                ))
            }
        }
        let mut branchy = engine(FetchPolicy::Icount);
        branchy.add_thread(Box::new(RandomBranches), ThreadClass::Primary);
        let mut m1 = mem();
        run(&mut branchy, &mut m1, 20_000);
        assert!(branchy.stats().mispredict_rate() > 0.3);
        assert!(branchy.stats().ipc() < 1.0, "ipc {}", branchy.stats().ipc());
    }

    /// Idle streams morph-trigger cleanly and account idle cycles.
    #[test]
    fn idle_reporting() {
        #[derive(Debug)]
        struct IdleForever;
        impl InstructionStream for IdleForever {
            fn next(&mut self, now: u64, _rng: &mut SimRng) -> Fetched {
                Fetched::IdleUntil(now + 1_000_000)
            }
        }
        let mut e = engine(FetchPolicy::Icount);
        e.add_thread(Box::new(IdleForever), ThreadClass::Primary);
        let mut m = mem();
        run(&mut e, &mut m, 1000);
        assert!(e.primary_idle_until(999).is_some());
        assert!(e.stats().idle_cycles > 900);
    }

    /// `primary_stalled_on_remote` fires exactly when the window has drained.
    #[test]
    fn stall_detection() {
        let ops = vec![
            MicroOp::new(0, Op::IntAlu).with_dst(0),
            MicroOp::new(4, Op::RemoteLoad { latency_us: 10.0 })
                .with_srcs(0, NO_REG)
                .with_dst(1),
            MicroOp::new(8, Op::IntAlu).with_srcs(1, NO_REG).with_dst(2),
        ];
        let mut e = engine(FetchPolicy::Icount);
        e.add_thread(
            Box::new(crate::op::FiniteTrace::new(ops)),
            ThreadClass::Primary,
        );
        let mut m = mem();
        let mut rng = rng_from_seed(3);
        let mut detected_at = None;
        for now in 0..60_000u64 {
            e.step(now, &mut m, &mut rng);
            if detected_at.is_none() {
                if let Some(resume) = e.primary_stalled_on_remote(now) {
                    detected_at = Some((now, resume));
                }
            }
        }
        let (when, resume) = detected_at.expect("stall must be detected");
        // Cold-start I-cache/TLB misses delay the first fetch by ~220 cycles.
        assert!(when < 300, "detected at {when}");
        assert!(resume >= 34_000, "resume {resume}");
        assert!(e.all_done());
    }

    /// Request latency is recorded at retirement of the marked op.
    #[test]
    fn request_latency_recorded() {
        let mut ops: Vec<MicroOp> = (0..10).map(|i| MicroOp::new(i * 4, Op::IntAlu)).collect();
        ops.last_mut().expect("non-empty").end_of_request = Some(0);
        let mut e = engine(FetchPolicy::Icount);
        e.add_thread(
            Box::new(crate::op::FiniteTrace::new(ops)),
            ThreadClass::Primary,
        );
        let mut m = mem();
        run(&mut e, &mut m, 1000);
        assert_eq!(e.stats().request_latencies_cycles.len(), 1);
        assert!(e.stats().request_latencies_cycles[0] >= 3);
    }
}
