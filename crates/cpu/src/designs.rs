//! The seven evaluated server designs (§V "Design Configurations").
//!
//! | # | Design | Mechanism |
//! |---|--------|-----------|
//! | 1 | [`Design::Baseline`] | 4-wide OoO, microservice only |
//! | 2 | [`Design::Smt`] | + one SMT batch thread, ICOUNT |
//! | 3 | [`Design::SmtPlus`] | SMT with priority + 30% storage cap |
//! | 4 | [`Design::MorphCore`] | morphs to 8-thread InO, dedicated fillers |
//! | 5 | [`Design::MorphCorePlus`] | MorphCore + HSMT pool + lender-core |
//! | 6 | [`Design::DuplexityReplication`] | dyad, all state replicated |
//! | 7 | [`Design::Duplexity`] | dyad, L0-filtered lender-cache sharing |
//!
//! [`run_design`] executes one design against a scenario and returns the
//! uniform [`DesignMetrics`] consumed by the experiment drivers.

use crate::dyad::{DyadConfig, DyadSim};
use crate::memsys::MemSys;
use crate::ooo::{FetchPolicy, OooEngine, SmtPartition, ThreadClass};
use crate::op::{InstructionStream, RequestKernel};
use crate::request::RequestStream;
use duplexity_obs::Tracer;
use duplexity_stats::rng::rng_from_seed;
use duplexity_uarch::config::MachineConfig;
use serde::{Deserialize, Serialize};

/// One of the seven evaluated server designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// 4-wide OoO running only the latency-critical microservice.
    Baseline,
    /// Baseline plus one SMT batch thread under ICOUNT, no prioritization.
    Smt,
    /// SMT with strict latency-thread priority and a 30% co-runner storage cap.
    SmtPlus,
    /// Elfen scheduling \[45\] (extension, not in the paper's Figure 5 matrix):
    /// the batch SMT thread borrows the lane only while the latency thread
    /// naps, and deschedules itself when it wakes.
    Elfen,
    /// Runahead execution \[53\] (extension): the baseline core keeps
    /// pseudo-executing past µs-scale stalls to warm caches/predictors.
    /// §II argues this cannot fill killer-microsecond holes; this design
    /// makes that measurable.
    Runahead,
    /// MorphCore \[49\]: morphs to 8 dedicated in-order filler threads.
    MorphCore,
    /// MorphCore extended with HSMT and a paired lender-core.
    MorphCorePlus,
    /// Duplexity with all master-core stateful structures replicated.
    DuplexityReplication,
    /// The final Duplexity design.
    Duplexity,
}

impl Design {
    /// The paper's seven designs in presentation order.
    pub const ALL: [Design; 7] = [
        Design::Baseline,
        Design::Smt,
        Design::SmtPlus,
        Design::MorphCore,
        Design::MorphCorePlus,
        Design::DuplexityReplication,
        Design::Duplexity,
    ];

    /// The paper's designs plus this reproduction's extensions.
    pub const ALL_WITH_EXTENSIONS: [Design; 9] = [
        Design::Baseline,
        Design::Smt,
        Design::SmtPlus,
        Design::Elfen,
        Design::Runahead,
        Design::MorphCore,
        Design::MorphCorePlus,
        Design::DuplexityReplication,
        Design::Duplexity,
    ];

    /// Core clock in GHz (Table II; mode muxes cost cycle time).
    #[must_use]
    pub fn clock_ghz(self) -> f64 {
        match self {
            Design::Baseline | Design::Runahead => 3.4,
            Design::Smt | Design::SmtPlus | Design::Elfen => 3.35,
            Design::MorphCore | Design::MorphCorePlus => 3.3,
            Design::DuplexityReplication | Design::Duplexity => 3.25,
        }
    }

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Design::Baseline => "Baseline",
            Design::Smt => "SMT",
            Design::SmtPlus => "SMT+",
            Design::Elfen => "Elfen",
            Design::Runahead => "Runahead",
            Design::MorphCore => "MorphCore",
            Design::MorphCorePlus => "MorphCore+",
            Design::DuplexityReplication => "Duplexity+repl",
            Design::Duplexity => "Duplexity",
        }
    }

    /// True for designs that include a lender-core inside the dyad.
    #[must_use]
    pub fn has_lender(self) -> bool {
        matches!(
            self,
            Design::MorphCorePlus | Design::DuplexityReplication | Design::Duplexity
        )
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outer-loop strategy for advancing a cycle engine to its horizon.
///
/// Fast-forward is bit-identical to naive stepping: quiescent cycles draw
/// no RNG and retire nothing, and their counters are folded arithmetically
/// (`tests/fastforward_determinism.rs` proves it per design; the golden
/// fixtures pin it end to end). It is the default everywhere; `Naive` is
/// kept for differential tests and the perf benchmark's reference timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stepping {
    /// Step every cycle (reference semantics).
    Naive,
    /// Skip provably quiescent spans via `next_event_cycle` probes.
    #[default]
    FastForward,
}

/// Offered-load and duration parameters for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Offered load as a fraction of capacity; `None` = saturated (100%).
    pub load: Option<f64>,
    /// Mean master-thread service time in µs (sizes the arrival rate).
    pub service_us: f64,
    /// Cycles to simulate.
    pub horizon_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Uniform results from one design run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DesignMetrics {
    /// Wall-clock cycles simulated.
    pub wall_cycles: u64,
    /// Clock frequency used for µs conversion.
    pub clock_ghz: f64,
    /// Master-thread (latency-critical) micro-ops retired on the main core.
    pub master_retired: u64,
    /// Co-located batch micro-ops retired on the main core (SMT co-runner or
    /// borrowed fillers).
    pub colocated_retired: u64,
    /// Micro-ops retired on the lender-core (dyad designs only).
    pub lender_retired: u64,
    /// Completed request latencies in microseconds.
    pub request_latencies_us: Vec<f64>,
    /// µs-scale remote ops issued by the master-thread.
    pub remote_ops_master: u64,
    /// µs-scale remote ops issued by batch threads (co-runner / fillers /
    /// lender).
    pub remote_ops_batch: u64,
    /// Morph transitions (morphable designs).
    pub morphs: u64,
    /// Retired micro-ops per batch thread id, for STP.
    pub retired_by_ctx: Vec<u64>,
    /// Main-core microarchitectural summary (miss ratios, mispredicts).
    pub uarch: crate::metrics::UarchStats,
}

impl DesignMetrics {
    /// Main-core utilization (Fig. 5(a)): master + co-located retired over
    /// peak retire bandwidth. Lender-core instructions are excluded. A zero
    /// `width` yields 0 rather than a silent NaN.
    #[must_use]
    pub fn utilization(&self, width: usize) -> f64 {
        if self.wall_cycles == 0 || width == 0 {
            0.0
        } else {
            (self.master_retired + self.colocated_retired) as f64
                / (self.wall_cycles as f64 * width as f64)
        }
    }

    /// Simulated wall-clock time in microseconds.
    #[must_use]
    pub fn wall_us(&self) -> f64 {
        self.wall_cycles as f64 / (self.clock_ghz * 1000.0)
    }

    /// Mean request latency in µs; `None` if no requests completed.
    #[must_use]
    pub fn mean_latency_us(&self) -> Option<f64> {
        if self.request_latencies_us.is_empty() {
            None
        } else {
            Some(
                self.request_latencies_us.iter().sum::<f64>()
                    / self.request_latencies_us.len() as f64,
            )
        }
    }

    /// Aggregate batch throughput in micro-ops per cycle (co-located +
    /// lender), for STP-style comparisons.
    #[must_use]
    pub fn batch_ipc(&self) -> f64 {
        if self.wall_cycles == 0 {
            0.0
        } else {
            (self.colocated_retired + self.lender_retired) as f64 / self.wall_cycles as f64
        }
    }
}

/// Number of batch threads provisioned per dyad (§IV: 32 virtual contexts).
pub const BATCH_THREADS_PER_DYAD: usize = 32;

/// Runs `design` on a master-thread workload and a family of batch threads.
///
/// `filler_factory(id)` must produce independent batch-thread instruction
/// streams; it is called once per provisioned thread (1 for SMT designs, 8
/// for MorphCore, 32 for HSMT dyads).
pub fn run_design(
    design: Design,
    scenario: &Scenario,
    master_kernel: Box<dyn RequestKernel>,
    filler_factory: impl FnMut(usize) -> Box<dyn InstructionStream>,
) -> DesignMetrics {
    run_design_traced(
        design,
        scenario,
        master_kernel,
        filler_factory,
        &Tracer::disabled(),
    )
}

/// [`run_design`] with an explicit [`Stepping`] strategy (untraced).
pub fn run_design_stepped(
    design: Design,
    scenario: &Scenario,
    master_kernel: Box<dyn RequestKernel>,
    filler_factory: impl FnMut(usize) -> Box<dyn InstructionStream>,
    stepping: Stepping,
) -> DesignMetrics {
    run_design_traced_stepped(
        design,
        scenario,
        master_kernel,
        filler_factory,
        &Tracer::disabled(),
        stepping,
    )
}

/// [`run_design`] with an attached [`Tracer`]. The tracer's tick domain is
/// set to the design's cycles-per-µs so exported timestamps convert
/// correctly; trace events consume no RNG draws, so the returned metrics
/// are bitwise identical to an untraced run.
pub fn run_design_traced(
    design: Design,
    scenario: &Scenario,
    master_kernel: Box<dyn RequestKernel>,
    filler_factory: impl FnMut(usize) -> Box<dyn InstructionStream>,
    tracer: &Tracer,
) -> DesignMetrics {
    run_design_traced_stepped(
        design,
        scenario,
        master_kernel,
        filler_factory,
        tracer,
        Stepping::FastForward,
    )
}

/// [`run_design_traced`] with an explicit [`Stepping`] strategy.
pub fn run_design_traced_stepped(
    design: Design,
    scenario: &Scenario,
    master_kernel: Box<dyn RequestKernel>,
    mut filler_factory: impl FnMut(usize) -> Box<dyn InstructionStream>,
    tracer: &Tracer,
    stepping: Stepping,
) -> DesignMetrics {
    let clock = design.clock_ghz();
    let cycles_per_us = clock * 1000.0;
    let master: Box<dyn InstructionStream> = match scenario.load {
        Some(load) => Box::new(RequestStream::open_loop(
            master_kernel,
            load,
            scenario.service_us,
            cycles_per_us,
        )),
        None => Box::new(RequestStream::saturated(master_kernel)),
    };
    tracer.set_ticks_per_us(cycles_per_us);
    let mut rng = rng_from_seed(scenario.seed);

    match design {
        Design::Baseline | Design::Smt | Design::SmtPlus | Design::Elfen | Design::Runahead => {
            let mut machine = MachineConfig::baseline();
            machine.clock_ghz = clock;
            let policy = if design == Design::SmtPlus {
                FetchPolicy::PrimaryFirst
            } else {
                FetchPolicy::Icount
            };
            let mut engine = OooEngine::new(machine.core, policy, cycles_per_us);
            if design == Design::SmtPlus {
                engine.set_partition(SmtPartition::paper());
            }
            if design == Design::Elfen {
                engine.set_elfen(true);
            }
            if design == Design::Runahead {
                engine.set_runahead(true);
            }
            engine.set_tracer(tracer);
            engine.add_thread(master, ThreadClass::Primary);
            if !matches!(design, Design::Baseline | Design::Runahead) {
                engine.add_thread(filler_factory(0), ThreadClass::Secondary);
            }
            let mut mem = MemSys::table1(machine.latency);
            mem.set_tracer(tracer);
            let horizon = scenario.horizon_cycles;
            match stepping {
                Stepping::Naive => {
                    for now in 0..horizon {
                        engine.step(now, &mut mem, &mut rng);
                    }
                }
                Stepping::FastForward => {
                    // Probe after each step; back off exponentially (max 32
                    // cycles) after failed probes. Backoff changes only when
                    // skips are *attempted*, never what a skip folds, so
                    // results stay bit-identical to the naive loop. The
                    // memory system never wakes a core on its own
                    // (`mem.next_event_cycle` is `None`), so the engine's
                    // probe alone decides.
                    let mut now = 0u64;
                    let mut backoff: u64 = 0;
                    let mut wait: u64 = 0;
                    while now < horizon {
                        engine.step(now, &mut mem, &mut rng);
                        now += 1;
                        if wait > 0 {
                            wait -= 1;
                            continue;
                        }
                        let target = engine
                            .next_event_cycle(now)
                            .map_or(horizon, |e| e.min(horizon));
                        if target > now {
                            engine.skip_quiescent(now, target - now);
                            now = target;
                            backoff = 0;
                        } else {
                            backoff = (backoff * 2).clamp(1, 32);
                            wait = backoff;
                        }
                    }
                }
            }
            let s = engine.stats();
            DesignMetrics {
                wall_cycles: scenario.horizon_cycles,
                clock_ghz: clock,
                master_retired: s.retired_primary,
                colocated_retired: s.retired_secondary,
                lender_retired: 0,
                request_latencies_us: s
                    .request_latencies_cycles
                    .iter()
                    .map(|&c| c as f64 / cycles_per_us)
                    .collect(),
                remote_ops_master: s.remote_ops, // co-runner remotes counted too
                remote_ops_batch: 0,
                morphs: 0,
                retired_by_ctx: if design == Design::Baseline {
                    Vec::new()
                } else {
                    vec![s.retired_secondary]
                },
                uarch: crate::metrics::UarchStats::collect(&mem, s),
            }
        }
        Design::MorphCore
        | Design::MorphCorePlus
        | Design::DuplexityReplication
        | Design::Duplexity => {
            let mut cfg = match design {
                Design::MorphCore => DyadConfig::morphcore(),
                Design::MorphCorePlus => DyadConfig::morphcore_plus(),
                Design::DuplexityReplication => DyadConfig::duplexity_replication(),
                _ => DyadConfig::duplexity(),
            };
            cfg.machine.clock_ghz = clock;
            let mut dyad = DyadSim::new(cfg, master);
            dyad.set_tracer(tracer);
            if cfg.hsmt_fillers {
                for id in 0..BATCH_THREADS_PER_DYAD {
                    dyad.add_batch_thread(id, filler_factory(id));
                }
            } else {
                for id in 0..8 {
                    dyad.add_fixed_filler(id, filler_factory(id));
                }
            }
            match stepping {
                Stepping::Naive => dyad.run_naive(scenario.horizon_cycles, &mut rng),
                Stepping::FastForward => dyad.run(scenario.horizon_cycles, &mut rng),
            }
            dyad.flush_trace_registry();
            let m = dyad.take_metrics();
            DesignMetrics {
                wall_cycles: m.wall_cycles,
                clock_ghz: clock,
                master_retired: m.master_retired,
                colocated_retired: m.filler_retired_on_master,
                lender_retired: m.lender_retired,
                request_latencies_us: m
                    .request_latencies_cycles
                    .iter()
                    .map(|&c| c as f64 / cycles_per_us)
                    .collect(),
                remote_ops_master: m.remote_ops_master,
                remote_ops_batch: m.remote_ops_batch,
                morphs: m.morphs,
                retired_by_ctx: m.retired_by_ctx,
                uarch: m.master_uarch,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{LoopedTrace, MicroOp, Op, NO_REG};
    use duplexity_stats::rng::SimRng;

    /// A cache-sensitive microservice: a serial compute chain interleaved
    /// with loads over a reused 32KB working set, then a 1µs remote access.
    #[derive(Debug)]
    struct Kernel;
    impl RequestKernel for Kernel {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            for i in 0..1200u64 {
                if i % 3 == 0 {
                    out.push(
                        MicroOp::new(
                            i * 4,
                            Op::Load {
                                addr: 0x10_0000 + (i * 64) % 32_768,
                            },
                        )
                        .with_srcs(0, NO_REG)
                        .with_dst(0),
                    );
                } else {
                    out.push(
                        MicroOp::new(i * 4, Op::IntAlu)
                            .with_srcs(0, NO_REG)
                            .with_dst(0),
                    );
                }
            }
            out.push(
                MicroOp::new(8000, Op::RemoteLoad { latency_us: 1.0 })
                    .with_srcs(0, NO_REG)
                    .with_dst(1),
            );
            out.push(MicroOp::new(8004, Op::IntAlu).with_srcs(1, NO_REG));
        }
        fn nominal_service_us(&self) -> f64 {
            1.5
        }
    }

    /// Batch threads with graph-analytics character: loads over a mostly
    /// resident working set with periodic far misses, memory-level
    /// parallelism (dependency distance 8), and a 1µs remote stall per ~600
    /// ops.
    fn filler(id: usize) -> Box<dyn InstructionStream> {
        let base = 0x4000_0000 + 0x200_0000 * (id as u64 + 1);
        let mut ops = Vec::with_capacity(620);
        for i in 0..600u64 {
            let reg = (i % 8) as u8;
            if i % 2 == 0 {
                // Streams a 128KB ring (larger than the 64KB L1, so it
                // continuously evicts a co-located microservice's lines);
                // every 16th access strays far.
                let addr = if i % 32 == 30 {
                    base + 0x100_0000 + i * 4096
                } else {
                    base + 0x1_0000 + (i * 64) % 131_072
                };
                ops.push(MicroOp::new(base + i * 4, Op::Load { addr }).with_dst(reg));
            } else {
                ops.push(
                    MicroOp::new(base + i * 4, Op::IntAlu)
                        .with_srcs((i.wrapping_sub(8) % 8) as u8, NO_REG)
                        .with_dst(reg),
                );
            }
        }
        ops.push(MicroOp::new(base + 3000, Op::RemoteLoad { latency_us: 1.0 }).with_dst(8));
        Box::new(LoopedTrace::new(ops))
    }

    fn scenario() -> Scenario {
        Scenario {
            load: Some(0.5),
            service_us: 2.5,
            horizon_cycles: 1_500_000,
            seed: 99,
        }
    }

    fn run(design: Design) -> DesignMetrics {
        run_design(design, &scenario(), Box::new(Kernel), filler)
    }

    #[test]
    fn all_designs_execute() {
        for design in Design::ALL {
            let m = run(design);
            assert!(m.master_retired > 0, "{design}: no master progress");
            assert!(!m.request_latencies_us.is_empty(), "{design}: no requests");
        }
    }

    #[test]
    fn utilization_ordering_matches_paper() {
        // Fig. 5(a) ordering at moderate load: baseline lowest; Duplexity
        // variants highest.
        let base = run(Design::Baseline).utilization(4);
        let smt = run(Design::Smt).utilization(4);
        let dup = run(Design::Duplexity).utilization(4);
        assert!(smt > base, "SMT {smt} <= baseline {base}");
        assert!(dup > smt, "Duplexity {dup} <= SMT {smt}");
        assert!(dup > 2.0 * base, "Duplexity {dup} not >2x baseline {base}");
    }

    #[test]
    fn smt_plus_lower_colocated_than_smt() {
        let smt = run(Design::Smt);
        let plus = run(Design::SmtPlus);
        assert!(
            plus.colocated_retired < smt.colocated_retired,
            "SMT+ co-runner {} vs SMT {}",
            plus.colocated_retired,
            smt.colocated_retired
        );
    }

    #[test]
    fn duplexity_latency_lower_than_smt() {
        // SMT interference inflates master latency; Duplexity barely does.
        let smt = run(Design::Smt).mean_latency_us().unwrap();
        let dup = run(Design::Duplexity).mean_latency_us().unwrap();
        assert!(dup < smt, "Duplexity {dup}us vs SMT {smt}us");
    }

    #[test]
    fn lender_designs_report_lender_throughput() {
        for design in [
            Design::MorphCorePlus,
            Design::DuplexityReplication,
            Design::Duplexity,
        ] {
            let m = run(design);
            assert!(m.lender_retired > 0, "{design}: lender idle");
        }
        assert_eq!(run(Design::MorphCore).lender_retired, 0);
    }

    #[test]
    fn names_and_clocks() {
        assert_eq!(Design::Duplexity.name(), "Duplexity");
        assert_eq!(Design::Baseline.clock_ghz(), 3.4);
        assert!(Design::Duplexity.clock_ghz() < Design::Baseline.clock_ghz());
        assert!(Design::Duplexity.has_lender());
        assert!(!Design::MorphCore.has_lender());
    }

    #[test]
    fn metrics_helpers() {
        let m = DesignMetrics {
            wall_cycles: 1000,
            clock_ghz: 3.4,
            master_retired: 1000,
            colocated_retired: 1000,
            lender_retired: 2000,
            request_latencies_us: vec![2.0, 4.0],
            ..Default::default()
        };
        assert!((m.utilization(4) - 0.5).abs() < 1e-12);
        assert!((m.batch_ipc() - 3.0).abs() < 1e-12);
        assert!((m.mean_latency_us().unwrap() - 3.0).abs() < 1e-12);
        assert!((m.wall_us() - 1000.0 / 3400.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod elfen_tests {
    use super::*;
    use crate::op::{InstructionStream, LoopedTrace, MicroOp, Op, RequestKernel, NO_REG};
    use duplexity_stats::rng::SimRng;

    #[derive(Debug)]
    struct IdleHeavyKernel;
    impl RequestKernel for IdleHeavyKernel {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            for i in 0..800u64 {
                out.push(
                    MicroOp::new(i * 4, Op::IntAlu)
                        .with_srcs(0, NO_REG)
                        .with_dst(0),
                );
            }
        }
        fn nominal_service_us(&self) -> f64 {
            0.25
        }
    }

    fn batch(id: usize) -> Box<dyn InstructionStream> {
        let base = 0x7000_0000 + 0x100_0000 * id as u64;
        let ops: Vec<MicroOp> = (0..256)
            .map(|i| {
                MicroOp::new(
                    base + i * 4,
                    Op::Load {
                        addr: base + 0x10_000 + (i * 64) % 65_536,
                    },
                )
                .with_dst((i % 8) as u8)
            })
            .collect();
        Box::new(LoopedTrace::new(ops))
    }

    fn run(design: Design) -> DesignMetrics {
        let scenario = Scenario {
            load: Some(0.3),
            service_us: 0.25,
            horizon_cycles: 1_000_000,
            seed: 7,
        };
        run_design(design, &scenario, Box::new(IdleHeavyKernel), batch)
    }

    /// Elfen's batch thread makes real progress during naps...
    #[test]
    fn elfen_borrows_idle_lanes() {
        let m = run(Design::Elfen);
        assert!(m.colocated_retired > 0, "batch thread never ran");
        assert!(m.master_retired > 0);
    }

    /// ...but strictly less than unconstrained SMT, in exchange for far less
    /// interference with the latency thread.
    #[test]
    fn elfen_trades_batch_throughput_for_isolation() {
        let smt = run(Design::Smt);
        let elfen = run(Design::Elfen);
        assert!(
            elfen.colocated_retired < smt.colocated_retired,
            "Elfen {} vs SMT {}",
            elfen.colocated_retired,
            smt.colocated_retired
        );
        let smt_lat = smt.mean_latency_us().expect("requests completed");
        let elfen_lat = elfen.mean_latency_us().expect("requests completed");
        assert!(
            elfen_lat <= smt_lat * 1.02,
            "Elfen latency {elfen_lat} worse than SMT {smt_lat}"
        );
    }

    /// Elfen is an extension: present in ALL_WITH_EXTENSIONS, absent from the
    /// paper-faithful matrix.
    #[test]
    fn elfen_is_extension_only() {
        assert!(!Design::ALL.contains(&Design::Elfen));
        assert!(Design::ALL_WITH_EXTENSIONS.contains(&Design::Elfen));
        assert_eq!(Design::Elfen.name(), "Elfen");
        assert!(!Design::Elfen.has_lender());
    }
}

#[cfg(test)]
mod uarch_visibility_tests {
    use super::*;
    use crate::op::{InstructionStream, LoopedTrace, MicroOp, Op, RequestKernel, NO_REG};
    use duplexity_stats::rng::SimRng;

    #[derive(Debug)]
    struct CacheSensitiveKernel;
    impl RequestKernel for CacheSensitiveKernel {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            // A reused 16KB working set: hits once warm, unless a co-runner
            // evicts it.
            for i in 0..1200u64 {
                out.push(
                    MicroOp::new(
                        i * 4,
                        Op::Load {
                            addr: 0x9_0000 + (i * 64) % 16_384,
                        },
                    )
                    .with_srcs(0, NO_REG)
                    .with_dst(0),
                );
            }
        }
        fn nominal_service_us(&self) -> f64 {
            1.5
        }
    }

    fn hostile(id: usize) -> Box<dyn InstructionStream> {
        let base = 0x8000_0000 + 0x100_0000 * id as u64;
        let ops: Vec<MicroOp> = (0..512)
            .map(|i| {
                MicroOp::new(
                    base + i * 4,
                    Op::Load {
                        addr: base + 0x1_0000 + (i * 256) % 131_072,
                    },
                )
                .with_dst((i % 8) as u8)
            })
            .collect();
        Box::new(LoopedTrace::new(ops))
    }

    /// The new per-design uarch stats make the paper's interference story
    /// directly observable: SMT inflates the master's L1-D miss ratio;
    /// Duplexity does not.
    #[test]
    fn interference_is_visible_in_uarch_stats() {
        let scenario = Scenario {
            load: Some(0.5),
            service_us: 1.5,
            horizon_cycles: 1_200_000,
            seed: 3,
        };
        let run =
            |design: Design| run_design(design, &scenario, Box::new(CacheSensitiveKernel), hostile);
        let base = run(Design::Baseline);
        let smt = run(Design::Smt);
        let dup = run(Design::Duplexity);
        assert!(
            smt.uarch.l1d_miss_ratio > 2.0 * base.uarch.l1d_miss_ratio.max(0.001),
            "SMT co-runner must thrash the master L1: {} vs {}",
            smt.uarch.l1d_miss_ratio,
            base.uarch.l1d_miss_ratio
        );
        assert!(
            dup.uarch.l1d_miss_ratio < 0.5 * smt.uarch.l1d_miss_ratio,
            "Duplexity isolation must keep master misses near baseline: {} vs {}",
            dup.uarch.l1d_miss_ratio,
            smt.uarch.l1d_miss_ratio
        );
    }
}

#[cfg(test)]
mod runahead_tests {
    use super::*;
    use crate::op::{InstructionStream, LoopedTrace, MicroOp, Op, RequestKernel, NO_REG};
    use duplexity_stats::rng::SimRng;

    /// Compute over a reused working set, a 2µs remote stall, then compute
    /// that re-touches the same lines: a favorable setup for runahead.
    #[derive(Debug)]
    struct PrefetchableKernel;
    impl RequestKernel for PrefetchableKernel {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            for i in 0..400u64 {
                out.push(
                    MicroOp::new(
                        i * 4,
                        Op::Load {
                            addr: 0xA0_0000 + (i * 64) % 32_768,
                        },
                    )
                    .with_srcs(0, NO_REG)
                    .with_dst(0),
                );
            }
            out.push(
                MicroOp::new(4096, Op::RemoteLoad { latency_us: 2.0 })
                    .with_srcs(0, NO_REG)
                    .with_dst(1),
            );
            // Post-stall phase touches fresh lines runahead can prefetch.
            for i in 0..400u64 {
                out.push(
                    MicroOp::new(
                        8192 + i * 4,
                        Op::Load {
                            addr: 0xB0_0000 + i * 64,
                        },
                    )
                    .with_srcs(2, NO_REG)
                    .with_dst(2),
                );
            }
            out.push(MicroOp::new(16_384, Op::IntAlu).with_srcs(1, NO_REG));
        }
        fn nominal_service_us(&self) -> f64 {
            3.0
        }
    }

    fn batch(id: usize) -> Box<dyn InstructionStream> {
        let base = 0x9000_0000 + 0x100_0000 * id as u64;
        Box::new(LoopedTrace::new(
            (0..128)
                .map(|i| MicroOp::new(base + i * 4, Op::IntAlu))
                .collect(),
        ))
    }

    fn run(design: Design) -> DesignMetrics {
        let scenario = Scenario {
            load: Some(0.5),
            service_us: 3.0,
            horizon_cycles: 2_000_000,
            seed: 5,
        };
        run_design(design, &scenario, Box::new(PrefetchableKernel), batch)
    }

    /// §II's negative result, measured: runahead trims latency a little via
    /// prefetching, but recovers essentially none of the utilization hole —
    /// unlike Duplexity.
    #[test]
    fn runahead_cannot_fill_killer_microseconds() {
        let base = run(Design::Baseline);
        let ra = run(Design::Runahead);
        let dup = run(Design::Duplexity);

        // Latency: runahead helps (or at worst matches).
        let base_lat = base.mean_latency_us().unwrap();
        let ra_lat = ra.mean_latency_us().unwrap();
        assert!(
            ra_lat <= base_lat * 1.02,
            "runahead {ra_lat} vs baseline {base_lat}"
        );

        // Utilization: runahead retires nothing during stalls, so it stays
        // baseline-grade, while Duplexity multiplies it.
        assert!(
            ra.utilization(4) < 1.3 * base.utilization(4).max(0.001),
            "runahead util {} should be ~baseline {}",
            ra.utilization(4),
            base.utilization(4)
        );
        assert!(
            dup.utilization(4) > 3.0 * ra.utilization(4),
            "Duplexity {} vs runahead {}",
            dup.utilization(4),
            ra.utilization(4)
        );
    }

    /// Runahead must not corrupt correctness-visible accounting: every
    /// request still completes exactly once.
    #[test]
    fn runahead_replays_instructions_exactly_once() {
        let scenario = Scenario {
            load: Some(0.5),
            service_us: 3.0,
            horizon_cycles: 1_500_000,
            seed: 6,
        };
        let base = run_design(
            Design::Baseline,
            &scenario,
            Box::new(PrefetchableKernel),
            batch,
        );
        let ra = run_design(
            Design::Runahead,
            &scenario,
            Box::new(PrefetchableKernel),
            batch,
        );
        // Same arrivals, same per-request op counts: retired counts match to
        // within one in-flight request.
        let per_request = 400 + 1 + 400 + 1;
        let diff = (base.master_retired as i64 - ra.master_retired as i64).abs();
        assert!(
            diff <= 2 * per_request,
            "baseline {} vs runahead {} retired",
            base.master_retired,
            ra.master_retired
        );
    }

    #[test]
    fn runahead_is_extension_only() {
        assert!(!Design::ALL.contains(&Design::Runahead));
        assert!(Design::ALL_WITH_EXTENSIONS.contains(&Design::Runahead));
        assert_eq!(Design::Runahead.clock_ghz(), 3.4);
    }
}
