//! Engine-level performance counters.

use crate::memsys::MemSys;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a cycle-level engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Cycles the engine has been stepped.
    pub cycles: u64,
    /// Retired micro-ops of the latency-critical (primary) thread.
    pub retired_primary: u64,
    /// Retired micro-ops of batch/filler (secondary) threads.
    pub retired_secondary: u64,
    /// Conditional branches dispatched.
    pub branches: u64,
    /// Branches whose direction was mispredicted.
    pub mispredicts: u64,
    /// µs-scale remote operations issued (drives NIC accounting, Fig. 6).
    pub remote_ops: u64,
    /// Cycles in which every thread was idle (no request in flight).
    pub idle_cycles: u64,
    /// End-to-end latency, in cycles, of each completed primary request.
    pub request_latencies_cycles: Vec<u64>,
    /// Loads issued by the primary (latency-critical) thread.
    pub primary_loads: u64,
    /// Primary-thread loads that missed the L1 (any longer-latency source).
    pub primary_load_l1_misses: u64,
}

impl EngineStats {
    /// Total retired micro-ops.
    #[must_use]
    pub fn retired_total(&self) -> u64 {
        self.retired_primary + self.retired_secondary
    }

    /// Core utilization: retired per cycle over peak retire bandwidth
    /// (the Fig. 5(a) metric). A zero `width` (no retire bandwidth) yields
    /// 0 rather than a silent NaN.
    #[must_use]
    pub fn utilization(&self, width: usize) -> f64 {
        if self.cycles == 0 || width == 0 {
            0.0
        } else {
            self.retired_total() as f64 / (self.cycles as f64 * width as f64)
        }
    }

    /// Instructions per cycle across all threads.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_total() as f64 / self.cycles as f64
        }
    }

    /// IPC of the primary thread alone.
    #[must_use]
    pub fn primary_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_primary as f64 / self.cycles as f64
        }
    }

    /// L1-D miss ratio of the primary thread's loads.
    #[must_use]
    pub fn primary_l1d_miss_ratio(&self) -> f64 {
        if self.primary_loads == 0 {
            0.0
        } else {
            self.primary_load_l1_misses as f64 / self.primary_loads as f64
        }
    }

    /// Branch misprediction rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Merges counters from another engine (e.g. a morphed sub-engine).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.retired_primary += other.retired_primary;
        self.retired_secondary += other.retired_secondary;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.remote_ops += other.remote_ops;
        self.idle_cycles += other.idle_cycles;
        self.primary_loads += other.primary_loads;
        self.primary_load_l1_misses += other.primary_load_l1_misses;
        self.request_latencies_cycles
            .extend_from_slice(&other.request_latencies_cycles);
    }
}

/// Microarchitectural health summary of one core: cache/TLB miss ratios and
/// branch prediction accuracy (the paper's interference story in numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UarchStats {
    /// L1 instruction-cache miss ratio (whole core).
    pub l1i_miss_ratio: f64,
    /// L1 data-cache miss ratio of the *latency-critical thread's* loads —
    /// the paper's interference channel.
    pub l1d_miss_ratio: f64,
    /// LLC miss ratio.
    pub llc_miss_ratio: f64,
    /// Data-TLB miss ratio.
    pub dtlb_miss_ratio: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
}

impl UarchStats {
    /// Summarizes a core's memory system and engine counters.
    #[must_use]
    pub fn collect(mem: &MemSys, engine: &EngineStats) -> Self {
        Self {
            l1i_miss_ratio: mem.l1i.stats().miss_ratio(),
            l1d_miss_ratio: engine.primary_l1d_miss_ratio(),
            llc_miss_ratio: mem.llc.stats().miss_ratio(),
            dtlb_miss_ratio: mem.dtlb.stats().miss_ratio(),
            mispredict_rate: engine.mispredict_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_saturated_core() {
        let s = EngineStats {
            cycles: 100,
            retired_primary: 400,
            ..Default::default()
        };
        assert!((s.utilization(4) - 1.0).abs() < 1e-12);
        assert!((s.ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = EngineStats::default();
        assert_eq!(s.utilization(4), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn zero_width_utilization_is_zero_not_nan() {
        let s = EngineStats {
            cycles: 100,
            retired_primary: 400,
            ..Default::default()
        };
        let u = s.utilization(0);
        assert!(!u.is_nan(), "zero width must not produce NaN");
        assert_eq!(u, 0.0);
    }

    #[test]
    fn uarch_stats_collects_ratios() {
        use duplexity_uarch::cache::AccessKind;
        use duplexity_uarch::config::LatencyModel;
        let mut mem = MemSys::table1(LatencyModel::default());
        mem.data_access(0x1000, AccessKind::Read); // miss
        mem.data_access(0x1000, AccessKind::Read); // hit
        let engine = EngineStats {
            branches: 10,
            mispredicts: 2,
            primary_loads: 4,
            primary_load_l1_misses: 1,
            ..Default::default()
        };
        let u = UarchStats::collect(&mem, &engine);
        assert!((u.l1d_miss_ratio - 0.25).abs() < 1e-12);
        assert!((u.mispredict_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_but_keeps_cycles() {
        let mut a = EngineStats {
            cycles: 50,
            retired_primary: 10,
            ..Default::default()
        };
        let b = EngineStats {
            cycles: 99,
            retired_secondary: 20,
            remote_ops: 3,
            request_latencies_cycles: vec![7],
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.cycles, 50); // cycles are wall-clock, not additive
        assert_eq!(a.retired_total(), 30);
        assert_eq!(a.remote_ops, 3);
        assert_eq!(a.request_latencies_cycles, vec![7]);
    }
}
