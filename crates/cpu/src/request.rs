//! Open-loop request generation for latency-critical master-threads.
//!
//! Microservices receive Poisson request arrivals (§II-A: "due to the
//! memory-less property of Poisson request arrivals..."), serve them FCFS,
//! and sit idle in the µs-scale gaps between requests. [`RequestStream`]
//! adapts a [`RequestKernel`] into an [`InstructionStream`]: it pumps a
//! Poisson arrival process, queues requests, replays each request's micro-op
//! trace, and reports [`Fetched::IdleUntil`] when the queue drains — the
//! idleness holes that master-cores fill by morphing.

use crate::op::{Fetched, InstructionStream, MicroOp, RequestKernel};
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::SimRng;
use std::collections::VecDeque;

/// Arrival behaviour of a [`RequestStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArrivalMode {
    /// Poisson arrivals with the given mean inter-arrival time in cycles.
    Open { mean_interarrival_cycles: f64 },
    /// Saturated closed loop: a new request is always waiting (100% load, the
    /// Fig. 1(c) protocol).
    Saturated,
}

/// Adapts a workload kernel into a master-thread instruction stream with
/// request arrivals, FCFS queueing, and idle-period signalling.
pub struct RequestStream {
    kernel: Box<dyn RequestKernel>,
    mode: ArrivalMode,
    next_arrival: u64,
    queue: VecDeque<u64>,
    current: Vec<MicroOp>,
    pos: usize,
    completed: u64,
    max_requests: u64,
}

impl std::fmt::Debug for RequestStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestStream")
            .field("mode", &self.mode)
            .field("queued", &self.queue.len())
            .field("completed", &self.completed)
            .finish()
    }
}

impl RequestStream {
    /// Open-loop stream at offered `load` (fraction of capacity), where
    /// capacity is `1 / service_us` requests per microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `(0, 1)` or `service_us <= 0`.
    #[must_use]
    pub fn open_loop(
        kernel: Box<dyn RequestKernel>,
        load: f64,
        service_us: f64,
        cycles_per_us: f64,
    ) -> Self {
        assert!(
            load > 0.0 && load < 1.0,
            "load must be in (0,1), got {load}"
        );
        assert!(service_us > 0.0, "service time must be positive");
        let mean_interarrival_cycles = service_us * cycles_per_us / load;
        Self {
            kernel,
            mode: ArrivalMode::Open {
                mean_interarrival_cycles,
            },
            next_arrival: 0,
            queue: VecDeque::new(),
            current: Vec::new(),
            pos: 0,
            completed: 0,
            max_requests: u64::MAX,
        }
    }

    /// Saturated stream: back-to-back requests, no idle periods (used by the
    /// §II-B throughput experiments).
    #[must_use]
    pub fn saturated(kernel: Box<dyn RequestKernel>) -> Self {
        Self {
            kernel,
            mode: ArrivalMode::Saturated,
            next_arrival: 0,
            queue: VecDeque::new(),
            current: Vec::new(),
            pos: 0,
            completed: 0,
            max_requests: u64::MAX,
        }
    }

    /// Stops producing work after `n` requests (the stream then reports
    /// [`Fetched::Done`]).
    #[must_use]
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = n;
        self
    }

    /// Requests whose traces have been fully handed to the engine.
    #[must_use]
    pub fn dispatched_requests(&self) -> u64 {
        self.completed
    }

    fn pump_arrivals(&mut self, now: u64, rng: &mut SimRng) {
        if let ArrivalMode::Open {
            mean_interarrival_cycles,
        } = self.mode
        {
            let d = Exponential::new(mean_interarrival_cycles);
            while self.next_arrival <= now
                && self.completed + (self.queue.len() as u64) < self.max_requests
            {
                self.queue.push_back(self.next_arrival);
                self.next_arrival += d.sample(rng).round().max(1.0) as u64;
            }
        }
    }

    fn start_request(&mut self, arrival: u64, rng: &mut SimRng) {
        self.current.clear();
        self.kernel.generate(rng, &mut self.current);
        if let Some(last) = self.current.last_mut() {
            last.end_of_request = Some(arrival);
        }
        self.pos = 0;
    }
}

impl InstructionStream for RequestStream {
    fn at_request_boundary(&self) -> bool {
        self.pos >= self.current.len()
    }

    fn next(&mut self, now: u64, rng: &mut SimRng) -> Fetched {
        loop {
            if self.pos < self.current.len() {
                let op = self.current[self.pos];
                self.pos += 1;
                return Fetched::Op(op);
            }
            // Current request exhausted: find the next one.
            if self.completed >= self.max_requests {
                return Fetched::Done;
            }
            match self.mode {
                ArrivalMode::Saturated => {
                    self.completed += 1;
                    self.start_request(now, rng);
                }
                ArrivalMode::Open { .. } => {
                    self.pump_arrivals(now, rng);
                    if let Some(arrival) = self.queue.pop_front() {
                        self.completed += 1;
                        self.start_request(arrival, rng);
                    } else if self.completed >= self.max_requests {
                        return Fetched::Done;
                    } else {
                        return Fetched::IdleUntil(self.next_arrival);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MicroOp, Op};
    use duplexity_stats::rng::rng_from_seed;

    #[derive(Debug)]
    struct TenAluKernel;
    impl RequestKernel for TenAluKernel {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            for i in 0..10 {
                out.push(MicroOp::new(i * 4, Op::IntAlu));
            }
        }
        fn nominal_service_us(&self) -> f64 {
            0.01
        }
    }

    #[test]
    fn saturated_never_idles() {
        let mut s = RequestStream::saturated(Box::new(TenAluKernel));
        let mut rng = rng_from_seed(1);
        for now in 0..100 {
            assert!(matches!(s.next(now, &mut rng), Fetched::Op(_)));
        }
        assert!(s.dispatched_requests() >= 10);
    }

    #[test]
    fn open_loop_idles_between_requests() {
        // Very low load: idle periods dominate.
        let mut s = RequestStream::open_loop(Box::new(TenAluKernel), 0.01, 0.01, 3400.0);
        let mut rng = rng_from_seed(2);
        // Drain the request that arrives at cycle 0.
        let mut idles = 0;
        let mut now = 0u64;
        for _ in 0..200 {
            match s.next(now, &mut rng) {
                Fetched::Op(_) => now += 1,
                Fetched::IdleUntil(c) => {
                    assert!(c > now);
                    idles += 1;
                    now = c;
                }
                Fetched::Done => break,
            }
        }
        assert!(idles > 3, "idles {idles}");
    }

    #[test]
    fn end_of_request_carries_arrival() {
        let mut s = RequestStream::saturated(Box::new(TenAluKernel)).with_max_requests(1);
        let mut rng = rng_from_seed(3);
        let mut markers = 0;
        loop {
            match s.next(50, &mut rng) {
                Fetched::Op(op) => {
                    if let Some(arrival) = op.end_of_request {
                        assert_eq!(arrival, 50);
                        markers += 1;
                    }
                }
                Fetched::Done => break,
                Fetched::IdleUntil(_) => panic!("saturated stream must not idle"),
            }
        }
        assert_eq!(markers, 1);
    }

    #[test]
    fn max_requests_terminates() {
        let mut s = RequestStream::saturated(Box::new(TenAluKernel)).with_max_requests(3);
        let mut rng = rng_from_seed(4);
        let mut ops = 0;
        loop {
            match s.next(0, &mut rng) {
                Fetched::Op(_) => ops += 1,
                Fetched::Done => break,
                Fetched::IdleUntil(_) => panic!("saturated stream must not idle"),
            }
        }
        assert_eq!(ops, 30);
        assert_eq!(s.dispatched_requests(), 3);
    }

    #[test]
    fn arrival_rate_matches_load() {
        // load 0.5 with 0.01µs service => one arrival per 68 cycles on avg.
        let mut s = RequestStream::open_loop(Box::new(TenAluKernel), 0.5, 0.01, 3400.0);
        let mut rng = rng_from_seed(5);
        let horizon = 500_000u64;
        let mut now = 0u64;
        while now < horizon {
            match s.next(now, &mut rng) {
                Fetched::Op(_) => now += 1, // ~1 op per cycle consumption
                Fetched::IdleUntil(c) => now = c.max(now + 1),
                Fetched::Done => break,
            }
        }
        let expected = horizon as f64 / 68.0;
        let actual = s.dispatched_requests() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.15,
            "actual {actual} expected {expected}"
        );
    }
}
