//! The micro-op trace model.
//!
//! Workload kernels emit sequences of [`MicroOp`]s with genuine address and
//! branch streams; the engines schedule them. µs-scale stall events — the
//! killer microseconds — are explicit [`Op::RemoteLoad`] micro-ops, mirroring
//! the paper's queue-pair-based, OS-transparent remote accesses whose start
//! and end the hardware can demarcate (§IV "Demarcating stalls").

use duplexity_stats::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Number of architectural general-purpose registers per thread (x86-64: 16).
pub const ARCH_REGS: usize = 16;

/// The operation performed by one micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Simple integer ALU op (1-cycle).
    IntAlu,
    /// Integer multiply (3-cycle).
    IntMul,
    /// Floating point / SIMD op (4-cycle).
    FpAlu,
    /// Load from `addr` through the data path.
    Load {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// Store to `addr` through the data path.
    Store {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// Conditional branch with its resolved direction and target.
    Branch {
        /// Actual outcome (from the trace).
        taken: bool,
        /// Target address when taken.
        target: u64,
    },
    /// A µs-scale remote access (RDMA read, Optane I/O, leaf-service wait).
    /// Completion takes `latency_us` of wall-clock time; issuing it is what
    /// triggers a morph in master-core designs.
    RemoteLoad {
        /// Stall duration in microseconds.
        latency_us: f64,
    },
}

impl Op {
    /// Execution latency in cycles for non-memory ops; memory latency comes
    /// from the memory system.
    #[must_use]
    pub fn exec_latency(&self) -> u64 {
        match self {
            Op::IntAlu | Op::Branch { .. } => 1,
            Op::IntMul => 3,
            Op::FpAlu => 4,
            Op::Load { .. } | Op::Store { .. } | Op::RemoteLoad { .. } => 1,
        }
    }

    /// True for ops that occupy the load queue.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::RemoteLoad { .. })
    }

    /// True for ops that occupy the store queue.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }
}

/// One micro-op of a thread's dynamic instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Program counter (byte address) for I-cache and predictor indexing.
    pub pc: u64,
    /// The operation.
    pub op: Op,
    /// Source architectural registers (255 = unused slot).
    pub srcs: [u8; 2],
    /// Destination architectural register, if any.
    pub dst: Option<u8>,
    /// Set on the final micro-op of a request; carries the request's arrival
    /// cycle so the engine can record its latency at retirement.
    pub end_of_request: Option<u64>,
}

/// Sentinel for an unused source-register slot.
pub const NO_REG: u8 = 255;

impl MicroOp {
    /// Creates a micro-op with no register dependencies.
    #[must_use]
    pub fn new(pc: u64, op: Op) -> Self {
        Self {
            pc,
            op,
            srcs: [NO_REG, NO_REG],
            dst: None,
            end_of_request: None,
        }
    }

    /// Sets the source registers.
    #[must_use]
    pub fn with_srcs(mut self, a: u8, b: u8) -> Self {
        self.srcs = [a, b];
        self
    }

    /// Sets the destination register.
    #[must_use]
    pub fn with_dst(mut self, dst: u8) -> Self {
        self.dst = Some(dst);
        self
    }
}

/// What an instruction stream hands the fetch stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fetched {
    /// The next micro-op of the thread.
    Op(MicroOp),
    /// The thread has no work until the given cycle (µs-scale idle period
    /// between requests). Master-core designs morph on this.
    IdleUntil(u64),
    /// The thread has permanently finished.
    Done,
}

/// An infinite (or finite) per-thread dynamic instruction stream.
///
/// `now` is the current cycle, letting request-driven streams signal idle
/// periods; `rng` drives stochastic stall durations.
pub trait InstructionStream: Send {
    /// Produces the next fetch unit for this thread.
    fn next(&mut self, now: u64, rng: &mut SimRng) -> Fetched;

    /// True when the next op would begin a *new request* (used by runahead,
    /// which must not speculate into work that has not arrived yet).
    /// Defaults to `false` for continuous batch streams.
    fn at_request_boundary(&self) -> bool {
        false
    }
}

/// A workload kernel that generates the micro-op trace of a single request.
///
/// Implemented by the microservice models in `duplexity-workloads` (FLANN,
/// RSC, McRouter, WordStem); adapted into a master-thread stream by
/// [`crate::request::RequestStream`].
pub trait RequestKernel: Send {
    /// Appends one request's trace to `out`.
    fn generate(&mut self, rng: &mut SimRng, out: &mut Vec<MicroOp>);

    /// Mean service time in microseconds on an unloaded baseline core, used
    /// to size arrival rates. Implementations may return an a-priori estimate;
    /// experiments calibrate against simulation when needed.
    fn nominal_service_us(&self) -> f64;
}

/// Replays a fixed trace in a loop forever. Useful for tests and for
/// SPEC-like batch kernels.
#[derive(Debug, Clone)]
pub struct LoopedTrace {
    ops: Vec<MicroOp>,
    pos: usize,
}

impl LoopedTrace {
    /// Creates a looping stream over `ops`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn new(ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "trace must be non-empty");
        Self { ops, pos: 0 }
    }
}

impl InstructionStream for LoopedTrace {
    fn next(&mut self, _now: u64, _rng: &mut SimRng) -> Fetched {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        Fetched::Op(op)
    }
}

/// A finite trace that ends with [`Fetched::Done`].
#[derive(Debug, Clone)]
pub struct FiniteTrace {
    ops: std::vec::IntoIter<MicroOp>,
}

impl FiniteTrace {
    /// Creates a one-shot stream over `ops`.
    #[must_use]
    pub fn new(ops: Vec<MicroOp>) -> Self {
        Self {
            ops: ops.into_iter(),
        }
    }
}

impl InstructionStream for FiniteTrace {
    fn next(&mut self, _now: u64, _rng: &mut SimRng) -> Fetched {
        match self.ops.next() {
            Some(op) => Fetched::Op(op),
            None => Fetched::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::rng::rng_from_seed;

    #[test]
    fn exec_latencies() {
        assert_eq!(Op::IntAlu.exec_latency(), 1);
        assert_eq!(Op::IntMul.exec_latency(), 3);
        assert_eq!(Op::FpAlu.exec_latency(), 4);
    }

    #[test]
    fn classification() {
        assert!(Op::Load { addr: 0 }.is_load());
        assert!(Op::RemoteLoad { latency_us: 1.0 }.is_load());
        assert!(Op::Store { addr: 0 }.is_store());
        assert!(!Op::IntAlu.is_load());
    }

    #[test]
    fn builder_methods() {
        let op = MicroOp::new(0x40, Op::IntAlu).with_srcs(1, 2).with_dst(3);
        assert_eq!(op.srcs, [1, 2]);
        assert_eq!(op.dst, Some(3));
        assert!(op.end_of_request.is_none());
    }

    #[test]
    fn looped_trace_wraps() {
        let mut rng = rng_from_seed(0);
        let mut t = LoopedTrace::new(vec![
            MicroOp::new(0, Op::IntAlu),
            MicroOp::new(4, Op::IntMul),
        ]);
        let pcs: Vec<u64> = (0..5)
            .map(|_| match t.next(0, &mut rng) {
                Fetched::Op(op) => op.pc,
                _ => panic!("looped trace never idles"),
            })
            .collect();
        assert_eq!(pcs, vec![0, 4, 0, 4, 0]);
    }

    #[test]
    fn finite_trace_terminates() {
        let mut rng = rng_from_seed(0);
        let mut t = FiniteTrace::new(vec![MicroOp::new(0, Op::IntAlu)]);
        assert!(matches!(t.next(0, &mut rng), Fetched::Op(_)));
        assert_eq!(t.next(0, &mut rng), Fetched::Done);
        assert_eq!(t.next(0, &mut rng), Fetched::Done);
    }
}
