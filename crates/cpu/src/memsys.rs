//! Per-core memory systems and the master-core's remote path.
//!
//! Each core owns TLBs, L1 I/D caches and an LLC slice ([`MemSys`]). A
//! Duplexity master-core in filler mode reaches the *lender-core's* [`MemSys`]
//! through a [`RemotePath`]: tiny write-through L0 I/D filters plus the ~3
//! extra cycles of the cross-core data path (§III-B3). The L0 D-cache is
//! behaviourally inclusive in the lender L1 — an L0 hit whose line has left
//! the lender L1 is treated as a miss and refilled, which models the paper's
//! forwarded invalidations.
//!
//! µs-scale remote loads (RDMA/NVM) route through the memory system too:
//! when a [`FaultPlan`] is attached via [`MemSys::with_remote_faults`], each
//! remote stall becomes a `duplexity_net` [`Event`](duplexity_net::Event) —
//! subject to drops, timeout/backoff retries, duplication, and slow-replica
//! degradation — before the engine charges its latency.

use duplexity_net::{trace_fault_events, EventKind, FaultPlan};
use duplexity_obs::Tracer;
use duplexity_stats::rng::SimRng;
use duplexity_uarch::cache::{AccessKind, Cache, CacheConfig};
use duplexity_uarch::config::LatencyModel;
use duplexity_uarch::tlb::Tlb;

/// Running totals over the remote-load events a [`MemSys`] has faulted.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RemoteFaultStats {
    /// Remote-load events processed through the fault layer.
    pub events: u64,
    /// Attempts issued (> `events` when drops force retries).
    pub attempts: u64,
    /// Legs lost to drops.
    pub dropped_legs: u64,
    /// Legs degraded by the slow-replica mode.
    pub slowed_legs: u64,
    /// Events abandoned after the attempt cap.
    pub failed: u64,
    /// Sum of raw (pre-fault) stall latencies, µs.
    pub raw_us: f64,
    /// Sum of effective (post-fault) stall latencies, µs.
    pub effective_us: f64,
}

/// One core's private memory system: I/D TLBs, L1 I/D, and an LLC slice.
#[derive(Debug, Clone)]
pub struct MemSys {
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Last-level cache slice.
    pub llc: Cache,
    /// Latency parameters.
    pub lat: LatencyModel,
    /// Next-line data prefetching on L1-D misses (§II: prefetchers help
    /// cacheable streams, though they cannot hide general µs-scale I/O).
    pub next_line_prefetch: bool,
    /// Fault plan applied to µs-scale remote loads; `None` leaves stalls
    /// untouched (and consumes zero extra RNG draws).
    pub remote_faults: Option<FaultPlan>,
    /// Totals over faulted remote loads (all zero without a plan).
    pub remote_fault_stats: RemoteFaultStats,
    /// Event tracer; disabled by default and draws no RNG either way.
    pub tracer: Tracer,
}

impl MemSys {
    /// Builds the Table I memory system (64KB 2-way L1s, 1MB 8-way LLC,
    /// 64-entry TLBs).
    #[must_use]
    pub fn table1(lat: LatencyModel) -> Self {
        Self {
            itlb: Tlb::table1(),
            dtlb: Tlb::table1(),
            l1i: Cache::new(CacheConfig::l1()),
            l1d: Cache::new(CacheConfig::l1()),
            llc: Cache::new(CacheConfig::llc()),
            lat,
            next_line_prefetch: false,
            remote_faults: None,
            remote_fault_stats: RemoteFaultStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; fault events on the remote path are stamped with
    /// the cycle timestamp the engine passes to [`MemSys::remote_stall_us`].
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Enables next-line data prefetching (builder style).
    #[must_use]
    pub fn with_next_line_prefetch(mut self) -> Self {
        self.next_line_prefetch = true;
        self
    }

    /// Attaches a fault plan to µs-scale remote loads (builder style). An
    /// identity plan ([`FaultPlan::is_none`]) is dropped so the engine's
    /// RNG consumption is byte-identical to the plan-free configuration.
    #[must_use]
    pub fn with_remote_faults(mut self, plan: FaultPlan) -> Self {
        self.remote_faults = if plan.is_none() { None } else { Some(plan) };
        self
    }

    /// Passes one remote load's stall through the fault layer and returns
    /// the effective stall, µs. `now` is the issuing engine's cycle clock,
    /// used only to stamp trace events. Without a configured plan this is
    /// the identity and draws nothing from `rng`.
    pub fn remote_stall_us(&mut self, now: u64, raw_us: f64, rng: &mut SimRng) -> f64 {
        let Some(plan) = self.remote_faults else {
            return raw_us;
        };
        let ev = plan.sample_event(EventKind::RemoteMemory, rng, |_| raw_us);
        trace_fault_events(&ev, now, &self.tracer);
        let st = &mut self.remote_fault_stats;
        st.events += 1;
        st.attempts += u64::from(ev.attempts);
        st.dropped_legs += u64::from(ev.dropped_legs);
        st.slowed_legs += u64::from(ev.slowed_legs);
        st.failed += u64::from(!ev.completed);
        st.raw_us += raw_us;
        st.effective_us += ev.latency_us;
        ev.latency_us
    }

    /// Earliest future cycle at which this memory system could change state
    /// on its own: always `None`. The model is demand-driven — caches, TLBs,
    /// and the fault layer mutate only inside an engine-initiated access
    /// (there are no autonomous fills, MSHR retirements, or timers), and
    /// latency charges do not depend on the cycle number. It therefore never
    /// wakes a quiescent core; it exists so outer loops can fold every
    /// subsystem through one protocol.
    #[must_use]
    pub fn next_event_cycle(&self, _from: u64) -> Option<u64> {
        None
    }

    /// Instruction fetch at `addr`; returns total latency in cycles.
    pub fn inst_fetch(&mut self, addr: u64) -> u64 {
        let mut lat = 0;
        if !self.itlb.translate(addr) {
            lat += self.lat.page_walk;
        }
        if self.l1i.access(addr, AccessKind::Read) {
            lat + self.lat.l1_hit
        } else if self.llc.access(addr, AccessKind::Read) {
            lat + self.lat.llc_hit
        } else {
            lat + self.lat.memory
        }
    }

    /// Data access at `addr`; returns total latency in cycles.
    pub fn data_access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        let mut lat = 0;
        if !self.dtlb.translate(addr) {
            lat += self.lat.page_walk;
        }
        let total = if self.l1d.access(addr, kind) {
            lat + self.lat.l1_hit
        } else if self.llc.access(addr, kind) {
            lat + self.lat.llc_hit
        } else {
            lat + self.lat.memory
        };
        // On a demand miss, a next-line prefetcher pulls the following line
        // into L1-D (and LLC) in the background, off the critical path.
        if self.next_line_prefetch && total > lat + self.lat.l1_hit {
            let next = addr + u64::try_from(self.l1d.config().line_bytes).unwrap_or(64);
            if !self.l1d.probe(next) {
                self.l1d.fill_quietly(next);
                self.llc.fill_quietly(next);
            }
        }
        total
    }

    /// Total L1 misses (I + D), a pollution indicator.
    #[must_use]
    pub fn l1_misses(&self) -> u64 {
        self.l1i.stats().misses + self.l1d.stats().misses
    }

    /// Resets all cache and TLB statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.llc.reset_stats();
        self.remote_fault_stats = RemoteFaultStats::default();
    }
}

/// The master-core's filler-mode path into the lender-core's caches:
/// 2KB L0-I and 4KB write-through L0-D filters plus the cross-core hop.
#[derive(Debug, Clone)]
pub struct RemotePath {
    /// L0 instruction filter.
    pub l0i: Cache,
    /// L0 write-through data filter.
    pub l0d: Cache,
}

impl RemotePath {
    /// Builds the §III-B3 L0 filters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            l0i: Cache::new(CacheConfig::l0_inst()),
            l0d: Cache::new(CacheConfig::l0_data()),
        }
    }

    /// Filler-thread instruction fetch: L0-I first, then the lender L1-I over
    /// the cross-core path.
    pub fn inst_fetch(&mut self, lender: &mut MemSys, addr: u64) -> u64 {
        // Behavioural inclusion: an L0 hit only counts if the lender L1 still
        // holds the line (invalidations are forwarded, §III-B3).
        if self.l0i.access(addr, AccessKind::Read) && lender.l1i.probe(addr) {
            return lender.lat.l0_hit;
        }
        self.l0i.access(addr, AccessKind::Read); // ensure fill after forced miss
        lender.lat.remote_l1_extra + lender.inst_fetch(addr)
    }

    /// Filler-thread data access: L0-D first, then the lender L1-D. Writes go
    /// through to the lender (write-through L0).
    pub fn data_access(&mut self, lender: &mut MemSys, addr: u64, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Read => {
                if self.l0d.access(addr, AccessKind::Read) && lender.l1d.probe(addr) {
                    return lender.lat.l0_hit;
                }
                self.l0d.access(addr, AccessKind::Read);
                lender.lat.remote_l1_extra + lender.data_access(addr, AccessKind::Read)
            }
            AccessKind::Write => {
                // Write-through: update L0 (if present) and always the lender.
                self.l0d.access(addr, AccessKind::Write);
                lender.lat.remote_l1_extra + lender.data_access(addr, AccessKind::Write)
            }
        }
    }

    /// Discards both L0s — free because the L0-D is write-through (§III-B4).
    pub fn discard(&mut self) {
        self.l0i.flush_all();
        self.l0d.flush_all();
    }
}

impl Default for RemotePath {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSys {
        MemSys::table1(LatencyModel::default())
    }

    #[test]
    fn fetch_latency_tiers() {
        let mut m = mem();
        let lat = LatencyModel::default();
        let cold = m.inst_fetch(0x1000);
        assert_eq!(cold, lat.page_walk + lat.memory);
        let warm = m.inst_fetch(0x1000);
        assert_eq!(warm, lat.l1_hit);
    }

    #[test]
    fn llc_hit_after_l1_eviction() {
        let mut m = mem();
        let lat = LatencyModel::default();
        m.data_access(0x0, AccessKind::Read);
        // Evict line 0 from the 2-way L1 set by touching 2 conflicting lines.
        let l1_stride = 64 * 1024 / 2; // sets * line = way stride
        m.data_access(l1_stride as u64, AccessKind::Read);
        m.data_access(2 * l1_stride as u64, AccessKind::Read);
        // Line 0 is gone from L1 but (1MB, 8-way) LLC still holds it.
        let l = m.data_access(0x0, AccessKind::Read);
        assert_eq!(l, lat.llc_hit);
    }

    #[test]
    fn next_line_prefetch_halves_sequential_misses() {
        let mut plain = mem();
        let mut pf = MemSys::table1(LatencyModel::default()).with_next_line_prefetch();
        for i in 0..256u64 {
            plain.data_access(0x40_0000 + i * 64, AccessKind::Read);
            pf.data_access(0x40_0000 + i * 64, AccessKind::Read);
        }
        let plain_miss = plain.l1d.stats().misses;
        let pf_miss = pf.l1d.stats().misses;
        // Demand misses: every other line is covered by the prefetcher.
        // (The prefetch fills themselves also count as accesses; compare
        // demand-side latency-visible misses via the miss counts ratio.)
        assert!(
            pf_miss * 3 < plain_miss * 2,
            "prefetcher did not help: {pf_miss} vs {plain_miss}"
        );
    }

    #[test]
    fn prefetch_does_not_touch_random_patterns_much() {
        let mut plain = mem();
        let mut pf = MemSys::table1(LatencyModel::default()).with_next_line_prefetch();
        // Large-stride pattern: next-line prefetches are useless.
        for i in 0..256u64 {
            plain.data_access(0x40_0000 + i * 4096, AccessKind::Read);
            pf.data_access(0x40_0000 + i * 4096, AccessKind::Read);
        }
        assert_eq!(plain.l1d.stats().misses, 256);
        // All demand accesses still miss with the prefetcher (the prefetched
        // lines are never the demanded ones).
        let pf_demand_misses = 256; // every demanded line is new
        let _ = pf_demand_misses;
        assert!(pf.l1d.stats().misses >= 256);
    }

    #[test]
    fn remote_path_cold_and_warm() {
        let lat = LatencyModel::default();
        let mut lender = mem();
        let mut rp = RemotePath::new();
        let cold = rp.data_access(&mut lender, 0x4000, AccessKind::Read);
        assert_eq!(cold, lat.remote_l1_extra + lat.page_walk + lat.memory);
        // Second access hits the L0 filter at 1 cycle.
        let warm = rp.data_access(&mut lender, 0x4000, AccessKind::Read);
        assert_eq!(warm, lat.l0_hit);
    }

    #[test]
    fn l0_inclusion_forces_refill_after_lender_eviction() {
        let mut lender = mem();
        let mut rp = RemotePath::new();
        rp.data_access(&mut lender, 0x0, AccessKind::Read);
        assert_eq!(
            rp.data_access(&mut lender, 0x0, AccessKind::Read),
            lender.lat.l0_hit
        );
        // Evict the line from the lender L1 behind the L0's back.
        lender.l1d.invalidate(0x0);
        let lat = rp.data_access(&mut lender, 0x0, AccessKind::Read);
        assert!(lat > lender.lat.l0_hit, "stale L0 hit must be rejected");
    }

    #[test]
    fn writes_always_reach_lender() {
        let mut lender = mem();
        let mut rp = RemotePath::new();
        rp.data_access(&mut lender, 0x2000, AccessKind::Write);
        assert!(lender.l1d.probe(0x2000));
        // And again: still goes through (write-through, no dirty L0 state).
        let l = rp.data_access(&mut lender, 0x2000, AccessKind::Write);
        assert!(l >= lender.lat.remote_l1_extra + lender.lat.l1_hit);
    }

    #[test]
    fn discard_is_instant_and_total() {
        let mut lender = mem();
        let mut rp = RemotePath::new();
        for i in 0..16u64 {
            rp.data_access(&mut lender, i * 64, AccessKind::Read);
        }
        rp.discard();
        assert_eq!(rp.l0d.resident_lines(), 0);
        assert_eq!(rp.l0i.resident_lines(), 0);
    }

    #[test]
    fn remote_stalls_pass_through_without_a_plan() {
        use duplexity_stats::rng::rng_from_seed;
        let mut m = mem();
        let mut a = rng_from_seed(31);
        let b = rng_from_seed(31);
        assert_eq!(m.remote_stall_us(0, 1.25, &mut a), 1.25);
        assert_eq!(a, b, "identity path must not draw from the RNG");
        assert_eq!(m.remote_fault_stats, RemoteFaultStats::default());
        // An identity plan is dropped entirely by the builder.
        let m2 = mem().with_remote_faults(FaultPlan::none());
        assert!(m2.remote_faults.is_none());
    }

    #[test]
    fn remote_faults_retry_and_account() {
        use duplexity_net::RetryPolicy;
        use duplexity_stats::rng::rng_from_seed;
        let plan = FaultPlan::none()
            .with_drop(0.5)
            .with_retry(RetryPolicy::new(4, 10.0, 2.0, 16.0));
        let mut m = mem().with_remote_faults(plan);
        let mut rng = rng_from_seed(37);
        let mut total = 0.0;
        for _ in 0..4_000 {
            total += m.remote_stall_us(0, 1.0, &mut rng);
        }
        let st = m.remote_fault_stats;
        assert_eq!(st.events, 4_000);
        assert!(st.attempts > st.events, "p=0.5 must force retries");
        assert!(st.dropped_legs > 0);
        assert_eq!(st.raw_us, 4_000.0);
        assert!(
            st.effective_us > st.raw_us,
            "timeouts must inflate the stall total"
        );
        assert_eq!(total, st.effective_us);
        // Deterministic closed form: E[T] for constant 1µs legs.
        let expect = plan.effective_mean_bound_us(1.0);
        let mean = total / 4_000.0;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs analytic {expect}"
        );
        m.reset_stats();
        assert_eq!(m.remote_fault_stats, RemoteFaultStats::default());
    }

    #[test]
    fn master_and_filler_paths_are_isolated() {
        // The defining Duplexity property (§III-B): filler accesses touch the
        // lender MemSys, never the master's.
        let mut master = mem();
        let mut lender = mem();
        let mut rp = RemotePath::new();
        master.data_access(0x8000, AccessKind::Read);
        rp.data_access(&mut lender, 0x8000, AccessKind::Read);
        let before = master.l1d.stats().misses;
        // A torrent of filler traffic...
        for i in 0..1000u64 {
            rp.data_access(&mut lender, 0x10_0000 + i * 64, AccessKind::Read);
        }
        // ...does not add a single master L1 miss.
        master.data_access(0x8000, AccessKind::Read);
        assert_eq!(master.l1d.stats().misses, before);
    }
}
