//! Cycle-level CPU models for the Duplexity reproduction.
//!
//! This crate plays the role gem5 plays in the paper (§V): it provides the
//! cycle-level core models whose IPC and utilization feed every efficiency
//! figure. It contains:
//!
//! * [`op`] — the micro-op trace model that workload kernels emit;
//! * [`memsys`] — a per-core memory system (TLBs, L1 I/D, LLC slice) plus the
//!   master-core's L0-filtered *remote* path into the lender-core's L1s;
//! * [`ooo`] — a 4-wide out-of-order engine with ROB/PRF/LQ/SQ/IQ occupancy
//!   limits, tournament branch prediction, and optional SMT with ICOUNT
//!   fetch and SMT+ resource partitioning;
//! * [`inorder`] — the 8-way in-order SMT engine used by lender-cores and by
//!   morphed master-cores;
//! * [`pool`] — the HSMT virtual-context run queue shared across a dyad;
//! * [`request`] — open-loop request generation (Poisson arrivals, FCFS) that
//!   turns workload kernels into master-thread instruction streams with
//!   µs-scale idle periods;
//! * [`traceio`] — trace capture and a stable binary format, supporting the
//!   paper's trace-based filler-thread methodology;
//! * [`dyad`] — the co-simulation of a master-core and lender-core, including
//!   morph transitions, state segregation, and fast filler eviction;
//! * [`designs`] — the seven evaluated server designs of §V.
//!
//! The engines are *trace-driven*: workload kernels (crate
//! `duplexity-workloads`) emit micro-ops with real address and branch
//! streams, and the engines schedule them against structural limits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod dyad;
pub mod inorder;
pub mod memsys;
pub mod metrics;
pub mod ooo;
pub mod op;
pub mod pool;
pub mod request;
pub mod traceio;

pub use designs::{run_design, run_design_traced, Design, DesignMetrics, Scenario};
pub use dyad::DyadSim;
pub use inorder::InoEngine;
pub use memsys::{MemSys, RemotePath};
pub use metrics::{EngineStats, UarchStats};
pub use ooo::{FetchPolicy, OooEngine, SmtPartition};
pub use op::{Fetched, InstructionStream, MicroOp, Op, RequestKernel};
pub use pool::{ContextPool, VirtualContext};
pub use request::RequestStream;
pub use traceio::Trace;
