//! The in-order SMT / HSMT engine.
//!
//! This is the lender-core datapath of §III-A — an 8-context, 4-wide-issue
//! in-order SMT core — and also the master-core's filler mode after a morph
//! (§III-B1). With HSMT enabled, a physical context that issues a µs-scale
//! remote access parks its virtual context in the dyad's [`ContextPool`] and
//! loads the head of the run queue, paying a register-swap latency; contexts
//! are also rotated on a 100µs quantum for starvation avoidance (§IV).
//!
//! Memory accesses go either to the engine's own core-local [`MemSys`] or —
//! for borrowed filler-threads on a Duplexity master-core — through a
//! [`RemotePath`] into the lender's [`MemSys`].

use crate::memsys::{MemSys, RemotePath};
use crate::metrics::EngineStats;
use crate::op::{Fetched, InstructionStream, MicroOp, Op, NO_REG};
use crate::pool::{ContextPool, VirtualContext};
use duplexity_obs::{RemoteKind, ReturnReason, ThreadTag, TraceEvent, Tracer};
use duplexity_stats::rng::SimRng;
use duplexity_uarch::branch::{BranchPredictor, PredictorKind};
use duplexity_uarch::cache::AccessKind;

/// Default HSMT scheduling quantum (§IV: 100 µs) in microseconds.
pub const QUANTUM_US: f64 = 100.0;

struct PhysCtx {
    vctx: Option<VirtualContext>,
    pending: Option<MicroOp>,
    blocked_until: u64,
    quantum_end: u64,
    last_line: u64,
}

impl PhysCtx {
    fn empty() -> Self {
        Self {
            vctx: None,
            pending: None,
            blocked_until: 0,
            quantum_end: u64::MAX,
            last_line: u64::MAX,
        }
    }
}

impl std::fmt::Debug for PhysCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysCtx")
            .field("occupied", &self.vctx.is_some())
            .field("blocked_until", &self.blocked_until)
            .finish()
    }
}

/// An in-order SMT engine with optional HSMT virtual-context swapping.
///
/// # Examples
///
/// A lender-core multiplexing a pool of virtual contexts:
///
/// ```
/// use duplexity_cpu::inorder::InoEngine;
/// use duplexity_cpu::memsys::MemSys;
/// use duplexity_cpu::op::{LoopedTrace, MicroOp, Op};
/// use duplexity_cpu::pool::{ContextPool, VirtualContext};
/// use duplexity_stats::rng::rng_from_seed;
/// use duplexity_uarch::config::LatencyModel;
///
/// let mut lender = InoEngine::lender(3400.0, 64);
/// let mut pool = ContextPool::new();
/// for id in 0..16 {
///     let base = 0x1000 * id as u64;
///     let ops: Vec<MicroOp> =
///         (0..32).map(|i| MicroOp::new(base + i * 4, Op::IntAlu).with_dst(0)).collect();
///     pool.add(VirtualContext::new(id, Box::new(LoopedTrace::new(ops))));
/// }
/// let mut mem = MemSys::table1(LatencyModel::default());
/// let mut rng = rng_from_seed(2);
/// for now in 0..1_000 {
///     lender.step(now, &mut mem, None, Some(&mut pool), &mut rng);
/// }
/// assert!(lender.stats().retired_total() > 0);
/// ```
#[derive(Debug)]
pub struct InoEngine {
    width: usize,
    contexts: Vec<PhysCtx>,
    predictor: Box<dyn BranchPredictor>,
    hsmt: bool,
    cycles_per_us: f64,
    swap_latency: u64,
    quantum_cycles: u64,
    mispredict_penalty: u64,
    l1_hit: u64,
    rr_next: usize,
    stats: EngineStats,
    retired_by_ctx: Vec<u64>,
    tracer: Tracer,
    tag: ThreadTag,
}

impl InoEngine {
    /// Creates an engine with `physical_contexts` contexts and `width` total
    /// issue slots per cycle.
    ///
    /// `swap_latency` is the cycle cost of moving a virtual context in or out
    /// of a physical context (only charged when `hsmt` is true).
    #[must_use]
    pub fn new(
        physical_contexts: usize,
        width: usize,
        hsmt: bool,
        cycles_per_us: f64,
        swap_latency: u64,
    ) -> Self {
        Self {
            width,
            contexts: (0..physical_contexts).map(|_| PhysCtx::empty()).collect(),
            predictor: PredictorKind::Gshare8k.build(),
            hsmt,
            cycles_per_us,
            swap_latency,
            quantum_cycles: (QUANTUM_US * cycles_per_us) as u64,
            mispredict_penalty: 8, // shorter in-order pipeline
            l1_hit: 3,
            rr_next: 0,
            stats: EngineStats::default(),
            retired_by_ctx: Vec::new(),
            tracer: Tracer::disabled(),
            tag: ThreadTag::Lender,
        }
    }

    /// Attaches a tracer; stall spans and borrow/return events are stamped
    /// `tag` (lender-core vs. morphed master-core filler mode). Consumes no
    /// RNG draws.
    pub fn set_tracer(&mut self, tracer: &Tracer, tag: ThreadTag) {
        self.tracer = tracer.clone();
        self.tag = tag;
    }

    /// The lender-core organization: 8-context, 4-wide, HSMT (Table I).
    #[must_use]
    pub fn lender(cycles_per_us: f64, swap_latency: u64) -> Self {
        Self::new(8, 4, true, cycles_per_us, swap_latency)
    }

    /// Pins a thread permanently to a free physical context (plain SMT, used
    /// by MorphCore's dedicated filler threads and by the Fig. 2(a)
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics if all physical contexts are occupied.
    pub fn add_fixed_context(&mut self, id: usize, stream: Box<dyn InstructionStream>) {
        let slot = self
            .contexts
            .iter_mut()
            .find(|c| c.vctx.is_none())
            .expect("no free physical context");
        slot.vctx = Some(VirtualContext::new(id, stream));
        slot.quantum_end = u64::MAX;
    }

    /// Number of occupied physical contexts.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.contexts.iter().filter(|c| c.vctx.is_some()).count()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Retired micro-ops per virtual-context id (for STP).
    #[must_use]
    pub fn retired_by_ctx(&self) -> &[u64] {
        &self.retired_by_ctx
    }

    /// Squashes all front-end state (pending ops, fetch blocks) while keeping
    /// pinned contexts resident. Used when a plain MorphCore pauses its
    /// dedicated fillers on a mode switch back to OoO.
    pub fn squash_frontend(&mut self) {
        for c in &mut self.contexts {
            c.pending = None;
            c.blocked_until = 0;
            c.last_line = u64::MAX;
        }
    }

    /// Evicts every resident virtual context back to `pool` (filler eviction
    /// on master-thread resume, §III-B4). In-flight unissued ops are
    /// squashed. `now` stamps the filler-return trace events. Returns the
    /// number of contexts evicted.
    pub fn evict_all(&mut self, now: u64, pool: &mut ContextPool) -> usize {
        let mut n = 0;
        for c in &mut self.contexts {
            if let Some(v) = c.vctx.take() {
                let ctx = v.id as u64;
                self.tracer.emit(|| TraceEvent::FillerReturn {
                    at: now,
                    ctx,
                    reason: ReturnReason::Evict,
                });
                pool.put_back(v);
                n += 1;
            }
            c.pending = None;
            c.blocked_until = 0;
            c.quantum_end = u64::MAX;
            c.last_line = u64::MAX;
        }
        n
    }

    /// Earliest cycle `t >= from` at which [`InoEngine::step`] could change
    /// architectural state, given the same `pool` visibility the next step
    /// will get: a borrow from the ready queue, a quantum rotation (or
    /// extension — both mutate), a pending-buffer refill (`stream.next`,
    /// possibly an RNG draw), an instruction-line fetch, or an issue.
    ///
    /// `Some(from)` means "not quiescent". `Some(t > from)` guarantees
    /// cycles `from..t` step to no-ops beyond the cycle counter, foldable
    /// with [`InoEngine::skip_quiescent`]. `None` means no step can ever
    /// act again (all contexts empty, nothing parked, nothing ready).
    #[must_use]
    pub fn next_event_cycle(&self, from: u64, pool: Option<&ContextPool>) -> Option<u64> {
        let mut best: Option<u64> = None;
        let bump = |best: &mut Option<u64>, t: u64| {
            *best = Some(best.map_or(t, |b| b.min(t)));
        };
        // A parked context coming due is polled into the ready queue.
        if let Some(p) = pool {
            match p.next_event_cycle(from) {
                Some(t) if t <= from => return Some(from),
                Some(t) => bump(&mut best, t),
                None => {}
            }
        }
        let pool_ready = pool.is_some_and(|p| p.ready_len() > 0);
        for c in &self.contexts {
            let Some(v) = c.vctx.as_ref() else {
                if self.hsmt && pool_ready {
                    return Some(from); // would borrow into this slot
                }
                continue;
            };
            // The quantum check precedes the blocked check in `step`, and
            // even the "nobody waiting" branch mutates (it extends the
            // quantum), so expiry is always an event.
            if self.hsmt && pool.is_some() && c.quantum_end != u64::MAX {
                if c.quantum_end <= from {
                    return Some(from);
                }
                bump(&mut best, c.quantum_end);
            }
            if c.blocked_until > from {
                bump(&mut best, c.blocked_until);
                continue;
            }
            let Some(op) = c.pending.as_ref() else {
                return Some(from); // refill: stream.next may draw RNG
            };
            // The per-line instruction fetch happens *before* the RAW check
            // and touches the caches even when the op then stalls.
            if (op.pc >> 6) != c.last_line {
                return Some(from);
            }
            // In-order RAW gate: ready ops issue now; otherwise the oldest
            // op wakes when its last source completes.
            let ready_at = op
                .srcs
                .iter()
                .filter(|&&s| s != NO_REG)
                .map(|&s| v.reg_ready[s as usize])
                .max()
                .unwrap_or(0);
            if ready_at <= from {
                return Some(from);
            }
            bump(&mut best, ready_at);
        }
        best
    }

    /// Folds `count` provably quiescent cycles starting at the current
    /// cycle, exactly as if [`InoEngine::step`] had run each one: the cycle
    /// counter and the round-robin pointer advance; nothing else moves.
    /// Callers must only pass spans vouched for by
    /// [`InoEngine::next_event_cycle`].
    pub fn skip_quiescent(&mut self, count: u64) {
        self.stats.cycles += count;
        let n = self.contexts.len() as u64;
        if n > 0 {
            self.rr_next = ((self.rr_next as u64 + count % n) % n) as usize;
        }
    }

    /// Advances one cycle. `remote` routes memory through the master-core's
    /// L0 filters into `mem` (the *lender's* memory system); `pool` supplies
    /// virtual contexts when HSMT is enabled.
    pub fn step(
        &mut self,
        now: u64,
        mem: &mut MemSys,
        mut remote: Option<&mut RemotePath>,
        mut pool: Option<&mut ContextPool>,
        rng: &mut SimRng,
    ) {
        self.stats.cycles += 1;
        if let Some(p) = pool.as_deref_mut() {
            p.poll(now);
        }
        let n = self.contexts.len();
        let mut slots = self.width;
        let mut mem_slots = 2usize;

        'contexts: for k in 0..n {
            let i = (self.rr_next + k) % n;
            // Refill an empty physical context from the pool.
            if self.contexts[i].vctx.is_none() {
                if self.hsmt {
                    if let Some(p) = pool.as_deref_mut() {
                        if let Some(v) = p.take() {
                            let ctx = v.id as u64;
                            self.tracer
                                .emit(|| TraceEvent::FillerBorrow { at: now, ctx });
                            let c = &mut self.contexts[i];
                            c.vctx = Some(v);
                            c.blocked_until = now + self.swap_latency;
                            c.quantum_end = now + self.swap_latency + self.quantum_cycles;
                            c.last_line = u64::MAX;
                        }
                    }
                }
                continue;
            }
            // Quantum rotation (only if someone is waiting).
            if self.hsmt && now >= self.contexts[i].quantum_end {
                if let Some(p) = pool.as_deref_mut() {
                    if p.ready_len() > 0 {
                        let c = &mut self.contexts[i];
                        let v = c.vctx.take().expect("occupied");
                        let ctx = v.id as u64;
                        self.tracer.emit(|| TraceEvent::FillerReturn {
                            at: now,
                            ctx,
                            reason: ReturnReason::Quantum,
                        });
                        p.put_back(v);
                        c.pending = None;
                        c.blocked_until = now + self.swap_latency;
                        c.quantum_end = u64::MAX;
                        c.last_line = u64::MAX;
                        continue;
                    }
                    // Nobody waiting: extend the quantum.
                    self.contexts[i].quantum_end = now + self.quantum_cycles;
                }
            }

            // Issue consecutive ready ops from this context.
            loop {
                if slots == 0 {
                    break 'contexts;
                }
                if self.contexts[i].blocked_until > now {
                    break;
                }
                // Fill the pending buffer.
                if self.contexts[i].pending.is_none() {
                    let fetched = {
                        let c = &mut self.contexts[i];
                        let v = c.vctx.as_mut().expect("occupied");
                        v.stream.next(now, rng)
                    };
                    match fetched {
                        Fetched::Op(op) => self.contexts[i].pending = Some(op),
                        Fetched::IdleUntil(c_at) => {
                            // Batch thread briefly out of work: park it.
                            let c = &mut self.contexts[i];
                            if self.hsmt {
                                if let Some(p) = pool.as_deref_mut() {
                                    let v = c.vctx.take().expect("occupied");
                                    let ctx = v.id as u64;
                                    self.tracer.emit(|| TraceEvent::FillerReturn {
                                        at: now,
                                        ctx,
                                        reason: ReturnReason::Idle,
                                    });
                                    p.park(v, c_at);
                                    c.blocked_until = now + self.swap_latency;
                                    c.quantum_end = u64::MAX;
                                    break;
                                }
                            }
                            c.blocked_until = c_at;
                            break;
                        }
                        Fetched::Done => {
                            self.contexts[i].vctx = None;
                            break;
                        }
                    }
                }
                let op = self.contexts[i].pending.expect("just filled");

                // Instruction fetch per line.
                let line = op.pc >> 6;
                if line != self.contexts[i].last_line {
                    let lat = match remote.as_deref_mut() {
                        Some(rp) => rp.inst_fetch(mem, op.pc),
                        None => mem.inst_fetch(op.pc),
                    };
                    self.contexts[i].last_line = line;
                    if lat > self.l1_hit {
                        self.contexts[i].blocked_until = now + lat;
                        break;
                    }
                }

                // In-order RAW check.
                let ready = {
                    let v = self.contexts[i].vctx.as_ref().expect("occupied");
                    op.srcs
                        .iter()
                        .all(|&s| s == NO_REG || v.reg_ready[s as usize] <= now)
                };
                if !ready {
                    break;
                }
                if matches!(op.op, Op::Load { .. } | Op::Store { .. }) && mem_slots == 0 {
                    break;
                }

                // Issue.
                self.contexts[i].pending = None;
                let complete = match op.op {
                    Op::Load { addr } => {
                        mem_slots -= 1;
                        let lat = match remote.as_deref_mut() {
                            Some(rp) => rp.data_access(mem, addr, AccessKind::Read),
                            None => mem.data_access(addr, AccessKind::Read),
                        };
                        now + lat.max(1)
                    }
                    Op::Store { addr } => {
                        mem_slots -= 1;
                        match remote.as_deref_mut() {
                            Some(rp) => {
                                rp.data_access(mem, addr, AccessKind::Write);
                            }
                            None => {
                                mem.data_access(addr, AccessKind::Write);
                            }
                        }
                        now + 1
                    }
                    Op::RemoteLoad { latency_us } => {
                        self.stats.remote_ops += 1;
                        // The fault layer may retry/duplicate/degrade the
                        // remote access (identity without a plan).
                        let eff = mem.remote_stall_us(now, latency_us, rng);
                        let done = now + (eff * self.cycles_per_us).round().max(1.0) as u64;
                        let tag = self.tag;
                        self.tracer.emit(|| TraceEvent::StallBegin {
                            at: now,
                            kind: RemoteKind::RemoteMemory,
                            tag,
                        });
                        self.tracer.emit(|| TraceEvent::StallEnd {
                            at: done,
                            kind: RemoteKind::RemoteMemory,
                            tag,
                        });
                        done
                    }
                    Op::Branch { taken, .. } => {
                        self.stats.branches += 1;
                        let predicted = self.predictor.predict(op.pc);
                        self.predictor.update(op.pc, taken);
                        if predicted != taken {
                            self.stats.mispredicts += 1;
                            self.contexts[i].blocked_until = now + 1 + self.mispredict_penalty;
                        }
                        now + 1
                    }
                    ref o => now + o.exec_latency(),
                };

                let ctx_id = {
                    let v = self.contexts[i].vctx.as_mut().expect("occupied");
                    if let Some(dst) = op.dst {
                        v.reg_ready[dst as usize] = complete;
                    }
                    v.id
                };
                self.stats.retired_secondary += 1;
                if ctx_id >= self.retired_by_ctx.len() {
                    self.retired_by_ctx.resize(ctx_id + 1, 0);
                }
                self.retired_by_ctx[ctx_id] += 1;
                slots -= 1;

                // HSMT: a µs-scale stall swaps the context out.
                if let Op::RemoteLoad { .. } = op.op {
                    if self.hsmt {
                        if let Some(p) = pool.as_deref_mut() {
                            let c = &mut self.contexts[i];
                            let v = c.vctx.take().expect("occupied");
                            let ctx = v.id as u64;
                            self.tracer.emit(|| TraceEvent::FillerReturn {
                                at: now,
                                ctx,
                                reason: ReturnReason::Stall,
                            });
                            p.park(v, complete);
                            c.pending = None;
                            c.blocked_until = now + self.swap_latency;
                            c.quantum_end = u64::MAX;
                            break;
                        }
                    }
                    // Plain SMT: the context keeps its slot and simply blocks
                    // when a dependent op arrives (reg_ready gate).
                }
            }
        }
        self.rr_next = (self.rr_next + 1) % n.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{LoopedTrace, MicroOp};
    use duplexity_stats::rng::rng_from_seed;
    use duplexity_uarch::config::LatencyModel;

    fn mem() -> MemSys {
        MemSys::table1(LatencyModel::default())
    }

    fn alu_loop(base: u64, dep_chain: bool) -> Vec<MicroOp> {
        (0..64)
            .map(|i| {
                let op = MicroOp::new(base + i * 4, Op::IntAlu);
                if dep_chain {
                    op.with_srcs(0, NO_REG).with_dst(0)
                } else {
                    op.with_dst((i % 16) as u8)
                }
            })
            .collect()
    }

    fn run(e: &mut InoEngine, m: &mut MemSys, cycles: u64) {
        let mut rng = rng_from_seed(7);
        for now in 0..cycles {
            e.step(now, m, None, None, &mut rng);
        }
    }

    #[test]
    fn eight_dep_chains_saturate_four_wide_issue() {
        // Each thread is a serial chain (IPC 1 alone); 8 threads on a 4-wide
        // in-order core reach ~4 IPC — the §III-A observation that the
        // OoO/InO gap vanishes at ~8 threads.
        let mut e = InoEngine::new(8, 4, false, 3400.0, 64);
        for t in 0..8 {
            e.add_fixed_context(
                t,
                Box::new(LoopedTrace::new(alu_loop(t as u64 * 4096, true))),
            );
        }
        let mut m = mem();
        run(&mut e, &mut m, 20_000);
        let ipc = e.stats().ipc();
        assert!(ipc > 3.0, "ipc {ipc}");
    }

    #[test]
    fn single_dep_chain_is_ipc_one() {
        let mut e = InoEngine::new(8, 4, false, 3400.0, 64);
        e.add_fixed_context(0, Box::new(LoopedTrace::new(alu_loop(0, true))));
        let mut m = mem();
        run(&mut e, &mut m, 20_000);
        let ipc = e.stats().ipc();
        assert!(ipc <= 1.05 && ipc > 0.8, "ipc {ipc}");
    }

    #[test]
    fn hsmt_hides_remote_stalls_with_enough_contexts() {
        // Threads stall 1µs per ~30 ALU ops. 8 physical contexts alone
        // starve; a 24-deep virtual-context pool keeps issue busy.
        let make = |id: usize| {
            let mut ops = alu_loop(id as u64 * 8192, true);
            ops.push(
                MicroOp::new(id as u64 * 8192 + 4096, Op::RemoteLoad { latency_us: 1.0 })
                    .with_dst(0),
            );
            LoopedTrace::new(ops)
        };

        // No HSMT: 8 fixed threads that block on stalls.
        let mut plain = InoEngine::new(8, 4, false, 3400.0, 64);
        for t in 0..8 {
            plain.add_fixed_context(t, Box::new(make(t)));
        }
        let mut m1 = mem();
        run(&mut plain, &mut m1, 100_000);

        // HSMT with 32 virtual contexts.
        let mut rng = rng_from_seed(9);
        let mut hsmt = InoEngine::lender(3400.0, 64);
        let mut pool = ContextPool::new();
        for t in 0..32 {
            pool.add(VirtualContext::new(t, Box::new(make(t))));
        }
        let mut m2 = mem();
        for now in 0..100_000 {
            hsmt.step(now, &mut m2, None, Some(&mut pool), &mut rng);
        }

        let plain_ipc = plain.stats().ipc();
        let hsmt_ipc = hsmt.stats().ipc();
        assert!(
            hsmt_ipc > 2.0 * plain_ipc,
            "plain {plain_ipc} vs hsmt {hsmt_ipc}"
        );
    }

    #[test]
    fn quantum_rotates_contexts() {
        // 9 contexts for 8 slots; with the 100µs quantum all 9 make progress.
        let mut e = InoEngine::lender(3400.0, 64);
        let mut pool = ContextPool::new();
        for t in 0..9 {
            pool.add(VirtualContext::new(
                t,
                Box::new(LoopedTrace::new(alu_loop(t as u64 * 4096, true))),
            ));
        }
        let mut m = mem();
        let mut rng = rng_from_seed(11);
        // > 2 quanta.
        for now in 0..800_000u64 {
            e.step(now, &mut m, None, Some(&mut pool), &mut rng);
        }
        let per = e.retired_by_ctx();
        assert_eq!(per.len(), 9);
        for (id, &r) in per.iter().enumerate() {
            assert!(r > 0, "context {id} starved");
        }
    }

    #[test]
    fn evict_all_returns_contexts() {
        let mut e = InoEngine::lender(3400.0, 64);
        let mut pool = ContextPool::new();
        for t in 0..8 {
            pool.add(VirtualContext::new(
                t,
                Box::new(LoopedTrace::new(alu_loop(t as u64 * 4096, false))),
            ));
        }
        let mut m = mem();
        let mut rng = rng_from_seed(13);
        for now in 0..1000u64 {
            e.step(now, &mut m, None, Some(&mut pool), &mut rng);
        }
        assert!(e.occupied() > 0);
        let evicted = e.evict_all(1000, &mut pool);
        assert_eq!(evicted, 8);
        assert_eq!(e.occupied(), 0);
        assert_eq!(pool.len(), 8);
    }

    #[test]
    fn remote_path_is_used_when_provided() {
        let mut e = InoEngine::new(8, 4, false, 3400.0, 64);
        let ops: Vec<MicroOp> = (0..32)
            .map(|i| {
                MicroOp::new(
                    i * 4,
                    Op::Load {
                        addr: 0x9000 + i * 64,
                    },
                )
            })
            .collect();
        e.add_fixed_context(0, Box::new(LoopedTrace::new(ops)));
        let mut lender_mem = mem();
        let mut rp = RemotePath::new();
        let mut rng = rng_from_seed(17);
        for now in 0..5000u64 {
            e.step(now, &mut lender_mem, Some(&mut rp), None, &mut rng);
        }
        // The traffic landed in the lender L1, and the L0 saw accesses.
        assert!(lender_mem.l1d.stats().accesses() > 0);
        assert!(rp.l0d.stats().accesses() > 0);
    }
}
