//! Trace capture and (de)serialization.
//!
//! §V: "For the scale-out workloads running on filler-threads, we determine
//! the throughput of multi-threaded workloads on the in-order
//! master-/lender-cores through trace-based simulation." This module makes
//! that workflow a first-class artifact: capture any [`InstructionStream`]'s
//! dynamic micro-ops into a [`Trace`], persist it in a compact binary format,
//! and replay it later — identically, on any engine.
//!
//! The binary format is a little-endian tag/payload encoding (one byte of op
//! tag, fixed-width fields), independent of `serde`, so traces are stable
//! across library versions and cheap to stream.

use crate::op::{Fetched, InstructionStream, LoopedTrace, MicroOp, Op, NO_REG};
use duplexity_stats::rng::SimRng;
use std::io::{self, Read, Write};

/// Magic bytes identifying a Duplexity trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"DPXT";
/// Current format version.
pub const TRACE_VERSION: u8 = 1;

/// A captured dynamic micro-op trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    ops: Vec<MicroOp>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps existing micro-ops.
    #[must_use]
    pub fn from_ops(ops: Vec<MicroOp>) -> Self {
        Self { ops }
    }

    /// Captures up to `max_ops` ops from `stream` (stops early on
    /// [`Fetched::Done`]; idle gaps are skipped, since a trace has no clock).
    pub fn capture(stream: &mut dyn InstructionStream, max_ops: usize, rng: &mut SimRng) -> Self {
        let mut ops = Vec::with_capacity(max_ops.min(1 << 16));
        let mut now = 0u64;
        while ops.len() < max_ops {
            match stream.next(now, rng) {
                Fetched::Op(op) => ops.push(op),
                Fetched::IdleUntil(at) => now = at.max(now + 1),
                Fetched::Done => break,
            }
        }
        Self { ops }
    }

    /// The captured ops.
    #[must_use]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of captured ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Turns the trace into a looping replay stream.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn into_looped_stream(self) -> LoopedTrace {
        LoopedTrace::new(self.ops)
    }

    /// Writes the trace in the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&TRACE_MAGIC)?;
        w.write_all(&[TRACE_VERSION])?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            encode_op(&mut w, op)?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic, unsupported version, or a
    /// malformed record.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a Duplexity trace",
            ));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != TRACE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", version[0]),
            ));
        }
        let mut len = [0u8; 8];
        r.read_exact(&mut len)?;
        let n = u64::from_le_bytes(len) as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            ops.push(decode_op(&mut r)?);
        }
        Ok(Self { ops })
    }
}

const TAG_INT_ALU: u8 = 0;
const TAG_INT_MUL: u8 = 1;
const TAG_FP_ALU: u8 = 2;
const TAG_LOAD: u8 = 3;
const TAG_STORE: u8 = 4;
const TAG_BRANCH_TAKEN: u8 = 5;
const TAG_BRANCH_NOT_TAKEN: u8 = 6;
const TAG_REMOTE: u8 = 7;

fn encode_op<W: Write>(w: &mut W, op: &MicroOp) -> io::Result<()> {
    let (tag, payload): (u8, u64) = match op.op {
        Op::IntAlu => (TAG_INT_ALU, 0),
        Op::IntMul => (TAG_INT_MUL, 0),
        Op::FpAlu => (TAG_FP_ALU, 0),
        Op::Load { addr } => (TAG_LOAD, addr),
        Op::Store { addr } => (TAG_STORE, addr),
        Op::Branch { taken, target } => (
            if taken {
                TAG_BRANCH_TAKEN
            } else {
                TAG_BRANCH_NOT_TAKEN
            },
            target,
        ),
        Op::RemoteLoad { latency_us } => (TAG_REMOTE, latency_us.to_bits()),
    };
    w.write_all(&[tag, op.srcs[0], op.srcs[1], op.dst.unwrap_or(NO_REG)])?;
    w.write_all(&op.pc.to_le_bytes())?;
    w.write_all(&payload.to_le_bytes())?;
    // end_of_request: present flag + arrival.
    match op.end_of_request {
        Some(arrival) => {
            w.write_all(&[1])?;
            w.write_all(&arrival.to_le_bytes())
        }
        None => w.write_all(&[0]),
    }
}

fn decode_op<R: Read>(r: &mut R) -> io::Result<MicroOp> {
    let mut head = [0u8; 4];
    r.read_exact(&mut head)?;
    let mut pc = [0u8; 8];
    r.read_exact(&mut pc)?;
    let mut payload = [0u8; 8];
    r.read_exact(&mut payload)?;
    let pc = u64::from_le_bytes(pc);
    let payload = u64::from_le_bytes(payload);
    let op = match head[0] {
        TAG_INT_ALU => Op::IntAlu,
        TAG_INT_MUL => Op::IntMul,
        TAG_FP_ALU => Op::FpAlu,
        TAG_LOAD => Op::Load { addr: payload },
        TAG_STORE => Op::Store { addr: payload },
        TAG_BRANCH_TAKEN => Op::Branch {
            taken: true,
            target: payload,
        },
        TAG_BRANCH_NOT_TAKEN => Op::Branch {
            taken: false,
            target: payload,
        },
        TAG_REMOTE => Op::RemoteLoad {
            latency_us: f64::from_bits(payload),
        },
        t => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad op tag {t}"),
            ))
        }
    };
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let end_of_request = if flag[0] == 1 {
        let mut arrival = [0u8; 8];
        r.read_exact(&mut arrival)?;
        Some(u64::from_le_bytes(arrival))
    } else {
        None
    };
    Ok(MicroOp {
        pc,
        op,
        srcs: [head[1], head[2]],
        dst: (head[3] != NO_REG).then_some(head[3]),
        end_of_request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::rng::rng_from_seed;

    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::new(0x40, Op::IntAlu).with_srcs(1, 2).with_dst(3),
            MicroOp::new(0x44, Op::Load { addr: 0xDEAD_BEE0 }).with_dst(4),
            MicroOp::new(0x48, Op::Store { addr: 0x1234 }).with_srcs(4, NO_REG),
            MicroOp::new(
                0x4C,
                Op::Branch {
                    taken: true,
                    target: 0x80,
                },
            ),
            MicroOp::new(
                0x50,
                Op::Branch {
                    taken: false,
                    target: 0x90,
                },
            ),
            MicroOp::new(0x54, Op::RemoteLoad { latency_us: 1.5 }).with_dst(5),
            MicroOp::new(0x58, Op::IntMul).with_srcs(3, 5).with_dst(6),
            {
                let mut m = MicroOp::new(0x5C, Op::FpAlu);
                m.end_of_request = Some(12345);
                m
            },
        ]
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let trace = Trace::from_ops(sample_ops());
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let trace = Trace::from_ops(sample_ops());
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(Trace::read_from(bad_magic.as_slice()).is_err());
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(Trace::read_from(bad_version.as_slice()).is_err());
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let trace = Trace::from_ops(sample_ops());
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        assert!(Trace::read_from(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn capture_stops_at_done_and_skips_idle() {
        #[derive(Debug)]
        struct ThreeOpsWithIdle(u32);
        impl InstructionStream for ThreeOpsWithIdle {
            fn next(&mut self, now: u64, _rng: &mut SimRng) -> Fetched {
                self.0 += 1;
                match self.0 {
                    1 | 3 => Fetched::Op(MicroOp::new(u64::from(self.0), Op::IntAlu)),
                    2 => Fetched::IdleUntil(now + 100),
                    4 => Fetched::Op(MicroOp::new(4, Op::IntAlu)),
                    _ => Fetched::Done,
                }
            }
        }
        let mut rng = rng_from_seed(1);
        let trace = Trace::capture(&mut ThreeOpsWithIdle(0), 100, &mut rng);
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn captured_trace_replays_on_an_engine() {
        use crate::memsys::MemSys;
        use crate::ooo::{FetchPolicy, OooEngine, ThreadClass};
        use duplexity_uarch::config::{CoreConfig, LatencyModel};

        let ops: Vec<MicroOp> = (0..64)
            .map(|i| MicroOp::new(i * 4, Op::IntAlu).with_dst((i % 8) as u8))
            .collect();
        let trace = Trace::from_ops(ops);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let replay = Trace::read_from(buf.as_slice())
            .unwrap()
            .into_looped_stream();

        let mut engine = OooEngine::new(CoreConfig::baseline_ooo(), FetchPolicy::Icount, 3400.0);
        engine.add_thread(Box::new(replay), ThreadClass::Primary);
        let mut mem = MemSys::table1(LatencyModel::default());
        let mut rng = rng_from_seed(2);
        for now in 0..5_000 {
            engine.step(now, &mut mem, &mut rng);
        }
        assert!(engine.stats().retired_primary > 1_000);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        Trace::new().write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }
}
