//! Dyad co-simulation: a morphable master-core paired with a lender-core.
//!
//! This module implements §III's machinery end to end:
//!
//! * the **master-core** runs its latency-critical master-thread on the
//!   out-of-order engine; when the thread stalls on a µs-scale remote access
//!   or goes idle between requests, the morph controller drains the window
//!   and switches the core into 8-context in-order filler mode;
//! * **filler-threads** are borrowed from the shared [`ContextPool`] (HSMT)
//!   or, for the MorphCore baseline, are 8 dedicated threads;
//! * **state segregation** is a placement choice ([`FillerPlacement`]):
//!   fillers may thrash the master's own caches (MorphCore/MorphCore+), use
//!   fully replicated caches (Duplexity + replication), or reach the
//!   lender-core's L1s through write-through L0 filters (Duplexity);
//! * on master-thread **resume**, fillers are evicted and the master pays the
//!   spill penalty (§III-B4: ~50 cycles for Duplexity; microcode register
//!   swapping for MorphCore, modelled at 250 cycles);
//! * the **lender-core** runs continuously, multiplexing the same virtual
//!   context pool over its own 8 physical contexts.

use crate::inorder::InoEngine;
use crate::memsys::{MemSys, RemotePath};
use crate::ooo::{FetchPolicy, OooEngine, ThreadClass};
use crate::op::InstructionStream;
use crate::pool::ContextPool;
use duplexity_obs::{MorphTrigger, ThreadTag, TraceEvent, Tracer};
use duplexity_stats::rng::SimRng;
use duplexity_uarch::config::{CoreConfig, LatencyModel, MachineConfig};

/// Where filler-threads' memory accesses land while they run on the
/// master-core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillerPlacement {
    /// Fillers share the master-thread's own L1s/TLBs (MorphCore,
    /// MorphCore+): cache pollution harms the master on resume.
    MasterCaches,
    /// Fillers get a fully replicated set of L1s (Duplexity + replication):
    /// perfect isolation at a 38% core-area cost.
    ReplicatedCaches,
    /// Fillers reach the lender-core's L1s through 2KB/4KB write-through L0
    /// filters with a ~3-cycle cross-core hop (Duplexity).
    LenderCaches,
}

/// Morph-controller and topology parameters for one dyad variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DyadConfig {
    /// Virtual-context (HSMT) fillers from the shared pool; `false` means 8
    /// dedicated filler threads (plain MorphCore).
    pub hsmt_fillers: bool,
    /// Cache placement for fillers on the master-core.
    pub placement: FillerPlacement,
    /// Cycles to enter filler mode (drain is modelled explicitly; this is
    /// the register-load / microcode cost).
    pub morph_in_cycles: u64,
    /// Cycles the master-thread is delayed on resume (filler spill).
    pub morph_out_cycles: u64,
    /// Minimum anticipated hole size worth morphing for.
    pub min_morph_gain_cycles: u64,
    /// Cycles between a stall/idle event and the hardware recognizing it
    /// (§IV "Demarcating stalls": queue-pair recognition is immediate;
    /// mwait/hlt-style monitoring adds latency). Delays the morph, not the
    /// master's resume.
    pub stall_detection_delay: u64,
    /// Whether a lender-core shares the pool (false only for plain
    /// MorphCore).
    pub has_lender: bool,
    /// Machine description for the master-core.
    pub machine: MachineConfig,
    /// HSMT context-swap latency.
    pub swap_latency: u64,
}

impl DyadConfig {
    /// MorphCore as proposed in \[49\]: 8 dedicated fillers, shared caches,
    /// microcode mode switches, no lender-core.
    #[must_use]
    pub fn morphcore() -> Self {
        Self {
            hsmt_fillers: false,
            placement: FillerPlacement::MasterCaches,
            morph_in_cycles: 250,
            morph_out_cycles: 250,
            min_morph_gain_cycles: 1000,
            stall_detection_delay: 0,
            has_lender: false,
            machine: MachineConfig::master(),
            swap_latency: 64,
        }
    }

    /// MorphCore+ (design 5): MorphCore with HSMT fillers borrowed from a
    /// paired lender-core, still without cache segregation.
    #[must_use]
    pub fn morphcore_plus() -> Self {
        Self {
            hsmt_fillers: true,
            has_lender: true,
            ..Self::morphcore()
        }
    }

    /// Duplexity + replication (design 6): full state replication.
    #[must_use]
    pub fn duplexity_replication() -> Self {
        Self {
            hsmt_fillers: true,
            placement: FillerPlacement::ReplicatedCaches,
            morph_in_cycles: 64,
            morph_out_cycles: LatencyModel::default().filler_eviction,
            min_morph_gain_cycles: 500,
            stall_detection_delay: 0,
            has_lender: true,
            machine: MachineConfig::master(),
            swap_latency: 64,
        }
    }

    /// Duplexity (design 7): L0-filtered access to the lender's caches.
    #[must_use]
    pub fn duplexity() -> Self {
        Self {
            placement: FillerPlacement::LenderCaches,
            ..Self::duplexity_replication()
        }
    }
}

/// Why a morph was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MorphCause {
    /// The master-thread blocked on a µs-scale remote access.
    Stall,
    /// The master-thread ran out of requests (inter-request idleness).
    Idle,
}

/// One morph episode, for timeline inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MorphEvent {
    /// Cycle the morph was triggered.
    pub at: u64,
    /// Cycle the master-thread resumed (hole end + resume penalty).
    pub until: u64,
    /// What opened the hole.
    pub cause: MorphCause,
}

impl MorphEvent {
    /// Length of the filler window in cycles.
    #[must_use]
    pub fn hole_cycles(&self) -> u64 {
        self.until.saturating_sub(self.at)
    }
}

/// Per-phase (native vs. morphed) master-core accounting, maintained only
/// while a tracer is attached. Snapshots are taken at morph boundaries;
/// deltas attribute cycles, retired micro-ops, and master-cache pollution
/// (L1 + D-TLB misses) to the phase that produced them.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseAccum {
    boundary_cycle: u64,
    l1_at_boundary: u64,
    dtlb_at_boundary: u64,
    retired_at_boundary: u64,
    native_cycles: u64,
    morphed_cycles: u64,
    native_l1_misses: u64,
    morphed_l1_misses: u64,
    native_dtlb_misses: u64,
    morphed_dtlb_misses: u64,
    native_retired: u64,
    morphed_retired: u64,
}

impl PhaseAccum {
    /// Folds the window since the last boundary into the given phase and
    /// re-anchors the boundary at `now`.
    fn roll(&mut self, morphed: bool, now: u64, l1: u64, dtlb: u64, retired: u64) {
        let cycles = now.saturating_sub(self.boundary_cycle);
        let dl1 = l1.saturating_sub(self.l1_at_boundary);
        let dtlb_d = dtlb.saturating_sub(self.dtlb_at_boundary);
        let dret = retired.saturating_sub(self.retired_at_boundary);
        if morphed {
            self.morphed_cycles += cycles;
            self.morphed_l1_misses += dl1;
            self.morphed_dtlb_misses += dtlb_d;
            self.morphed_retired += dret;
        } else {
            self.native_cycles += cycles;
            self.native_l1_misses += dl1;
            self.native_dtlb_misses += dtlb_d;
            self.native_retired += dret;
        }
        self.boundary_cycle = now;
        self.l1_at_boundary = l1;
        self.dtlb_at_boundary = dtlb;
        self.retired_at_boundary = retired;
    }
}

/// Morph state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Master-thread executing on the OoO engine.
    Master,
    /// Filler-threads executing; `start` gates issue (morph-in latency),
    /// `until` is when the master resumes (stall resolution or next arrival,
    /// plus the resume penalty).
    Filler { start: u64, until: u64 },
}

/// Aggregate results of a dyad simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DyadMetrics {
    /// Wall-clock cycles simulated.
    pub wall_cycles: u64,
    /// Master-thread micro-ops retired (on the master-core).
    pub master_retired: u64,
    /// Filler micro-ops retired *on the master-core*.
    pub filler_retired_on_master: u64,
    /// Micro-ops retired on the lender-core.
    pub lender_retired: u64,
    /// Completed master request latencies, in cycles.
    pub request_latencies_cycles: Vec<u64>,
    /// Morph transitions into filler mode.
    pub morphs: u64,
    /// Cycles spent in filler mode.
    pub filler_mode_cycles: u64,
    /// µs-scale remote ops issued by the master-thread.
    pub remote_ops_master: u64,
    /// µs-scale remote ops issued by fillers and the lender.
    pub remote_ops_batch: u64,
    /// Retired micro-ops per batch virtual-context id (STP input).
    pub retired_by_ctx: Vec<u64>,
    /// Master-core microarchitectural summary (interference visibility).
    pub master_uarch: crate::metrics::UarchStats,
}

impl DyadMetrics {
    /// Master-core utilization (Fig. 5(a) metric): master + borrowed filler
    /// instructions over the master-core's peak retire bandwidth. A zero
    /// `width` yields 0 rather than a silent NaN.
    #[must_use]
    pub fn master_core_utilization(&self, width: usize) -> f64 {
        if self.wall_cycles == 0 || width == 0 {
            0.0
        } else {
            (self.master_retired + self.filler_retired_on_master) as f64
                / (self.wall_cycles as f64 * width as f64)
        }
    }
}

/// Co-simulation of one dyad (or of a standalone morphable core when
/// `has_lender` is false).
///
/// # Examples
///
/// ```
/// use duplexity_cpu::dyad::{DyadConfig, DyadSim};
/// use duplexity_cpu::op::{LoopedTrace, MicroOp, Op};
/// use duplexity_stats::rng::rng_from_seed;
///
/// let cfg = DyadConfig::duplexity();
/// // A master-thread that never stalls or idles (no morphs expected).
/// let master: Vec<MicroOp> = (0..64).map(|i| MicroOp::new(i * 4, Op::IntAlu)).collect();
/// let mut dyad = DyadSim::new(cfg, Box::new(LoopedTrace::new(master)));
/// let mut rng = rng_from_seed(3);
/// dyad.run(10_000, &mut rng);
/// assert_eq!(dyad.morphs(), 0);
/// assert!(dyad.metrics().master_retired > 0);
/// ```
pub struct DyadSim {
    cfg: DyadConfig,
    master_ooo: OooEngine,
    master_ino: InoEngine,
    lender_ino: Option<InoEngine>,
    master_mem: MemSys,
    lender_mem: MemSys,
    repl_mem: MemSys,
    remote: RemotePath,
    pool: ContextPool,
    mode: Mode,
    now: u64,
    morphs: u64,
    filler_mode_cycles: u64,
    morph_log: Vec<MorphEvent>,
    tracer: Tracer,
    phase: PhaseAccum,
}

impl std::fmt::Debug for DyadSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DyadSim")
            .field("mode", &self.mode)
            .field("now", &self.now)
            .field("morphs", &self.morphs)
            .finish()
    }
}

impl DyadSim {
    /// Builds a dyad running `master_stream` as the latency-critical thread.
    ///
    /// Batch threads are supplied afterwards with [`DyadSim::add_batch_thread`]
    /// (HSMT pool) or are pinned automatically for plain MorphCore via
    /// [`DyadSim::add_fixed_filler`].
    #[must_use]
    pub fn new(cfg: DyadConfig, master_stream: Box<dyn InstructionStream>) -> Self {
        let cycles_per_us = cfg.machine.cycles_per_us();
        let mut master_ooo = OooEngine::new(cfg.machine.core, FetchPolicy::Icount, cycles_per_us);
        master_ooo.add_thread(master_stream, ThreadClass::Primary);
        let master_ino = InoEngine::new(
            CoreConfig::lender().physical_contexts,
            cfg.machine.core.width,
            cfg.hsmt_fillers,
            cycles_per_us,
            cfg.swap_latency,
        );
        let lender_ino = cfg
            .has_lender
            .then(|| InoEngine::lender(cycles_per_us, cfg.swap_latency));
        Self {
            master_ooo,
            master_ino,
            lender_ino,
            master_mem: MemSys::table1(cfg.machine.latency),
            lender_mem: MemSys::table1(cfg.machine.latency),
            repl_mem: MemSys::table1(cfg.machine.latency),
            remote: RemotePath::new(),
            pool: ContextPool::new(),
            mode: Mode::Master,
            now: 0,
            morphs: 0,
            filler_mode_cycles: 0,
            morph_log: Vec::new(),
            tracer: Tracer::disabled(),
            phase: PhaseAccum::default(),
            cfg,
        }
    }

    /// Attaches a tracer and propagates it to every engine and memory
    /// system in the dyad: the master OoO core, the master's in-order
    /// filler mode (tagged [`ThreadTag::Filler`]), the lender core (tagged
    /// [`ThreadTag::Lender`]), and all three memory systems' fault layers.
    /// Tracing consumes no RNG draws and does not alter simulation results.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        self.master_ooo.set_tracer(tracer);
        self.master_ino.set_tracer(tracer, ThreadTag::Filler);
        if let Some(lender) = self.lender_ino.as_mut() {
            lender.set_tracer(tracer, ThreadTag::Lender);
        }
        self.master_mem.set_tracer(tracer);
        self.lender_mem.set_tracer(tracer);
        self.repl_mem.set_tracer(tracer);
    }

    /// Adds a batch thread to the dyad's shared virtual-context pool.
    pub fn add_batch_thread(&mut self, id: usize, stream: Box<dyn InstructionStream>) {
        self.pool.add(crate::pool::VirtualContext::new(id, stream));
    }

    /// Parks up to `k` ready virtual contexts (removes them from
    /// circulation, as §IV's HLT-parking of unused contexts). Returns how
    /// many were actually parked; running or stalled contexts are not
    /// touched.
    pub fn park_batch_threads(&mut self, k: usize) -> usize {
        let mut parked = 0;
        while parked < k {
            if self.pool.take().is_none() {
                break;
            }
            parked += 1;
        }
        parked
    }

    /// Virtual contexts currently resident in the shared pool (excludes ones
    /// loaded into physical contexts).
    #[must_use]
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Pins a dedicated filler thread to the master-core's in-order engine
    /// (plain MorphCore only).
    ///
    /// # Panics
    ///
    /// Panics if the dyad is configured for HSMT fillers, or all 8 contexts
    /// are taken.
    pub fn add_fixed_filler(&mut self, id: usize, stream: Box<dyn InstructionStream>) {
        assert!(
            !self.cfg.hsmt_fillers,
            "fixed fillers are for plain MorphCore; use add_batch_thread"
        );
        self.master_ino.add_fixed_context(id, stream);
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of morphs so far.
    #[must_use]
    pub fn morphs(&self) -> u64 {
        self.morphs
    }

    /// The morph timeline (capped at 65 536 events).
    #[must_use]
    pub fn morph_log(&self) -> &[MorphEvent] {
        &self.morph_log
    }

    /// Advances the dyad by one cycle.
    pub fn step(&mut self, rng: &mut SimRng) {
        let now = self.now;
        // The lender-core always runs.
        if let Some(lender) = self.lender_ino.as_mut() {
            lender.step(now, &mut self.lender_mem, None, Some(&mut self.pool), rng);
        }

        match self.mode {
            Mode::Master => {
                self.master_ooo.step(now, &mut self.master_mem, rng);
                let hole = self
                    .master_ooo
                    .primary_stalled_on_remote(now)
                    .map(|end| (end, MorphCause::Stall))
                    .or_else(|| {
                        self.master_ooo
                            .primary_idle_until(now)
                            .map(|end| (end, MorphCause::Idle))
                    });
                if let Some((end, cause)) = hole {
                    if end > now.saturating_add(self.cfg.min_morph_gain_cycles) {
                        self.begin_morph(now, end, cause);
                    }
                }
            }
            Mode::Filler { start, until } => {
                if now >= until {
                    self.end_morph(now);
                    // The master restarts this same cycle.
                    self.master_ooo.step(now, &mut self.master_mem, rng);
                } else if now >= start {
                    self.filler_mode_cycles += 1;
                    let (mem, remote, pool) = match self.cfg.placement {
                        FillerPlacement::MasterCaches => (&mut self.master_mem, None, true),
                        FillerPlacement::ReplicatedCaches => (&mut self.repl_mem, None, true),
                        FillerPlacement::LenderCaches => {
                            (&mut self.lender_mem, Some(&mut self.remote), true)
                        }
                    };
                    let pool_opt = (pool && self.cfg.hsmt_fillers).then_some(&mut self.pool);
                    self.master_ino.step(now, mem, remote, pool_opt, rng);
                }
            }
        }
        self.now += 1;
    }

    /// Earliest cycle `t >= now` at which [`DyadSim::step`] could change
    /// state: the minimum over the lender-core, the context pool, and the
    /// mode-dependent master engine, plus the morph-window `start`/`until`
    /// boundaries. Morph *triggers* are handled by evaluating the hole-check
    /// at `now` directly: a trigger can only newly fire when an issued op's
    /// completion passes `now`, and every future completion is already a
    /// bumped event, so mid-span firings land exactly on span boundaries.
    #[must_use]
    pub fn next_event_cycle(&self) -> Option<u64> {
        let from = self.now;
        let mut best: Option<u64> = None;
        let bump = |best: &mut Option<u64>, t: u64| {
            *best = Some(best.map_or(t, |b| b.min(t)));
        };
        if let Some(lender) = self.lender_ino.as_ref() {
            match lender.next_event_cycle(from, Some(&self.pool)) {
                Some(t) if t <= from => return Some(from),
                Some(t) => bump(&mut best, t),
                None => {}
            }
        }
        match self.mode {
            Mode::Master => {
                // The morph hole-check runs after every master step, and it
                // reads completions *at or before* `now` (a stalled front
                // with drained co-work) that the engine probe rightly treats
                // as inert — nothing can commit past the stalled head. If
                // the check would fire at `from`, that step is a state
                // change (`begin_morph`) all the same. Mid-span firings
                // always coincide with a completion the engine probe bumps,
                // so checking `from` alone closes the gap.
                let hole = self
                    .master_ooo
                    .primary_stalled_on_remote(from)
                    .or_else(|| self.master_ooo.primary_idle_until(from));
                if let Some(end) = hole {
                    if end > from.saturating_add(self.cfg.min_morph_gain_cycles) {
                        return Some(from);
                    }
                }
                match self.master_ooo.next_event_cycle(from) {
                    Some(t) if t <= from => return Some(from),
                    Some(t) => bump(&mut best, t),
                    None => {}
                }
            }
            Mode::Filler { start, until } => {
                if from >= until {
                    return Some(from); // end_morph + master restart
                }
                bump(&mut best, until);
                if from < start {
                    bump(&mut best, start);
                } else {
                    let pool_opt = self.cfg.hsmt_fillers.then_some(&self.pool);
                    match self.master_ino.next_event_cycle(from, pool_opt) {
                        Some(t) if t <= from => return Some(from),
                        Some(t) => bump(&mut best, t),
                        None => {}
                    }
                }
            }
        }
        best
    }

    /// Folds `count` provably quiescent cycles into every engine that the
    /// naive loop would have stepped, mirroring [`DyadSim::step`]'s
    /// per-mode accounting (the lender always runs; the master OoO engine
    /// only in [`Mode::Master`]; the filler engine and its mode-cycle
    /// counter only once a morph window has opened). Callers must only pass
    /// spans vouched for by [`DyadSim::next_event_cycle`].
    fn skip_quiescent(&mut self, count: u64) {
        let from = self.now;
        if let Some(lender) = self.lender_ino.as_mut() {
            lender.skip_quiescent(count);
        }
        match self.mode {
            Mode::Master => self.master_ooo.skip_quiescent(from, count),
            Mode::Filler { start, until: _ } => {
                if from >= start {
                    self.filler_mode_cycles += count;
                    self.master_ino.skip_quiescent(count);
                }
                // Before `start` the naive loop steps nothing on the master
                // core either (and the span never crosses `start`: it is an
                // event).
            }
        }
        self.now += count;
    }

    /// Runs until `horizon` cycles have elapsed, fast-forwarding through
    /// quiescent spans (µs-scale stalls and inter-request idleness with
    /// every engine drained). Bit-identical to [`DyadSim::run_naive`]:
    /// skipped cycles perform no RNG draws and retire nothing, and their
    /// cycle/idle/phase accounting is folded arithmetically.
    pub fn run(&mut self, horizon: u64, rng: &mut SimRng) {
        // After a failed probe, back off exponentially (up to 32 cycles)
        // before probing again: probing only *when* to skip never changes
        // *what* is skipped, so results are unaffected, but busy phases
        // don't pay the probe on every cycle.
        let mut backoff: u64 = 0;
        let mut wait: u64 = 0;
        while self.now < horizon {
            self.step(rng);
            if wait > 0 {
                wait -= 1;
                continue;
            }
            let target = self.next_event_cycle().map_or(horizon, |e| e.min(horizon));
            if target > self.now {
                self.skip_quiescent(target - self.now);
                backoff = 0;
            } else {
                backoff = (backoff * 2).clamp(1, 32);
                wait = backoff;
            }
        }
    }

    /// Runs until `horizon` cycles have elapsed, stepping every cycle.
    /// Reference loop for differential tests and the perf benchmark.
    pub fn run_naive(&mut self, horizon: u64, rng: &mut SimRng) {
        while self.now < horizon {
            self.step(rng);
        }
    }

    /// Collects the simulation's aggregate metrics.
    #[must_use]
    pub fn metrics(&self) -> DyadMetrics {
        let ooo = self.master_ooo.stats();
        let ino = self.master_ino.stats();
        let lender = self.lender_ino.as_ref().map(|l| l.stats());
        let mut retired_by_ctx = self.master_ino.retired_by_ctx().to_vec();
        if let Some(l) = self.lender_ino.as_ref() {
            for (id, &r) in l.retired_by_ctx().iter().enumerate() {
                if id >= retired_by_ctx.len() {
                    retired_by_ctx.resize(id + 1, 0);
                }
                retired_by_ctx[id] += r;
            }
        }
        DyadMetrics {
            wall_cycles: self.now,
            master_retired: ooo.retired_primary,
            filler_retired_on_master: ino.retired_secondary,
            lender_retired: lender.map_or(0, |l| l.retired_secondary),
            request_latencies_cycles: ooo.request_latencies_cycles.clone(),
            morphs: self.morphs,
            filler_mode_cycles: self.filler_mode_cycles,
            remote_ops_master: ooo.remote_ops,
            remote_ops_batch: ino.remote_ops + lender.map_or(0, |l| l.remote_ops),
            retired_by_ctx,
            master_uarch: crate::metrics::UarchStats::collect(&self.master_mem, ooo),
        }
    }

    /// Collects the aggregate metrics, draining the request-latency vector
    /// instead of cloning it. Preferred by experiment harvesters that call
    /// it once at the end of a run; [`DyadSim::metrics`] stays available
    /// for mid-run snapshots.
    #[must_use]
    pub fn take_metrics(&mut self) -> DyadMetrics {
        let latencies = std::mem::take(&mut self.master_ooo.stats_mut().request_latencies_cycles);
        let mut m = self.metrics(); // clones the now-empty vector: free
        m.request_latencies_cycles = latencies;
        m
    }

    /// Completed master request latencies so far, in cycles, by reference
    /// (no clone).
    #[must_use]
    pub fn request_latencies_cycles(&self) -> &[u64] {
        &self.master_ooo.stats().request_latencies_cycles
    }

    /// Read access to the master-core's memory system (tests inspect
    /// pollution).
    #[must_use]
    pub fn master_mem(&self) -> &MemSys {
        &self.master_mem
    }

    /// Folds the window since the last phase boundary into `morphed` (the
    /// phase that is *ending*) and re-anchors at `now`. No-op without a
    /// tracer, so the untraced hot path pays nothing.
    fn roll_phase(&mut self, morphed: bool, now: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        let l1 = self.master_mem.l1_misses();
        let dtlb = self.master_mem.dtlb.stats().misses;
        let retired =
            self.master_ooo.stats().retired_primary + self.master_ino.stats().retired_secondary;
        self.phase.roll(morphed, now, l1, dtlb, retired);
    }

    /// Writes the dyad's aggregate counters — morph count, per-phase
    /// (native vs. morphed) cycles, retired micro-ops, and master-cache
    /// pollution — into the attached tracer's registry. Call once after the
    /// simulation completes; no-op without a tracer.
    pub fn flush_trace_registry(&self) {
        if !self.tracer.is_enabled() {
            return;
        }
        // Close the currently open phase into a local copy.
        let mut p = self.phase;
        let morphed_now = matches!(self.mode, Mode::Filler { .. });
        p.roll(
            morphed_now,
            self.now,
            self.master_mem.l1_misses(),
            self.master_mem.dtlb.stats().misses,
            self.master_ooo.stats().retired_primary + self.master_ino.stats().retired_secondary,
        );
        self.tracer.count("dyad/morphs", self.morphs);
        self.tracer
            .count("dyad/filler_mode_cycles", self.filler_mode_cycles);
        self.tracer
            .count("dyad/phase/native/cycles", p.native_cycles);
        self.tracer
            .count("dyad/phase/morphed/cycles", p.morphed_cycles);
        self.tracer
            .count("dyad/phase/native/retired", p.native_retired);
        self.tracer
            .count("dyad/phase/morphed/retired", p.morphed_retired);
        self.tracer
            .count("dyad/phase/native/l1_misses", p.native_l1_misses);
        self.tracer
            .count("dyad/phase/morphed/l1_misses", p.morphed_l1_misses);
        self.tracer
            .count("dyad/phase/native/dtlb_misses", p.native_dtlb_misses);
        self.tracer
            .count("dyad/phase/morphed/dtlb_misses", p.morphed_dtlb_misses);
        if p.native_cycles > 0 {
            self.tracer.observe(
                "dyad/phase/native/ipc",
                p.native_retired as f64 / p.native_cycles as f64,
            );
        }
        if p.morphed_cycles > 0 {
            self.tracer.observe(
                "dyad/phase/morphed/ipc",
                p.morphed_retired as f64 / p.morphed_cycles as f64,
            );
        }
    }

    fn begin_morph(&mut self, now: u64, hole_end: u64, cause: MorphCause) {
        const MORPH_LOG_CAP: usize = 65_536;
        self.morphs += 1;
        let until = hole_end + self.cfg.morph_out_cycles;
        if self.morph_log.len() < MORPH_LOG_CAP {
            self.morph_log.push(MorphEvent {
                at: now,
                until,
                cause,
            });
        }
        let trigger = match cause {
            MorphCause::Stall => MorphTrigger::Stall,
            MorphCause::Idle => MorphTrigger::Idle,
        };
        self.tracer.emit(|| TraceEvent::MorphIn {
            at: now,
            cause: trigger,
        });
        self.tracer.observe(
            "dyad/morph/hole_cycles",
            hole_end.saturating_sub(now) as f64,
        );
        self.roll_phase(false, now);
        self.mode = Mode::Filler {
            start: now + self.cfg.stall_detection_delay + self.cfg.morph_in_cycles,
            until,
        };
    }

    fn end_morph(&mut self, now: u64) {
        self.tracer.emit(|| TraceEvent::MorphOut { at: now });
        self.roll_phase(true, now);
        if self.cfg.hsmt_fillers {
            self.master_ino.evict_all(now, &mut self.pool);
        } else {
            // Dedicated fillers stay resident but are paused; squash their
            // in-flight front-end state.
            self.master_ino.squash_frontend();
        }
        if self.cfg.placement == FillerPlacement::LenderCaches {
            // The write-through L0s are discardable at any time (§III-B4).
            self.remote.discard();
        }
        // The resume penalty was folded into `until`; fetch resumes now.
        self.master_ooo.block_primary_fetch_until(now);
        self.mode = Mode::Master;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Fetched, LoopedTrace, MicroOp, Op, RequestKernel, NO_REG};
    use crate::request::RequestStream;
    use duplexity_stats::rng::rng_from_seed;

    /// A kernel with ~0.6µs of serial compute then a 2µs remote access.
    #[derive(Debug)]
    struct StallingKernel;
    impl RequestKernel for StallingKernel {
        fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
            for i in 0..2000u64 {
                out.push(
                    MicroOp::new(i * 4, Op::IntAlu)
                        .with_srcs(0, NO_REG)
                        .with_dst(0),
                );
            }
            out.push(MicroOp::new(9000, Op::RemoteLoad { latency_us: 2.0 }).with_dst(1));
            out.push(
                MicroOp::new(9004, Op::IntAlu)
                    .with_srcs(1, NO_REG)
                    .with_dst(2),
            );
        }
        fn nominal_service_us(&self) -> f64 {
            2.6
        }
    }

    fn filler_stream(id: usize) -> Box<dyn InstructionStream> {
        // Batch thread: dependency chain + occasional 1µs remote stall.
        let base = 0x100_0000 * (id as u64 + 1);
        let mut ops: Vec<MicroOp> = (0..800)
            .map(|i| {
                MicroOp::new(base + i * 4, Op::IntAlu)
                    .with_srcs(0, NO_REG)
                    .with_dst(0)
            })
            .collect();
        ops.push(MicroOp::new(base + 4000, Op::RemoteLoad { latency_us: 1.0 }).with_dst(0));
        Box::new(LoopedTrace::new(ops))
    }

    fn make_dyad(cfg: DyadConfig, load: f64) -> DyadSim {
        let master = RequestStream::open_loop(
            Box::new(StallingKernel),
            load,
            StallingKernel.nominal_service_us(),
            cfg.machine.cycles_per_us(),
        );
        let mut dyad = DyadSim::new(cfg, Box::new(master));
        if cfg.hsmt_fillers {
            for id in 0..32 {
                dyad.add_batch_thread(id, filler_stream(id));
            }
        } else {
            for id in 0..8 {
                dyad.add_fixed_filler(id, filler_stream(id));
            }
        }
        dyad
    }

    #[test]
    fn duplexity_morphs_and_fills_holes() {
        let mut dyad = make_dyad(DyadConfig::duplexity(), 0.5);
        let mut rng = rng_from_seed(42);
        dyad.run(2_000_000, &mut rng);
        let m = dyad.metrics();
        assert!(m.morphs > 10, "morphs {}", m.morphs);
        assert!(m.filler_retired_on_master > 0);
        assert!(m.master_retired > 0);
        assert!(!m.request_latencies_cycles.is_empty());
        // Utilization with fillers beats the master-thread alone by a lot.
        let util = m.master_core_utilization(4);
        let solo = m.master_retired as f64 / (m.wall_cycles as f64 * 4.0);
        assert!(util > 2.0 * solo, "util {util} solo {solo}");
    }

    #[test]
    fn duplexity_protects_master_cache_state() {
        // Count master L1-D misses with fillers in lender caches vs fillers
        // in master caches (MorphCore+ placement).
        let run_one = |cfg: DyadConfig| {
            let mut dyad = make_dyad(cfg, 0.5);
            let mut rng = rng_from_seed(7);
            dyad.run(2_000_000, &mut rng);
            let misses = dyad.master_mem().l1_misses();
            let requests = dyad.metrics().request_latencies_cycles.len() as f64;
            misses as f64 / requests.max(1.0)
        };
        let duplexity = run_one(DyadConfig::duplexity());
        let morphcore_plus = run_one(DyadConfig::morphcore_plus());
        assert!(
            morphcore_plus > 1.5 * duplexity,
            "morphcore+ {morphcore_plus} vs duplexity {duplexity} misses/request"
        );
    }

    #[test]
    fn duplexity_latency_near_baseline() {
        // Request latency under Duplexity stays close to a no-filler run of
        // the same stream (the ≤19% tail inflation claim, §VII).
        let mean = |lat: &[u64]| lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;

        let cfg = DyadConfig::duplexity();
        let mut base_cfg = cfg;
        base_cfg.min_morph_gain_cycles = u64::MAX; // never morphs: pure baseline
        let mut baseline = make_dyad(base_cfg, 0.5);
        let mut rng = rng_from_seed(11);
        baseline.run(3_000_000, &mut rng);
        let base_lat = mean(&baseline.metrics().request_latencies_cycles);

        let mut dup = make_dyad(cfg, 0.5);
        let mut rng = rng_from_seed(11);
        dup.run(3_000_000, &mut rng);
        let dup_lat = mean(&dup.metrics().request_latencies_cycles);

        assert!(
            dup_lat < 1.35 * base_lat,
            "duplexity {dup_lat} vs baseline {base_lat} mean latency"
        );
    }

    #[test]
    fn morphcore_runs_dedicated_fillers() {
        let mut dyad = make_dyad(DyadConfig::morphcore(), 0.5);
        let mut rng = rng_from_seed(13);
        dyad.run(1_000_000, &mut rng);
        let m = dyad.metrics();
        assert!(m.morphs > 0);
        assert!(m.filler_retired_on_master > 0);
        assert_eq!(m.lender_retired, 0, "plain MorphCore has no lender");
    }

    #[test]
    fn lender_core_contributes_throughput() {
        let mut dyad = make_dyad(DyadConfig::duplexity(), 0.5);
        let mut rng = rng_from_seed(17);
        dyad.run(500_000, &mut rng);
        let m = dyad.metrics();
        assert!(m.lender_retired > 0);
        // Many distinct batch contexts made progress.
        let active = m.retired_by_ctx.iter().filter(|&&r| r > 0).count();
        assert!(active >= 8, "active contexts {active}");
    }

    #[test]
    fn replication_beats_duplexity_on_raw_utilization() {
        // Fig. 5(a): Duplexity always achieves slightly lower utilization
        // than Duplexity + replication (shared lender-cache pressure).
        let run_util = |cfg: DyadConfig| {
            let mut dyad = make_dyad(cfg, 0.5);
            let mut rng = rng_from_seed(19);
            dyad.run(2_000_000, &mut rng);
            dyad.metrics().master_core_utilization(4)
        };
        let repl = run_util(DyadConfig::duplexity_replication());
        let dup = run_util(DyadConfig::duplexity());
        assert!(repl >= dup * 0.98, "repl {repl} dup {dup}");
    }

    #[test]
    fn no_morph_below_min_gain() {
        #[derive(Debug)]
        struct TinyStall;
        impl RequestKernel for TinyStall {
            fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
                out.push(MicroOp::new(0, Op::RemoteLoad { latency_us: 0.01 }).with_dst(0));
                out.push(MicroOp::new(4, Op::IntAlu).with_srcs(0, NO_REG));
            }
            fn nominal_service_us(&self) -> f64 {
                0.02
            }
        }
        let cfg = DyadConfig::duplexity();
        let master = RequestStream::saturated(Box::new(TinyStall));
        let mut dyad = DyadSim::new(cfg, Box::new(master));
        for id in 0..8 {
            dyad.add_batch_thread(id, filler_stream(id));
        }
        let mut rng = rng_from_seed(23);
        dyad.run(100_000, &mut rng);
        assert_eq!(dyad.morphs(), 0, "34-cycle stalls must not trigger morphs");
    }

    #[test]
    fn idle_morph_triggers_without_stalls() {
        // WordStem-like kernel: pure compute, morphs only on idleness.
        #[derive(Debug)]
        struct ComputeOnly;
        impl RequestKernel for ComputeOnly {
            fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
                for i in 0..4000u64 {
                    out.push(
                        MicroOp::new(i * 4, Op::IntAlu)
                            .with_srcs(0, NO_REG)
                            .with_dst(0),
                    );
                }
            }
            fn nominal_service_us(&self) -> f64 {
                1.2
            }
        }
        let cfg = DyadConfig::duplexity();
        let master =
            RequestStream::open_loop(Box::new(ComputeOnly), 0.3, 1.2, cfg.machine.cycles_per_us());
        let mut dyad = DyadSim::new(cfg, Box::new(master));
        for id in 0..32 {
            dyad.add_batch_thread(id, filler_stream(id));
        }
        let mut rng = rng_from_seed(29);
        dyad.run(2_000_000, &mut rng);
        let m = dyad.metrics();
        assert!(m.morphs > 5, "morphs {}", m.morphs);
        assert_eq!(m.remote_ops_master, 0);
        assert!(m.filler_retired_on_master > 0);
    }

    /// Fetched-stream sanity: the master stream in a dyad still terminates
    /// cleanly when capped.
    #[test]
    fn capped_master_stream_finishes() {
        let cfg = DyadConfig::duplexity();
        let master = RequestStream::open_loop(
            Box::new(StallingKernel),
            0.5,
            2.6,
            cfg.machine.cycles_per_us(),
        )
        .with_max_requests(5);
        let mut dyad = DyadSim::new(cfg, Box::new(master));
        for id in 0..16 {
            dyad.add_batch_thread(id, filler_stream(id));
        }
        let mut rng = rng_from_seed(31);
        dyad.run(1_500_000, &mut rng);
        assert_eq!(dyad.metrics().request_latencies_cycles.len(), 5);
    }

    #[test]
    fn fetched_is_public_api() {
        // Compile-time check that Fetched round-trips through the trait.
        let mut s = LoopedTrace::new(vec![MicroOp::new(0, Op::IntAlu)]);
        let mut rng = rng_from_seed(1);
        assert!(matches!(
            crate::op::InstructionStream::next(&mut s, 0, &mut rng),
            Fetched::Op(_)
        ));
    }
}
