//! Property-based tests for caches, TLBs and predictors.

use duplexity_uarch::branch::{BranchPredictor, Btb, Gshare, ReturnAddressStack, Tournament};
use duplexity_uarch::cache::{AccessKind, Cache, CacheConfig};
use duplexity_uarch::tlb::Tlb;
use proptest::prelude::*;

proptest! {
    /// Cache statistics always balance: hits + misses == accesses, and the
    /// number of resident lines never exceeds the geometry.
    #[test]
    fn cache_counters_balance(
        ops in prop::collection::vec((0u64..1 << 22, any::<bool>()), 1..400),
        ways in 1usize..4,
    ) {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 64 * 64 * ways, // 64 sets
            ways,
            line_bytes: 64,
            write_through: false,
        });
        for &(addr, write) in &ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            c.access(addr, kind);
        }
        let s = *c.stats();
        prop_assert_eq!(s.hits + s.misses, ops.len() as u64);
        prop_assert!(c.resident_lines() <= c.total_lines());
        prop_assert!(s.writebacks <= s.misses, "writebacks only on evictions");
    }

    /// Repeating any access pattern a second time can only raise the hit
    /// count (LRU is stack-ish for a fixed working set smaller than the
    /// cache).
    #[test]
    fn small_working_set_hits_on_replay(
        lines in prop::collection::vec(0u64..32, 1..32),
    ) {
        // 64-line cache: the working set (<=32 distinct lines) always fits.
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 64 * 64,
            ways: 4,
            line_bytes: 64,
            write_through: false,
        });
        for &l in &lines {
            c.access(l * 64, AccessKind::Read);
        }
        let misses_after_warmup = c.stats().misses;
        for &l in &lines {
            c.access(l * 64, AccessKind::Read);
        }
        prop_assert_eq!(c.stats().misses, misses_after_warmup, "replay must fully hit");
    }

    /// Invalidate is precise: it removes exactly the named line and nothing
    /// else.
    #[test]
    fn invalidate_is_precise(lines in prop::collection::vec(0u64..64, 2..32), victim in 0usize..31) {
        prop_assume!(victim < lines.len());
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 64 * 64 * 4,
            ways: 4,
            line_bytes: 64,
            write_through: false,
        });
        for &l in &lines {
            c.access(l * 64, AccessKind::Read);
        }
        let target = lines[victim] * 64;
        c.invalidate(target);
        prop_assert!(!c.probe(target));
        for &l in &lines {
            if l != lines[victim] {
                prop_assert!(c.probe(l * 64), "line {l} was collateral damage");
            }
        }
    }

    /// The TLB holds at most its capacity and re-translating a just-touched
    /// page always hits.
    #[test]
    fn tlb_capacity_and_recency(pages in prop::collection::vec(0u64..4096, 1..300)) {
        let mut t = Tlb::new(64, 4096);
        for &p in &pages {
            t.translate(p * 4096);
            prop_assert!(t.resident() <= 64);
        }
        let last = *pages.last().unwrap();
        prop_assert!(t.translate(last * 4096), "most recent page must hit");
    }

    /// Predictors never change the outcome stream, only their accuracy; and
    /// training on a constant branch converges to perfect prediction.
    #[test]
    fn predictors_learn_constant_branches(pc in 0u64..1 << 20, taken in any::<bool>()) {
        let mut g = Gshare::new(1024);
        let mut t = Tournament::new(1024);
        // Enough updates for the global history register (10 bits here) to
        // saturate and the counter at the stable index to train.
        for _ in 0..24 {
            g.update(pc, taken);
            t.update(pc, taken);
        }
        prop_assert_eq!(g.predict(pc), taken);
        prop_assert_eq!(t.predict(pc), taken);
    }

    /// BTB lookups return exactly what was installed (modulo capacity
    /// aliasing, which replaces rather than corrupts).
    #[test]
    fn btb_returns_installed_targets(entries in prop::collection::vec((0u64..1 << 16, 0u64..1 << 16), 1..64)) {
        let mut btb = Btb::new(4096);
        for &(pc, tgt) in &entries {
            btb.update(pc * 4, tgt);
        }
        // The last writer of each slot wins; look up the final map.
        let mut expected = std::collections::HashMap::new();
        for &(pc, tgt) in &entries {
            expected.insert(pc * 4, tgt);
        }
        for (&pc, &tgt) in &expected {
            if let Some(found) = btb.lookup(pc) {
                prop_assert_eq!(found, tgt, "stale target for {}", pc);
            }
        }
    }

    /// The RAS is LIFO within its capacity.
    #[test]
    fn ras_lifo_within_capacity(addrs in prop::collection::vec(0u64..1 << 30, 1..16)) {
        let mut ras = ReturnAddressStack::new(32);
        for &a in &addrs {
            ras.push(a);
        }
        for &a in addrs.iter().rev() {
            prop_assert_eq!(ras.pop(), Some(a));
        }
        prop_assert_eq!(ras.pop(), None);
    }
}
