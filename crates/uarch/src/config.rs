//! Microarchitecture configuration (Table I) and the latency model.
//!
//! The paper's Table I fixes the sizing of every structure the cycle
//! simulator models. Latencies not stated in the paper (L1/LLC hit time, page
//! walk, misprediction penalty) use conventional values for a 3.4GHz-class
//! core and are collected in [`LatencyModel`] so sensitivity studies can vary
//! them.

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Sizing of one out-of-order or in-order core (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Superscalar width (fetch/issue/commit per cycle).
    pub width: usize,
    /// Reorder-buffer entries (OoO mode only).
    pub rob_entries: usize,
    /// Physical register file entries. 144 = architectural state of 9 threads
    /// (master + 8 fillers), per §III-B4.
    pub prf_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Hardware thread contexts the pipeline multiplexes.
    pub physical_contexts: usize,
    /// Virtual contexts available to HSMT scheduling (0 = plain SMT).
    pub virtual_contexts: usize,
}

impl CoreConfig {
    /// Baseline/SMT/master core: 4-wide OoO, 144-entry ROB/PRF, 48-entry LQ,
    /// 32-entry SQ (Table I).
    #[must_use]
    pub fn baseline_ooo() -> Self {
        Self {
            width: 4,
            rob_entries: 144,
            prf_entries: 144,
            lq_entries: 48,
            sq_entries: 32,
            iq_entries: 60,
            physical_contexts: 1,
            virtual_contexts: 0,
        }
    }

    /// Lender-core: 8-way in-order HSMT, 32 virtual contexts, 4-wide issue,
    /// 128-entry architectural register file (Table I).
    #[must_use]
    pub fn lender() -> Self {
        Self {
            width: 4,
            rob_entries: 0,
            prf_entries: 128,
            lq_entries: 0,
            sq_entries: 0,
            iq_entries: 8 * 8, // per-thread in-order queues
            physical_contexts: 8,
            virtual_contexts: 32,
        }
    }

    /// Master-core: same datapath as the baseline OoO, plus the ability to
    /// morph into the lender's 8-way InO HSMT organization.
    #[must_use]
    pub fn master() -> Self {
        Self {
            physical_contexts: 1,
            virtual_contexts: 32,
            ..Self::baseline_ooo()
        }
    }
}

/// Cycle latencies of the memory system and pipeline events.
///
/// Values marked "Table I" are from the paper; the rest are conventional and
/// documented here as modelling assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// L0 filter-cache hit (assumption: next-cycle).
    pub l0_hit: u64,
    /// Local L1 hit (assumption: 3 cycles, typical for 64KB 2-way).
    pub l1_hit: u64,
    /// Extra cycles for the master-core to reach the lender-core's L1
    /// (§III-B3: "~3 cycles higher than local cache access").
    pub remote_l1_extra: u64,
    /// LLC hit (assumption: 30 cycles).
    pub llc_hit: u64,
    /// DRAM access (Table I: 50ns; 170 cycles at 3.4GHz).
    pub memory: u64,
    /// TLB-miss page walk (assumption: 50 cycles).
    pub page_walk: u64,
    /// Branch misprediction redirect penalty (assumption: 12 cycles).
    pub mispredict: u64,
    /// Cycles to spill filler-thread architectural state through the L0
    /// D-cache when the master-thread resumes (§III-B4: "less than 50").
    pub filler_eviction: u64,
    /// Cycles to swap a virtual context in/out of a physical HSMT context
    /// (register save + restore through the dedicated memory region).
    pub context_swap: u64,
    /// Full OS/software context switch, for comparison (§I: 5-20µs; we use
    /// 5µs at 3.4GHz).
    pub os_context_switch: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l0_hit: 1,
            l1_hit: 3,
            remote_l1_extra: 3,
            llc_hit: 30,
            memory: 170,
            page_walk: 50,
            mispredict: 12,
            filler_eviction: 50,
            context_swap: 64,
            os_context_switch: 17_000,
        }
    }
}

impl LatencyModel {
    /// Latency of a remote (lender-L1) hit from the master-core.
    #[must_use]
    pub fn remote_l1_hit(&self) -> u64 {
        self.l1_hit + self.remote_l1_extra
    }
}

/// A complete machine description: core sizing, cache geometry, latencies,
/// and clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core pipeline sizing.
    pub core: CoreConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Shared LLC slice geometry.
    pub llc: CacheConfig,
    /// Event latencies.
    pub latency: LatencyModel,
    /// Core clock in GHz (Table II; the master-core runs at 3.25GHz due to
    /// mode-mux cycle-time penalty).
    pub clock_ghz: f64,
}

impl MachineConfig {
    /// The baseline OoO machine (Table I + Table II).
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            core: CoreConfig::baseline_ooo(),
            l1i: CacheConfig::l1(),
            l1d: CacheConfig::l1(),
            llc: CacheConfig::llc(),
            latency: LatencyModel::default(),
            clock_ghz: 3.4,
        }
    }

    /// The lender-core machine.
    #[must_use]
    pub fn lender() -> Self {
        Self {
            core: CoreConfig::lender(),
            clock_ghz: 3.4,
            ..Self::baseline()
        }
    }

    /// The master-core machine (3.25GHz after the 4% mux penalty, Table II).
    #[must_use]
    pub fn master() -> Self {
        Self {
            core: CoreConfig::master(),
            clock_ghz: 3.25,
            ..Self::baseline()
        }
    }

    /// Cycles per microsecond at this machine's clock.
    #[must_use]
    pub fn cycles_per_us(&self) -> f64 {
        self.clock_ghz * 1000.0
    }

    /// Converts a duration in microseconds to cycles (rounded).
    #[must_use]
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.cycles_per_us()).round() as u64
    }
}

/// Renders Table I as aligned text rows, for the report binary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table1;

impl Table1 {
    /// The rows of Table I: (component, description).
    #[must_use]
    pub fn rows() -> Vec<(&'static str, String)> {
        let base = CoreConfig::baseline_ooo();
        let lender = CoreConfig::lender();
        vec![
            (
                "Baseline/SMT",
                format!(
                    "{}-wide OoO, {}-entry ROB/PRF, {}-entry LQ, {}-entry SQ, ICOUNT fetch for SMT",
                    base.width, base.rob_entries, base.lq_entries, base.sq_entries
                ),
            ),
            (
                "Predictors",
                "Tournament: bimodal (16K), gshare (16K), selector (16K); 32-entry RAS; \
                 2K-entry BTB, 64-entry I/D TLBs"
                    .to_string(),
            ),
            (
                "Lender-core",
                format!(
                    "{}-way InO HSMT, {} virtual contexts, {}-wide issue, {}-entry ARF, \
                     Round-Robin fetch, gshare (8K), 2K-entry BTB, 64-entry I/D TLBs",
                    lender.physical_contexts,
                    lender.virtual_contexts,
                    lender.width,
                    lender.prf_entries
                ),
            ),
            (
                "Master-core",
                "Transitions between single-threaded OoO and InO HSMT, uarch same as \
                 baseline; tournament(16K)/gshare(8K), separate TLBs for the two modes, \
                 2KB/4KB I/D write-through L0 caches"
                    .to_string(),
            ),
            (
                "L1 caches",
                "Private 64KB I/D, 64B lines, 2-way SA".to_string(),
            ),
            ("LLC", "1 MB per core, 64B lines, 8-way SA".to_string()),
            ("Memory", "50 ns access latency".to_string()),
            ("NIC", "FDR 4x Infiniband (56Gbit/s, 90M ops/s)".to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = CoreConfig::baseline_ooo();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_entries, 144);
        assert_eq!(c.prf_entries, 144);
        assert_eq!(c.lq_entries, 48);
        assert_eq!(c.sq_entries, 32);
    }

    #[test]
    fn lender_matches_table1() {
        let c = CoreConfig::lender();
        assert_eq!(c.physical_contexts, 8);
        assert_eq!(c.virtual_contexts, 32);
        assert_eq!(c.width, 4);
        assert_eq!(c.prf_entries, 128);
    }

    #[test]
    fn prf_holds_nine_architectural_contexts() {
        // §III-B4: 144 registers = 9 threads x 16 GP registers.
        let c = CoreConfig::baseline_ooo();
        assert_eq!(c.prf_entries / 16, 9);
    }

    #[test]
    fn memory_latency_is_50ns() {
        let m = MachineConfig::baseline();
        let cycles_per_ns = m.clock_ghz;
        let mem_ns = m.latency.memory as f64 / cycles_per_ns;
        assert!((mem_ns - 50.0).abs() < 1.0, "memory {mem_ns} ns");
    }

    #[test]
    fn us_conversion() {
        let m = MachineConfig::baseline();
        assert_eq!(m.us_to_cycles(1.0), 3400);
        assert_eq!(m.us_to_cycles(0.5), 1700);
    }

    #[test]
    fn master_clock_reflects_mux_penalty() {
        // Table II: master at 3.25GHz vs baseline 3.4GHz (~4% penalty).
        let penalty = 1.0 - MachineConfig::master().clock_ghz / MachineConfig::baseline().clock_ghz;
        assert!(penalty > 0.03 && penalty < 0.06, "penalty {penalty}");
    }

    #[test]
    fn remote_l1_adds_three_cycles() {
        let l = LatencyModel::default();
        assert_eq!(l.remote_l1_hit(), l.l1_hit + 3);
    }

    #[test]
    fn table1_has_all_rows() {
        let rows = Table1::rows();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|(k, _)| *k == "NIC"));
    }
}
