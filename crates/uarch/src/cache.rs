//! Set-associative caches with LRU replacement.
//!
//! The Duplexity memory system (Table I) uses private 64KB 2-way L1 I/D
//! caches with 64B lines, a 1MB 8-way LLC, and — unique to the master-core —
//! tiny write-through L0 filters (2KB I / 4KB D) in front of the *lender*
//! core's L1s (§III-B3). The L0 D-cache is write-through so "its contents can
//! be discarded or overwritten at any time", which is what makes the 50-cycle
//! filler-thread register spill of §III-B4 possible.

use serde::{Deserialize, Serialize};

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load or instruction fetch.
    Read,
    /// A store.
    Write,
}

/// Geometry and write policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line_bytes: usize,
    /// If true, writes propagate immediately and lines are never dirty
    /// (the master-core's L0 D-cache); if false, write-back.
    pub write_through: bool,
}

impl CacheConfig {
    /// Table I: private 64KB, 2-way, 64B-line L1.
    #[must_use]
    pub fn l1() -> Self {
        Self {
            capacity_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            write_through: false,
        }
    }

    /// Table I: 1MB per core, 8-way, 64B-line LLC slice.
    #[must_use]
    pub fn llc() -> Self {
        Self {
            capacity_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            write_through: false,
        }
    }

    /// §III-B3: 2KB L0 instruction filter cache (write-through is moot for an
    /// I-cache but keeps it trivially discardable).
    #[must_use]
    pub fn l0_inst() -> Self {
        Self {
            capacity_bytes: 2 * 1024,
            ways: 2,
            line_bytes: 64,
            write_through: true,
        }
    }

    /// §III-B3: 4KB write-through L0 data filter cache.
    #[must_use]
    pub fn l0_data() -> Self {
        Self {
            capacity_bytes: 4 * 1024,
            ways: 2,
            line_bytes: 64,
            write_through: true,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`Cache::new`]).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "need at least one way");
        let lines = self.capacity_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "capacity must divide evenly into ways"
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss and write-back counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic).
    pub writebacks: u64,
    /// Lines invalidated by external request.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0 when no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A set-associative, LRU-replacement cache model.
///
/// The model is *tag-only*: it tracks which lines are resident, not their
/// data. That is sufficient for latency and interference modelling.
///
/// # Examples
///
/// ```
/// use duplexity_uarch::cache::{AccessKind, Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1());
/// assert!(!l1.access(0x1000, AccessKind::Read));   // cold miss
/// assert!(l1.access(0x1000, AccessKind::Read));    // now resident
/// assert!(l1.access(0x1020, AccessKind::Read));    // same 64B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Line>,
    num_sets: usize,
    set_shift: u32,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size or set count is not a power of two, or the
    /// capacity does not divide evenly into `ways` sets.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.sets();
        Self {
            config,
            sets: vec![INVALID_LINE; num_sets * config.ways],
            num_sets,
            set_shift: config.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses `addr`; returns `true` on hit. On miss the line is filled,
    /// evicting the set's LRU line (a dirty eviction counts a write-back).
    ///
    /// Write hits mark the line dirty unless the cache is write-through.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        let base = set * self.config.ways;
        let ways = &mut self.sets[base..base + self.config.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            if kind == AccessKind::Write && !self.config.write_through {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write && !self.config.write_through,
            lru: self.tick,
        };
        false
    }

    /// Fills `addr`'s line without touching the hit/miss statistics (used
    /// for prefetches, which are not demand accesses). Evicts LRU as usual;
    /// a dirty eviction still counts a write-back (real traffic).
    pub fn fill_quietly(&mut self, addr: u64) {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        let base = set * self.config.ways;
        let ways = &mut self.sets[base..base + self.config.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: false,
            lru: self.tick,
        };
    }

    /// Returns `true` if `addr`'s line is resident, without disturbing LRU
    /// state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.config.ways;
        self.sets[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates `addr`'s line if resident; returns `true` if a line was
    /// dropped. Used to forward invalidations from the lender L1 to the
    /// master-core's L0 to maintain inclusion (§III-B3).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.config.ways;
        for line in &mut self.sets[base..base + self.config.ways] {
            if line.valid && line.tag == tag {
                line.valid = false;
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Invalidates the entire cache contents (statistics survive).
    ///
    /// Models discarding the write-through L0s on a mode switch.
    pub fn flush_all(&mut self) {
        for line in &mut self.sets {
            *line = INVALID_LINE;
        }
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|l| l.valid).count()
    }

    /// Total line capacity.
    #[must_use]
    pub fn total_lines(&self) -> usize {
        self.sets.len()
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.set_shift;
        let set = (line_addr as usize) & (self.num_sets - 1);
        let tag = line_addr >> self.num_sets.trailing_zeros();
        (set, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            write_through: false,
        })
    }

    #[test]
    fn geometry_from_table1() {
        assert_eq!(CacheConfig::l1().sets(), 512);
        assert_eq!(CacheConfig::llc().sets(), 2048);
        assert_eq!(CacheConfig::l0_inst().sets(), 16);
        assert_eq!(CacheConfig::l0_data().sets(), 32);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, AccessKind::Read));
        assert!(c.access(0x0, AccessKind::Read));
        assert!(c.access(0x3F, AccessKind::Read)); // same line
        assert!(!c.access(0x40, AccessKind::Read)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 in a 2-way cache: stride = sets*line = 256.
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        c.access(0x000, AccessKind::Read); // refresh line A
        c.access(0x200, AccessKind::Read); // evicts B (0x100)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn writeback_only_for_dirty_lines() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Write); // dirty
        c.access(0x100, AccessKind::Read); // clean
        c.access(0x200, AccessKind::Read); // evicts dirty 0x000
        c.access(0x300, AccessKind::Read); // evicts clean 0x100
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_never_dirty() {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            write_through: true,
        });
        c.access(0x000, AccessKind::Write);
        c.access(0x100, AccessKind::Write);
        c.access(0x200, AccessKind::Write);
        c.access(0x300, AccessKind::Write);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn quiet_fill_installs_without_stats() {
        let mut c = tiny();
        c.fill_quietly(0x80);
        assert!(c.probe(0x80));
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0x80, AccessKind::Read), "prefetched line must hit");
    }

    #[test]
    fn invalidate_drops_line() {
        let mut c = tiny();
        c.access(0x80, AccessKind::Read);
        assert!(c.invalidate(0x80));
        assert!(!c.probe(0x80));
        assert!(!c.invalidate(0x80)); // already gone
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn flush_all_empties() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.access(i * 64, AccessKind::Read);
        }
        assert!(c.resident_lines() > 0);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        // Probing A must not refresh it.
        assert!(c.probe(0x000));
        c.access(0x200, AccessKind::Read); // should evict A (LRU), not B
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn capacity_accounting() {
        let mut c = tiny();
        assert_eq!(c.total_lines(), 8);
        for i in 0..64u64 {
            c.access(i * 64, AccessKind::Read);
        }
        assert_eq!(c.resident_lines(), 8); // full, no over-fill
    }

    #[test]
    fn distinct_threads_thrash_shared_cache() {
        // The §II-B effect: two address streams alternating in one cache
        // produce more misses than each stream alone.
        let mut shared = tiny();
        let mut solo = tiny();
        let mut shared_misses = 0;
        let mut solo_misses = 0;
        for _round in 0..100u64 {
            for i in 0..8u64 {
                let a = i * 64;
                let b = 0x10_000 + i * 64; // second stream
                if !shared.access(a, AccessKind::Read) {
                    shared_misses += 1;
                }
                if !shared.access(b, AccessKind::Read) {
                    shared_misses += 1;
                }
                if !solo.access(a, AccessKind::Read) {
                    solo_misses += 1;
                }
            }
        }
        // Each stream alone fits (8 lines in 8-line cache) but both do not.
        assert!(shared_misses > 2 * solo_misses);
    }
}
