//! Translation lookaside buffers.
//!
//! Table I provisions 64-entry I/D TLBs. The master-core replicates a
//! "full-size TLB ... for exclusive use by filler-threads" (§III-B2), which
//! costs only ~0.7% core area but prevents filler-threads from evicting the
//! master-thread's translations.

use serde::{Deserialize, Serialize};

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed (page walk required).
    pub misses: u64,
}

impl TlbStats {
    /// Total translations.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0 when no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A fully-associative, LRU TLB over fixed-size pages.
///
/// # Examples
///
/// ```
/// use duplexity_uarch::tlb::Tlb;
///
/// let mut tlb = Tlb::new(64, 4096);
/// assert!(!tlb.translate(0x1000));       // cold miss
/// assert!(tlb.translate(0x1FFF));        // same 4KB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, lru)
    capacity: usize,
    page_shift: u32,
    stats: TlbStats,
    tick: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over pages of `page_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or `page_bytes` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            page_shift: page_bytes.trailing_zeros(),
            stats: TlbStats::default(),
            tick: 0,
        }
    }

    /// Table I's 64-entry TLB over 4KB pages.
    #[must_use]
    pub fn table1() -> Self {
        Self::new(64, 4096)
    }

    /// Translates `addr`; returns `true` on hit. On miss the page is
    /// installed, evicting the LRU entry when full.
    pub fn translate(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let vpn = addr >> self.page_shift;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == vpn) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .expect("non-empty");
            self.entries.swap_remove(idx);
        }
        self.entries.push((vpn, self.tick));
        false
    }

    /// Drops all entries (e.g. on a context switch without ASIDs).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of resident translations.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.translate(0x0000));
        assert!(t.translate(0x0FFF));
        assert!(!t.translate(0x1000));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096);
        t.translate(0x0000); // page 0
        t.translate(0x1000); // page 1
        t.translate(0x0000); // refresh page 0
        t.translate(0x2000); // evicts page 1
        assert!(t.translate(0x0000));
        assert!(!t.translate(0x1000)); // was evicted
    }

    #[test]
    fn capacity_bounded() {
        let mut t = Tlb::new(8, 4096);
        for i in 0..100u64 {
            t.translate(i * 4096);
        }
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn flush_clears_entries_keeps_stats() {
        let mut t = Tlb::new(4, 4096);
        t.translate(0x0);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.stats().misses, 1);
        assert!(!t.translate(0x0)); // cold again
    }

    #[test]
    fn miss_ratio_computation() {
        let mut t = Tlb::new(4, 4096);
        t.translate(0x0);
        t.translate(0x0);
        t.translate(0x0);
        t.translate(0x0);
        assert!((t.stats().miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table1_shape() {
        let t = Tlb::table1();
        assert_eq!(t.capacity, 64);
        assert_eq!(t.page_shift, 12);
    }
}
