//! Branch direction and target predictors.
//!
//! Table I: the baseline/master core uses a tournament predictor — 16K-entry
//! bimodal, 16K-entry gshare and 16K-entry selector — with a 32-entry return
//! address stack and a 2K-entry BTB. The lender-core uses a smaller 8K-entry
//! gshare, and the master-core replicates a "reduced-size branch predictor"
//! (gshare 8K) for filler-thread mode so fillers cannot pollute the
//! master-thread's history (§III-B2).

use serde::{Deserialize, Serialize};

/// Saturating 2-bit counter predictor state machine.
///
/// States 0..=3; >=2 predicts taken. This is the primitive underlying the
/// bimodal and gshare tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter2(u8);

impl Counter2 {
    /// Weakly-not-taken initial state.
    #[must_use]
    pub fn new() -> Self {
        Self(1)
    }

    /// Current prediction.
    #[must_use]
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Self::new()
    }
}

/// A direction predictor: predicts taken/not-taken for a branch PC and is
/// trained with the actual outcome.
pub trait BranchPredictor: std::fmt::Debug + Send {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Trains the predictor with the resolved outcome of `pc`.
    fn update(&mut self, pc: u64, taken: bool);

    /// Resets all prediction state (e.g. on a hard context purge).
    fn reset(&mut self);
}

/// Which predictor organization a core uses (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Tournament: bimodal(16K) + gshare(16K) + selector(16K).
    Tournament16k,
    /// gshare(8K) — lender-core and the master-core's filler-mode predictor.
    Gshare8k,
}

impl PredictorKind {
    /// Instantiates the predictor.
    #[must_use]
    pub fn build(self) -> Box<dyn BranchPredictor> {
        match self {
            PredictorKind::Tournament16k => Box::new(Tournament::table1()),
            PredictorKind::Gshare8k => Box::new(Gshare::new(8 * 1024)),
        }
    }
}

/// Bimodal predictor: a PC-indexed table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            table: vec![Counter2::new(); entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }

    fn reset(&mut self) {
        self.table.fill(Counter2::new());
    }
}

/// Gshare predictor: global history XOR PC indexes a 2-bit counter table.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` counters and a matching
    /// history length.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            table: vec![Counter2::new(); entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits: entries.trailing_zeros(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn reset(&mut self) {
        self.table.fill(Counter2::new());
        self.history = 0;
    }
}

/// Tournament predictor: a selector chooses between bimodal and gshare per
/// branch (Table I's 16K/16K/16K organization).
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    selector: Vec<Counter2>, // >=2 selects gshare
    mask: u64,
}

impl Tournament {
    /// Creates a tournament predictor with `entries` in each component.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            bimodal: Bimodal::new(entries),
            gshare: Gshare::new(entries),
            selector: vec![Counter2::new(); entries],
            mask: entries as u64 - 1,
        }
    }

    /// Table I organization: bimodal(16K), gshare(16K), selector(16K).
    #[must_use]
    pub fn table1() -> Self {
        Self::new(16 * 1024)
    }

    fn sel_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for Tournament {
    fn predict(&self, pc: u64) -> bool {
        if self.selector[self.sel_index(pc)].predict() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let bp = self.bimodal.predict(pc);
        let gp = self.gshare.predict(pc);
        // Train the selector toward whichever component was right (only when
        // they disagree).
        if bp != gp {
            let i = self.sel_index(pc);
            self.selector[i].update(gp == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn reset(&mut self) {
        self.bimodal.reset();
        self.gshare.reset();
        self.selector.fill(Counter2::new());
    }
}

/// Branch target buffer: direct-mapped tag+target store.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    mask: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            entries: vec![None; entries],
            mask: entries as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Table I's 2K-entry BTB.
    #[must_use]
    pub fn table1() -> Self {
        Self::new(2048)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let i = ((pc >> 2) & self.mask) as usize;
        match self.entries[i] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = ((pc >> 2) & self.mask) as usize;
        self.entries[i] = Some((pc, target));
    }

    /// (hits, misses) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clears all targets.
    pub fn reset(&mut self) {
        self.entries.fill(None);
    }
}

/// Return address stack (Table I: 32 entries), with wrap-around overwrite on
/// overflow as in real hardware.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS needs capacity");
        Self {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address on a call; overwrites the oldest on overflow.
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address, if any.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Empties the stack.
    pub fn reset(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter2_saturates() {
        let mut c = Counter2::new();
        assert!(!c.predict());
        c.update(true);
        assert!(c.predict());
        for _ in 0..10 {
            c.update(true);
        }
        c.update(false);
        assert!(c.predict()); // 3 -> 2, still taken
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut b = Bimodal::new(64);
        for _ in 0..4 {
            b.update(0x400, true);
        }
        assert!(b.predict(0x400));
        for _ in 0..4 {
            b.update(0x400, false);
        }
        assert!(!b.predict(0x400));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // T,N,T,N... is mispredicted by bimodal but learned by gshare.
        let mut g = Gshare::new(256);
        let mut correct = 0;
        let mut taken = true;
        for i in 0..400 {
            let p = g.predict(0x800);
            if i >= 200 && p == taken {
                correct += 1;
            }
            g.update(0x800, taken);
            taken = !taken;
        }
        assert!(correct as f64 / 200.0 > 0.95, "correct {correct}");
    }

    #[test]
    fn tournament_beats_components_on_mixed_workload() {
        // Branch A is strongly biased (bimodal-friendly); branch B alternates
        // (gshare-friendly). Tournament should approach the better of the
        // two on each.
        let mut t = Tournament::new(256);
        let mut taken_b = true;
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            // Branch A: always taken.
            let pa = t.predict(0x1000);
            if i >= total / 2 && pa {
                correct += 1;
            }
            t.update(0x1000, true);
            // Branch B: alternating.
            let pb = t.predict(0x2004);
            if i >= total / 2 && pb == taken_b {
                correct += 1;
            }
            t.update(0x2004, taken_b);
            taken_b = !taken_b;
        }
        assert!(correct as f64 / f64::from(total) > 0.9, "correct {correct}");
    }

    #[test]
    fn predictor_kind_builds() {
        let mut p = PredictorKind::Tournament16k.build();
        p.update(0x10, true);
        let mut q = PredictorKind::Gshare8k.build();
        q.update(0x10, false);
    }

    #[test]
    fn btb_round_trip() {
        let mut btb = Btb::new(16);
        assert_eq!(btb.lookup(0x40), None);
        btb.update(0x40, 0x999);
        assert_eq!(btb.lookup(0x40), Some(0x999));
        // Aliasing PC evicts.
        btb.update(0x40 + 16 * 4, 0x777);
        assert_eq!(btb.lookup(0x40), None);
        assert_eq!(btb.stats().0, 1);
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites oldest (1)
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn reset_clears_learning() {
        let mut g = Gshare::new(64);
        for _ in 0..8 {
            g.update(0x100, true);
        }
        g.reset();
        assert!(!g.predict(0x100)); // back to weakly-not-taken
    }
}
