//! Microarchitectural building blocks for the Duplexity cycle-level simulator.
//!
//! This crate models the stateful structures whose interference (and
//! protection from interference) is the heart of the paper:
//!
//! * [`cache`] — set-associative caches with LRU replacement, including the
//!   write-through L0 I/D filters the master-core uses to access the
//!   lender-core's L1s (§III-B3), and L0/L1 inclusion with invalidation
//!   forwarding;
//! * [`tlb`] — the 64-entry I/D TLBs of Table I, replicated per mode in the
//!   master-core so filler-threads cannot thrash the master-thread's
//!   translations (§III-B2);
//! * [`branch`] — the tournament (bimodal + gshare + selector) predictor of
//!   the baseline/master core and the smaller gshare predictor of the
//!   lender-core, plus BTB and return-address stack;
//! * [`config`] — the Table I microarchitecture configuration and the memory
//!   latency model.
//!
//! All structures expose both *functional* behaviour (hit/miss, taken/not
//! taken) and *occupancy statistics* so the higher-level simulator can report
//! utilization and pollution effects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod tlb;

pub use branch::{BranchPredictor, Btb, Gshare, PredictorKind, ReturnAddressStack, Tournament};
pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use config::{CoreConfig, LatencyModel, MachineConfig, Table1};
pub use tlb::{Tlb, TlbStats};
