//! Calibration: each microservice kernel's *measured* service time on the
//! baseline 4-wide OoO core must land near the paper's §V numbers, so the
//! cycle-level and request-level simulators agree about what a request
//! costs.

use duplexity_cpu::memsys::MemSys;
use duplexity_cpu::ooo::{FetchPolicy, OooEngine, ThreadClass};
use duplexity_cpu::request::RequestStream;
use duplexity_stats::rng::rng_from_seed;
use duplexity_uarch::config::{CoreConfig, LatencyModel, MachineConfig};
use duplexity_workloads::Workload;

/// Measures the mean saturated service time (fetch-to-retire) of `w` on the
/// baseline core, in microseconds.
fn measured_service_us(w: Workload, requests: u64) -> f64 {
    let machine = MachineConfig::baseline();
    let cycles_per_us = machine.cycles_per_us();
    let mut engine = OooEngine::new(
        CoreConfig::baseline_ooo(),
        FetchPolicy::Icount,
        cycles_per_us,
    );
    let stream = RequestStream::saturated(w.kernel(42)).with_max_requests(requests);
    engine.add_thread(Box::new(stream), ThreadClass::Primary);
    let mut mem = MemSys::table1(LatencyModel::default());
    let mut rng = rng_from_seed(7);
    let mut now = 0u64;
    while !engine.all_done() && now < 200_000_000 {
        engine.step(now, &mut mem, &mut rng);
        now += 1;
    }
    assert!(engine.all_done(), "{w}: did not finish in budget");
    // Saturated back-to-back requests: cycles per request = total / count.
    now as f64 / requests as f64 / cycles_per_us
}

#[test]
fn flann_ll_service_is_on_the_order_of_2us() {
    let s = measured_service_us(Workload::FlannLl, 40);
    assert!(
        (0.8..5.0).contains(&s),
        "FLANN-LL measured {s}µs, expected ~2µs"
    );
}

#[test]
fn flann_ha_service_is_on_the_order_of_11us() {
    let s = measured_service_us(Workload::FlannHa, 20);
    assert!(
        (5.0..22.0).contains(&s),
        "FLANN-HA measured {s}µs, expected ~11µs"
    );
}

#[test]
fn rsc_service_is_on_the_order_of_15us() {
    let s = measured_service_us(Workload::Rsc, 20);
    assert!(
        (8.0..28.0).contains(&s),
        "RSC measured {s}µs, expected ~15µs"
    );
}

#[test]
fn mcrouter_service_is_on_the_order_of_7us() {
    let s = measured_service_us(Workload::McRouter, 30);
    assert!(
        (3.5..14.0).contains(&s),
        "McRouter measured {s}µs, expected ~7µs"
    );
}

#[test]
fn wordstem_service_is_on_the_order_of_4us() {
    let s = measured_service_us(Workload::WordStem, 30);
    assert!(
        (1.5..8.0).contains(&s),
        "WordStem measured {s}µs, expected ~4µs"
    );
}

#[test]
fn ha_is_slower_than_ll() {
    let ha = measured_service_us(Workload::FlannHa, 12);
    let ll = measured_service_us(Workload::FlannLl, 12);
    assert!(ha > 3.0 * ll, "HA {ha}µs vs LL {ll}µs");
}
