//! FLANN: LSH-based approximate nearest-neighbor search (§II-B, §V).
//!
//! A real locality-sensitive-hashing index over a synthetic high-dimensional
//! dataset. Each request hashes a query vector against every table's random
//! hyperplanes, probes the matching (and bit-flipped neighbor) buckets,
//! scores the candidate points by true distance, and finally issues a
//! single–cache-line RDMA read (exponential, 1µs mean \[15\]) to fetch the
//! chosen neighbor object from remote memory.
//!
//! Two configurations mirror the paper:
//! * **FLANN-HA** (high accuracy): ~10µs lookups, many candidates;
//! * **FLANN-LL** (low latency): ~1µs lookups via longer hash keys.
//!
//! The algorithm *actually runs* — hashes, buckets, and distances are
//! computed on real data — and the trace it emits uses the true memory
//! addresses of the structures it touches.

use crate::trace::TraceBuilder;
use duplexity_cpu::op::{MicroOp, RequestKernel};
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use rand::RngExt;
use std::collections::HashMap;

/// Virtual base address of the dataset's point vectors.
const POINTS_BASE: u64 = 0x1000_0000;
/// Virtual base address of the hyperplane matrices.
const PLANES_BASE: u64 = 0x2000_0000;
/// Virtual base address of the bucket directory.
const BUCKETS_BASE: u64 = 0x3000_0000;
/// Remote-object region fetched over RDMA.
const REMOTE_BASE: u64 = 0x7000_0000;

/// Tuning parameters of one FLANN configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlannConfig {
    /// Number of LSH tables.
    pub tables: usize,
    /// Hash bits (hyperplanes) per table.
    pub hyperplanes: usize,
    /// Vector dimensionality.
    pub dims: usize,
    /// Dataset size in points.
    pub points: usize,
    /// Buckets probed per table (1 primary + bit-flip neighbors).
    pub probes: usize,
    /// Maximum candidates scored per query.
    pub candidate_cap: usize,
    /// Framework overhead ops per request (RPC parse/serialize).
    pub overhead_ops: usize,
    /// Mean latency of the trailing remote object fetch, µs; `None` removes
    /// the remote access entirely (the §II-B "baseline" sweep variant).
    pub remote_mean_us: Option<f64>,
    /// Give each kernel instance a private address space (gem5-SE
    /// multiprogrammed style). Default `false`: service threads share the
    /// index, as in a real replicated microservice.
    pub private_address_space: bool,
}

impl FlannConfig {
    /// FLANN-HA: ~10µs LSH lookup, large candidate sets (§V).
    #[must_use]
    pub fn high_accuracy() -> Self {
        Self {
            tables: 8,
            hyperplanes: 10,
            dims: 64,
            points: 4096,
            probes: 8,
            candidate_cap: 400,
            overhead_ops: 2000,
            remote_mean_us: Some(1.0),
            private_address_space: false,
        }
    }

    /// FLANN-LL: ~1µs lookups via longer (16-bit) hash keys (§V).
    #[must_use]
    pub fn low_latency() -> Self {
        Self {
            tables: 1,
            hyperplanes: 16,
            dims: 64,
            points: 8192,
            probes: 4,
            candidate_cap: 24,
            overhead_ops: 600,
            remote_mean_us: Some(1.0),
            private_address_space: false,
        }
    }

    /// §II-B sweep: ~10µs compute, no µs-scale stalls ("baseline").
    #[must_use]
    pub fn sweep_baseline() -> Self {
        Self {
            remote_mean_us: None,
            ..Self::high_accuracy()
        }
    }

    /// §II-B sweep FLANN-9-1: ~9–10µs compute per 1µs stall.
    #[must_use]
    pub fn sweep_9_1() -> Self {
        Self::high_accuracy()
    }

    /// §II-B sweep FLANN-10-10: ~10µs compute per 10µs stall.
    #[must_use]
    pub fn sweep_10_10() -> Self {
        Self {
            remote_mean_us: Some(10.0),
            ..Self::high_accuracy()
        }
    }

    /// §II-B sweep FLANN-1-1: ~1µs compute per 1µs stall. Deliberately a
    /// time-sliced version of the HA profile (same tables/dataset character,
    /// one-tenth the per-request work) so that FLANN-10-10 and FLANN-1-1
    /// differ only in stall granularity, as in the paper.
    #[must_use]
    pub fn sweep_1_1() -> Self {
        Self {
            tables: 2,
            hyperplanes: 10,
            probes: 4,
            candidate_cap: 30,
            overhead_ops: 250,
            remote_mean_us: Some(1.0),
            ..Self::high_accuracy()
        }
    }
}

/// One LSH table: hyperplane matrix + bucket directory.
#[derive(Debug)]
struct LshTable {
    /// `hyperplanes x dims` projection matrix, row-major.
    planes: Vec<f32>,
    /// hash -> point ids.
    buckets: HashMap<u32, Vec<u32>>,
}

/// The FLANN microservice kernel.
#[derive(Debug)]
pub struct FlannKernel {
    cfg: FlannConfig,
    data: Vec<f32>, // points x dims, row-major
    tables: Vec<LshTable>,
    rdma: Option<Exponential>,
    query_rng: SimRng,
    /// Per-instance address-space displacement: each kernel instance is its
    /// own process (the paper's multiprogrammed gem5 SE setup), so SMT
    /// threads do not share dataset cache lines.
    addr_offset: u64,
}

impl FlannKernel {
    /// Builds a kernel with the given configuration and dataset seed.
    #[must_use]
    pub fn new(cfg: FlannConfig, seed: u64) -> Self {
        let mut rng = rng_from_seed(derive_stream(seed, 0xF1A0));
        let n = cfg.points * cfg.dims;
        let data: Vec<f32> = (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
        let mut tables = Vec::with_capacity(cfg.tables);
        for _ in 0..cfg.tables {
            let planes: Vec<f32> = (0..cfg.hyperplanes * cfg.dims)
                .map(|_| rng.random::<f32>() * 2.0 - 1.0)
                .collect();
            let mut buckets: HashMap<u32, Vec<u32>> = HashMap::new();
            for p in 0..cfg.points {
                let v = &data[p * cfg.dims..(p + 1) * cfg.dims];
                let h = hash_vector(v, &planes, cfg.hyperplanes, cfg.dims);
                buckets.entry(h).or_default().push(p as u32);
            }
            tables.push(LshTable { planes, buckets });
        }
        let h = if cfg.private_address_space {
            derive_stream(seed, 0xADD7)
        } else {
            0
        };
        Self {
            cfg,
            data,
            tables,
            rdma: cfg.remote_mean_us.map(Exponential::new),
            query_rng: rng_from_seed(derive_stream(seed, 0xF1A1)),
            // Distinct 32MB-spaced region plus an odd line-stagger so
            // instances do not alias into identical cache sets.
            addr_offset: (h % 64) * 0x200_0000 + (h % 251) * 64,
        }
    }

    /// The paper's FLANN-HA configuration.
    #[must_use]
    pub fn high_accuracy(seed: u64) -> Self {
        Self::new(FlannConfig::high_accuracy(), seed)
    }

    /// The paper's FLANN-LL configuration.
    #[must_use]
    pub fn low_latency(seed: u64) -> Self {
        Self::new(FlannConfig::low_latency(), seed)
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FlannConfig {
        &self.cfg
    }

    fn point(&self, id: u32) -> &[f32] {
        let d = self.cfg.dims;
        &self.data[id as usize * d..(id as usize + 1) * d]
    }

    /// Runs one real query, returning (best point id, candidates scored).
    fn query(&mut self, tb: &mut TraceBuilder<'_>) -> (u32, usize) {
        let d = self.cfg.dims;
        let query: Vec<f32> = (0..d)
            .map(|_| self.query_rng.random::<f32>() * 2.0 - 1.0)
            .collect();

        let mut candidates: Vec<u32> = Vec::with_capacity(self.cfg.candidate_cap);
        let mut seen = std::collections::HashSet::new();
        for (t, table) in self.tables.iter().enumerate() {
            // Hash the query: one traced dot product per hyperplane.
            let mut h: u32 = 0;
            for plane in 0..self.cfg.hyperplanes {
                let row = &table.planes[plane * d..(plane + 1) * d];
                let addr = self.addr_offset
                    + PLANES_BASE
                    + ((t * self.cfg.hyperplanes + plane) * d * 4) as u64;
                let dot = dot_product_traced(tb, &query, row, addr);
                h = (h << 1) | u32::from(dot >= 0.0);
            }
            // Probe the primary bucket and bit-flip neighbors.
            for probe in 0..self.cfg.probes {
                let probe_hash = if probe == 0 {
                    h
                } else {
                    h ^ (1 << (probe - 1))
                };
                // Bucket directory access.
                let r = tb.load(
                    self.addr_offset
                        + BUCKETS_BASE
                        + ((t as u64) << 24)
                        + u64::from(probe_hash) * 16,
                );
                tb.alu_on(r);
                let hit = table.buckets.get(&probe_hash);
                tb.branch(100 + t as u32, hit.is_some());
                if let Some(ids) = hit {
                    for &id in ids {
                        if candidates.len() >= self.cfg.candidate_cap {
                            break;
                        }
                        if seen.insert(id) {
                            candidates.push(id);
                        }
                    }
                }
            }
        }

        // Score candidates by true squared distance.
        let mut best = (f32::INFINITY, 0u32);
        for (i, &id) in candidates.iter().enumerate() {
            let addr = self.addr_offset + POINTS_BASE + (id as usize * d * 4) as u64;
            let dist = distance_traced(tb, &query, self.point(id), addr);
            let better = dist < best.0;
            tb.branch(200 + (i % 4) as u32, better);
            if better {
                best = (dist, id);
            }
        }
        (best.1, candidates.len())
    }
}

impl RequestKernel for FlannKernel {
    fn generate(&mut self, rng: &mut SimRng, out: &mut Vec<MicroOp>) {
        let cfg = self.cfg;
        let mut tb = TraceBuilder::new(out, 0x40_0000, 32 * 1024);
        // RPC receive/parse overhead.
        tb.alu_block(cfg.overhead_ops / 2);
        // The real LSH lookup, traced as it runs.
        let (best, _) = self.query(&mut tb);
        // Fetch the chosen neighbor object from remote memory: a
        // single-cache-line RDMA read, exponential with 1µs mean [15]
        // (omitted entirely in the stall-free sweep variant).
        if let Some(rdma) = &self.rdma {
            let latency = rdma.sample(rng);
            let sync = tb.alu();
            let r = tb.remote_after(latency, sync);
            let _ = tb.load_dependent(self.addr_offset + REMOTE_BASE + u64::from(best) * 64, r);
            // Post-process + serialize the reply.
            let tail = tb.alu_chain(r, 16);
            tb.store(0x6000_0000, tail);
        }
        tb.alu_block(cfg.overhead_ops / 2);
    }

    fn nominal_service_us(&self) -> f64 {
        if self.cfg.tables > 1 {
            11.0
        } else {
            2.0
        }
    }
}

/// A dot product instrumented with 4-accumulator FP chains and per-line
/// loads of the stored operand (the query stays in registers).
fn dot_product_traced(tb: &mut TraceBuilder<'_>, a: &[f32], b: &[f32], b_addr: u64) -> f32 {
    let d = a.len();
    // Real computation.
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    // Trace: one load per 16 floats (64B line), FP work as 8 parallel
    // dependency chains of d/8 (a vectorized reduction unrolled x8).
    let lines = (d * 4).div_ceil(64);
    for l in 0..lines {
        tb.load(b_addr + (l * 64) as u64);
    }
    let mut accs = [0u8; 8];
    for a in &mut accs {
        *a = tb.alu();
    }
    for i in 0..d {
        accs[i % 8] = tb.fp_on(accs[i % 8]);
    }
    let s = tb.fp_on(accs[0]);
    tb.fp_on(s);
    dot
}

/// A squared-distance computation with the same trace shape as
/// [`dot_product_traced`].
fn distance_traced(tb: &mut TraceBuilder<'_>, a: &[f32], b: &[f32], b_addr: u64) -> f32 {
    let dist: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let d = a.len();
    let lines = (d * 4).div_ceil(64);
    for l in 0..lines {
        tb.load(b_addr + (l * 64) as u64);
    }
    let mut accs = [0u8; 8];
    for a in &mut accs {
        *a = tb.alu();
    }
    for i in 0..d {
        accs[i % 8] = tb.fp_on(accs[i % 8]);
    }
    tb.fp_on(accs[0]);
    dist
}

/// Hashes a vector against a hyperplane matrix (pure computation, used at
/// index build time).
fn hash_vector(v: &[f32], planes: &[f32], hyperplanes: usize, dims: usize) -> u32 {
    let mut h = 0u32;
    for p in 0..hyperplanes {
        let row = &planes[p * dims..(p + 1) * dims];
        let dot: f32 = v.iter().zip(row).map(|(x, y)| x * y).sum();
        h = (h << 1) | u32::from(dot >= 0.0);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_cpu::op::Op;

    fn trace(kernel: &mut FlannKernel, seed: u64) -> Vec<MicroOp> {
        let mut rng = rng_from_seed(seed);
        let mut out = Vec::new();
        kernel.generate(&mut rng, &mut out);
        out
    }

    #[test]
    fn ha_emits_exactly_one_rdma_read() {
        let mut k = FlannKernel::high_accuracy(1);
        let ops = trace(&mut k, 2);
        let remotes = ops
            .iter()
            .filter(|o| matches!(o.op, Op::RemoteLoad { .. }))
            .count();
        assert_eq!(remotes, 1);
    }

    #[test]
    fn ha_has_far_more_compute_than_ll() {
        let mut ha = FlannKernel::high_accuracy(1);
        let mut ll = FlannKernel::low_latency(1);
        let ha_len = trace(&mut ha, 2).len();
        let ll_len = trace(&mut ll, 2).len();
        assert!(
            ha_len > 4 * ll_len,
            "HA {ha_len} ops must dwarf LL {ll_len} ops"
        );
    }

    #[test]
    fn lookup_touches_plane_and_point_addresses() {
        let mut k = FlannKernel::high_accuracy(3);
        let ops = trace(&mut k, 4);
        let loads: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Load { addr } => Some(addr),
                _ => None,
            })
            .collect();
        assert!(loads
            .iter()
            .any(|&a| (PLANES_BASE..BUCKETS_BASE).contains(&a)));
        assert!(loads
            .iter()
            .any(|&a| (POINTS_BASE..PLANES_BASE).contains(&a)));
        assert!(loads.iter().any(|&a| a >= REMOTE_BASE));
    }

    #[test]
    fn rdma_latency_varies_across_requests() {
        let mut k = FlannKernel::low_latency(5);
        let mut rng = rng_from_seed(6);
        let mut latencies = Vec::new();
        for _ in 0..16 {
            let mut out = Vec::new();
            k.generate(&mut rng, &mut out);
            for op in &out {
                if let Op::RemoteLoad { latency_us } = op.op {
                    latencies.push(latency_us);
                }
            }
        }
        assert_eq!(latencies.len(), 16);
        let mean = latencies.iter().sum::<f64>() / 16.0;
        assert!(mean > 0.2 && mean < 4.0, "mean RDMA {mean}µs");
        let all_same = latencies.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "stall durations must be stochastic");
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let mut rng = rng_from_seed(7);
        let dims = 16;
        let planes: Vec<f32> = (0..8 * dims).map(|_| rng.random::<f32>() - 0.5).collect();
        let v: Vec<f32> = (0..dims).map(|_| rng.random::<f32>() - 0.5).collect();
        let h1 = hash_vector(&v, &planes, 8, dims);
        let h2 = hash_vector(&v, &planes, 8, dims);
        assert_eq!(h1, h2);
        // Different vectors mostly hash differently.
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            let u: Vec<f32> = (0..dims).map(|_| rng.random::<f32>() - 0.5).collect();
            distinct.insert(hash_vector(&u, &planes, 8, dims));
        }
        assert!(distinct.len() > 16, "hashes collapsed: {}", distinct.len());
    }

    #[test]
    fn query_finds_a_near_neighbor() {
        // The returned id must be at least as close as a random point,
        // overwhelmingly often.
        let mut k = FlannKernel::new(FlannConfig::high_accuracy(), 11);
        let mut wins = 0;
        for i in 0..10 {
            let mut out = Vec::new();
            let mut tb = TraceBuilder::new(&mut out, 0, 1024);
            // Reconstruct the query the kernel will use by peeking at its
            // RNG is not possible; instead check the invariant directly on a
            // fresh query call.
            let (best, scanned) = k.query(&mut tb);
            assert!(scanned > 0, "iteration {i}: no candidates scanned");
            assert!((best as usize) < k.cfg.points);
            wins += 1;
        }
        assert_eq!(wins, 10);
    }

    #[test]
    fn candidate_cap_respected() {
        let mut k = FlannKernel::high_accuracy(13);
        let mut out = Vec::new();
        let mut tb = TraceBuilder::new(&mut out, 0, 1024);
        let (_, scanned) = k.query(&mut tb);
        assert!(scanned <= k.cfg.candidate_cap);
    }
}
