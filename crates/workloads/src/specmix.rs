//! SPEC-like synthetic CPU kernels for the Figure 2(a) study.
//!
//! Figure 2(a) compares the throughput of multi-threaded SPEC workload mixes
//! under in-order vs out-of-order issue as thread count grows; the paper's
//! point is that the gap vanishes around 8 threads. What drives that result
//! is the *profile diversity* of the mix — ILP-rich code benefits from OoO,
//! pointer chases and branchy code do not — so we provide four synthetic
//! kernels spanning those profiles and mix them round-robin, as SPEC-rate
//! experiments do.

use duplexity_cpu::op::{InstructionStream, LoopedTrace, MicroOp, Op, NO_REG};
use duplexity_stats::rng::{derive_stream, rng_from_seed};
use rand::RngExt;

/// The synthetic kernel profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKernel {
    /// High-ILP arithmetic (independent int/FP ops, cached loads).
    Ilp,
    /// Serial pointer chasing over an L1-resident region.
    PointerChase,
    /// Data-dependent branches with partial predictability.
    Branchy,
    /// Streaming loads over a multi-MB array.
    Streamer,
}

impl SpecKernel {
    /// The four profiles in mix order.
    pub const ALL: [SpecKernel; 4] = [
        SpecKernel::Ilp,
        SpecKernel::PointerChase,
        SpecKernel::Branchy,
        SpecKernel::Streamer,
    ];

    /// Builds the looping trace for this kernel.
    #[must_use]
    pub fn trace(self, thread: usize, seed: u64) -> Vec<MicroOp> {
        // Stagger each thread's set alignment (odd multiple of the line
        // size): distinct processes do not alias into identical cache sets.
        let base = 0x1_0000_0000 + 0x1000_0000 * thread as u64 + 4288 * thread as u64;
        let mut rng = rng_from_seed(derive_stream(seed, 0x57EC + thread as u64));
        let mut ops = Vec::with_capacity(1024);
        let mut pc = base;
        let push = |ops: &mut Vec<MicroOp>, op: MicroOp| {
            ops.push(op);
        };
        match self {
            SpecKernel::Ilp => {
                // load -> consume -> consume triads interleaved with
                // independent FP work: an OoO window overlaps the load
                // latencies; in-order issue stalls at each first consumer.
                for i in 0..128u64 {
                    let reg = (i % 6) as u8;
                    push(
                        &mut ops,
                        MicroOp::new(
                            pc,
                            Op::Load {
                                addr: base + 0x10_000 + (i * 64) % 2048,
                            },
                        )
                        .with_dst(reg),
                    );
                    pc += 4;
                    push(
                        &mut ops,
                        MicroOp::new(pc, Op::IntMul)
                            .with_srcs(reg, (reg + 1) % 6)
                            .with_dst(6),
                    );
                    pc += 4;
                    push(
                        &mut ops,
                        MicroOp::new(pc, Op::IntAlu)
                            .with_srcs(6, NO_REG)
                            .with_dst(7),
                    );
                    pc += 4;
                    push(&mut ops, MicroOp::new(pc, Op::FpAlu).with_dst(8));
                    pc += 4;
                }
            }
            SpecKernel::PointerChase => {
                // A 16KB ring of pointers: every load's address depends on
                // the previous load (IPC ~ 1/l1_hit regardless of issue
                // policy).
                for i in 0..128u64 {
                    push(
                        &mut ops,
                        MicroOp::new(
                            pc,
                            Op::Load {
                                addr: base + 0x20_000 + (i * 64) % 2048,
                            },
                        )
                        .with_srcs(0, NO_REG)
                        .with_dst(0),
                    );
                    pc += 4;
                    push(
                        &mut ops,
                        MicroOp::new(pc, Op::IntAlu)
                            .with_srcs(0, NO_REG)
                            .with_dst(0),
                    );
                    pc += 4;
                }
            }
            SpecKernel::Branchy => {
                for i in 0..384u64 {
                    let reg = (i % 8) as u8;
                    push(&mut ops, MicroOp::new(pc, Op::IntAlu).with_dst(reg));
                    pc += 4;
                    if i % 3 == 0 {
                        // 70% biased one way, 30% random: partially
                        // predictable, like integer SPEC.
                        let taken = rng.random::<f64>() < 0.7 || rng.random::<bool>();
                        push(
                            &mut ops,
                            MicroOp::new(
                                pc,
                                Op::Branch {
                                    taken,
                                    target: pc + 32,
                                },
                            ),
                        );
                        pc += 4;
                    }
                }
            }
            SpecKernel::Streamer => {
                for i in 0..256u64 {
                    let reg = (i % 10) as u8;
                    if i % 2 == 0 {
                        // Hot 2KB buffer with a long-stride streaming access
                        // every 8th load (2MB footprint: L1/LLC misses that
                        // OoO can overlap but in-order issue cannot).
                        let addr = if i % 16 == 14 {
                            base + 0x100_0000 + (i * 64 * 67) % 0x20_0000
                        } else {
                            base + 0x30_000 + (i * 64) % 2048
                        };
                        push(&mut ops, MicroOp::new(pc, Op::Load { addr }).with_dst(reg));
                    } else {
                        // Consume the just-loaded value: in-order issue eats
                        // the full miss latency; OoO overlaps several.
                        push(
                            &mut ops,
                            MicroOp::new(pc, Op::IntAlu)
                                .with_srcs(((i + 9) % 10) as u8, NO_REG)
                                .with_dst(reg),
                        );
                    }
                    pc += 4;
                }
            }
        }
        ops
    }
}

/// Builds the instruction stream for thread `i` of a SPEC-like rate mix.
///
/// Every thread interleaves all four kernel profiles (concatenated into one
/// loop), so threads are statistically identical and throughput scaling with
/// thread count is not confounded by mix composition.
#[must_use]
pub fn mix_stream(thread: usize, seed: u64) -> Box<dyn InstructionStream> {
    let mut ops = Vec::new();
    for kernel in SpecKernel::ALL {
        ops.extend(kernel.trace(thread, seed));
    }
    Box::new(LoopedTrace::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::rng::rng_from_seed;

    #[test]
    fn traces_are_nonempty_and_distinct() {
        for k in SpecKernel::ALL {
            let t = k.trace(0, 1);
            assert!(!t.is_empty(), "{k:?}");
        }
        let a = SpecKernel::Ilp.trace(0, 1);
        let b = SpecKernel::PointerChase.trace(0, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn pointer_chase_is_fully_serial() {
        let t = SpecKernel::PointerChase.trace(0, 1);
        for op in &t {
            if matches!(op.op, Op::Load { .. }) {
                assert_eq!(op.srcs[0], 0, "chase loads must depend on reg 0");
            }
        }
    }

    #[test]
    fn branchy_contains_branches() {
        let t = SpecKernel::Branchy.trace(0, 2);
        let branches = t
            .iter()
            .filter(|o| matches!(o.op, Op::Branch { .. }))
            .count();
        assert!(branches > 64, "branches {branches}");
    }

    #[test]
    fn streamer_has_large_footprint() {
        let t = SpecKernel::Streamer.trace(0, 3);
        let addrs: Vec<u64> = t
            .iter()
            .filter_map(|o| match o.op {
                Op::Load { addr } => Some(addr),
                _ => None,
            })
            .collect();
        let min = addrs.iter().min().unwrap();
        let max = addrs.iter().max().unwrap();
        assert!(max - min > 1_000_000, "footprint {}", max - min);
    }

    #[test]
    fn mix_streams_interleave_all_profiles() {
        let mut s = mix_stream(5, 7);
        let mut rng = rng_from_seed(1);
        let mut branches = 0;
        let mut loads = 0;
        for now in 0..4000 {
            match s.next(now, &mut rng) {
                duplexity_cpu::op::Fetched::Op(op) => match op.op {
                    Op::Branch { .. } => branches += 1,
                    Op::Load { .. } => loads += 1,
                    _ => {}
                },
                other => panic!("mix stream must be infinite, got {other:?}"),
            }
        }
        // The concatenated loop contains both branchy and memory phases.
        assert!(branches > 50, "branches {branches}");
        assert!(loads > 300, "loads {loads}");
    }

    #[test]
    fn threads_use_disjoint_address_spaces() {
        let a = SpecKernel::Streamer.trace(0, 1);
        let b = SpecKernel::Streamer.trace(1, 1);
        let addr = |ops: &[MicroOp]| -> u64 {
            ops.iter()
                .find_map(|o| match o.op {
                    Op::Load { addr } => Some(addr),
                    _ => None,
                })
                .unwrap()
        };
        assert!(addr(&b) > addr(&a) + 0x100_0000);
    }
}
