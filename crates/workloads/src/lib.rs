//! Workload models for the Duplexity reproduction.
//!
//! §V of the paper evaluates four latency-critical microservices and a pool
//! of latency-insensitive batch threads. Each is re-implemented here as a
//! *real algorithm* instrumented to emit micro-op traces with genuine address
//! and branch streams (see [`trace::TraceBuilder`]):
//!
//! * [`flann`] — LSH-based approximate nearest-neighbor search (FLANN-HA at
//!   ~10µs lookups, FLANN-LL at ~1µs), followed by a 1µs-average RDMA read;
//! * [`rsc`] — remote storage caching: a cuckoo-hash block index (3µs
//!   lookup), an 8µs-average Optane access via user-level polling, and a 4KB
//!   copy;
//! * [`mcrouter`] — consistent-hash routing across 100 leaf KV servers with
//!   a synchronous 3–5µs leaf wait;
//! * [`wordstem`] — the Porter stemming algorithm, a stall-free 4µs leaf
//!   service;
//! * [`graph`] — BSP PageRank and single-source shortest path over a
//!   synthetic power-law (Twitter-like) graph, the filler/batch threads
//!   (1µs RDMA stall per 1–2µs of compute, §V);
//! * [`specmix`] — SPEC-like synthetic CPU kernels with distinct ILP,
//!   locality, and branch profiles for the Figure 2(a) OoO-vs-InO study;
//! * [`service`] — the request-granularity service-time models consumed by
//!   the BigHouse-style queueing simulator.
//!
//! The [`Workload`] enum ties a microservice's trace kernel and service-time
//! model together for the experiment drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flann;
pub mod graph;
pub mod mcrouter;
pub mod rsc;
pub mod service;
pub mod specmix;
pub mod trace;
pub mod wordstem;

use duplexity_cpu::op::RequestKernel;
use duplexity_net::LatencyDist;
use serde::{Deserialize, Serialize};

/// The latency-critical microservices evaluated in Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// FLANN high-accuracy configuration: ~10µs LSH lookup + 1µs RDMA.
    FlannHa,
    /// FLANN low-latency configuration: ~1µs LSH lookup + 1µs RDMA.
    FlannLl,
    /// Remote storage caching: 3µs cuckoo lookup + 8µs Optane + 4µs copy.
    Rsc,
    /// McRouter: 3µs consistent-hash routing + 3–5µs synchronous leaf wait.
    McRouter,
    /// Porter word stemming: ~4µs pure compute, no µs-scale stalls.
    WordStem,
}

impl Workload {
    /// All microservices in presentation order.
    pub const ALL: [Workload; 5] = [
        Workload::FlannHa,
        Workload::FlannLl,
        Workload::Rsc,
        Workload::McRouter,
        Workload::WordStem,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::FlannHa => "FLANN-HA",
            Workload::FlannLl => "FLANN-LL",
            Workload::Rsc => "RSC",
            Workload::McRouter => "McRouter",
            Workload::WordStem => "WordStem",
        }
    }

    /// Builds the cycle-level trace kernel for this microservice.
    #[must_use]
    pub fn kernel(self, seed: u64) -> Box<dyn RequestKernel> {
        match self {
            Workload::FlannHa => Box::new(flann::FlannKernel::high_accuracy(seed)),
            Workload::FlannLl => Box::new(flann::FlannKernel::low_latency(seed)),
            Workload::Rsc => Box::new(rsc::RscKernel::new(seed)),
            Workload::McRouter => Box::new(mcrouter::McRouterKernel::new(seed)),
            Workload::WordStem => Box::new(wordstem::WordStemKernel::new(seed)),
        }
    }

    /// The request-granularity service-time model (µs) for the queueing
    /// simulator.
    #[must_use]
    pub fn service_model(self) -> service::ServiceModel {
        match self {
            Workload::FlannHa => service::ServiceModel::flann_ha(),
            Workload::FlannLl => service::ServiceModel::flann_ll(),
            Workload::Rsc => service::ServiceModel::rsc(),
            Workload::McRouter => service::ServiceModel::mcrouter(),
            Workload::WordStem => service::ServiceModel::wordstem(),
        }
    }

    /// Nominal mean service time in µs (compute + stalls), per §V.
    #[must_use]
    pub fn nominal_service_us(self) -> f64 {
        self.service_model().mean_total_us()
    }

    /// The workload's µs-scale stall leg as a `duplexity_net` latency law —
    /// the distribution the fault layer perturbs in fault-sweep
    /// experiments. Matches the stall part of [`Workload::service_model`]
    /// (a zero point mass for the stall-free WordStem).
    #[must_use]
    pub fn stall_leg(self) -> LatencyDist {
        match self {
            Workload::FlannHa | Workload::FlannLl => LatencyDist::rdma(),
            Workload::Rsc => LatencyDist::nvm(),
            Workload::McRouter => LatencyDist::rpc_leaf(),
            Workload::WordStem => LatencyDist::Deterministic { us: 0.0 },
        }
    }

    /// True if the workload incurs µs-scale stalls (WordStem does not).
    #[must_use]
    pub fn has_stalls(self) -> bool {
        !matches!(self, Workload::WordStem)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_legs_match_service_model_stall_means() {
        for w in Workload::ALL {
            let leg_mean = w.stall_leg().mean_us();
            let model_mean = w.service_model().mean_stall_us();
            assert!(
                (leg_mean - model_mean).abs() < 1e-9,
                "{w}: leg mean {leg_mean} vs model stall {model_mean}"
            );
        }
    }

    #[test]
    fn all_workloads_have_kernels_and_models() {
        for w in Workload::ALL {
            let _ = w.kernel(1);
            assert!(w.nominal_service_us() > 0.0, "{w}");
            assert!(!w.name().is_empty());
        }
    }

    #[test]
    fn stall_classification() {
        assert!(Workload::FlannHa.has_stalls());
        assert!(!Workload::WordStem.has_stalls());
    }

    #[test]
    fn nominal_services_match_paper() {
        // §V: FLANN-HA ≈ 10+1µs, FLANN-LL ≈ 1+1µs, RSC ≈ 3+8+4µs,
        // McRouter ≈ 3+4µs, WordStem ≈ 4µs.
        assert!((Workload::FlannHa.nominal_service_us() - 11.0).abs() < 1.0);
        assert!((Workload::FlannLl.nominal_service_us() - 2.0).abs() < 0.5);
        assert!((Workload::Rsc.nominal_service_us() - 15.0).abs() < 1.5);
        assert!((Workload::McRouter.nominal_service_us() - 7.0).abs() < 1.0);
        assert!((Workload::WordStem.nominal_service_us() - 4.0).abs() < 0.5);
    }
}
