//! WordStem: the Porter stemming algorithm (§V).
//!
//! A complete implementation of Porter's 1980 suffix-stripping algorithm
//! \[113\] — steps 1a through 5b with the measure/vowel/cvc conditions — used
//! as a query-rewriting leaf microservice. It is stateless and incurs **no
//! µs-scale stalls**: core under-utilization arises only from inter-request
//! idle periods, which is exactly why the paper includes it.
//!
//! Each request stems a batch of synthetic query words (built from common
//! English roots and suffixes) for an average of ~4µs of compute; the trace
//! records the word-buffer loads and the *actual* outcome of every suffix
//! rule's comparison, so branch predictors see the algorithm's real control
//! flow.

use crate::trace::TraceBuilder;
use duplexity_cpu::op::{MicroOp, RequestKernel};
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use rand::RngExt;

/// Virtual base of the word buffer.
const WORD_BASE: u64 = 0xC000_0000;

/// Stems `word` with Porter's algorithm, returning the stem.
///
/// # Examples
///
/// ```
/// use duplexity_workloads::wordstem::stem;
///
/// assert_eq!(stem("caresses"), "caress");
/// assert_eq!(stem("motoring"), "motor");
/// assert_eq!(stem("relational"), "relat");
/// ```
#[must_use]
pub fn stem(word: &str) -> String {
    let mut sink = Vec::new();
    let mut tb = TraceBuilder::new(&mut sink, WORD_BASE, 4096);
    stem_traced(&mut tb, word)
}

/// Stems `word`, emitting the algorithm's trace through `tb`.
#[must_use]
pub fn stem_traced(tb: &mut TraceBuilder<'_>, word: &str) -> String {
    let mut w: Vec<u8> = word.to_ascii_lowercase().into_bytes();
    if w.len() <= 2 {
        tb.branch(400, true); // too short to stem
        return String::from_utf8(w).expect("ascii");
    }
    tb.branch(400, false);
    // Touch the word buffer (one line per 64 bytes, i.e. one line).
    tb.load(WORD_BASE + (w.len() as u64 / 64) * 64);

    step1a(tb, &mut w);
    step1b(tb, &mut w);
    step1c(tb, &mut w);
    step2(tb, &mut w);
    step3(tb, &mut w);
    step4(tb, &mut w);
    step5a(tb, &mut w);
    step5b(tb, &mut w);
    String::from_utf8(w).expect("ascii")
}

/// Is `w[i]` a consonant under Porter's definition ('y' after a consonant is
/// a vowel)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `w[..len]`: the number of VC sequences in
/// `[C](VC)^m[V]`.
fn measure(tb: &mut TraceBuilder<'_>, w: &[u8], len: usize) -> usize {
    // Count transitions vowel->consonant; a linear scan.
    let mut m = 0;
    let mut prev_vowel = false;
    for i in 0..len {
        let v = !is_consonant(w, i);
        if !v && prev_vowel {
            m += 1;
        }
        prev_vowel = v;
    }
    let seed = tb.alu();
    tb.alu_chain(seed, len.div_ceil(2).max(1));
    m
}

/// Does `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end in a double consonant?
fn double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant-vowel-consonant, with the final consonant
/// not w, x, or y?
fn ends_cvc(w: &[u8], len: usize) -> bool {
    len >= 3
        && is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

/// Does `w` end with `suffix`? Charged as a load + compare in the trace.
fn ends_with(tb: &mut TraceBuilder<'_>, site: u32, w: &[u8], suffix: &[u8]) -> bool {
    let r = tb.load(WORD_BASE + 64);
    tb.alu_on(r);
    let matched = w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix;
    tb.branch(site, matched);
    matched
}

fn replace_suffix(w: &mut Vec<u8>, old_len: usize, new: &[u8]) {
    let keep = w.len() - old_len;
    w.truncate(keep);
    w.extend_from_slice(new);
}

fn step1a(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    if ends_with(tb, 410, w, b"sses") {
        replace_suffix(w, 4, b"ss");
    } else if ends_with(tb, 411, w, b"ies") {
        replace_suffix(w, 3, b"i");
    } else if ends_with(tb, 412, w, b"ss") {
        // keep
    } else if ends_with(tb, 413, w, b"s") {
        replace_suffix(w, 1, b"");
    }
}

fn step1b(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    if ends_with(tb, 420, w, b"eed") {
        if measure(tb, w, w.len() - 3) > 0 {
            replace_suffix(w, 3, b"ee");
        }
        return;
    }
    let stripped = if ends_with(tb, 421, w, b"ed") && has_vowel(w, w.len() - 2) {
        replace_suffix(w, 2, b"");
        true
    } else if ends_with(tb, 422, w, b"ing") && has_vowel(w, w.len().saturating_sub(3)) {
        replace_suffix(w, 3, b"");
        true
    } else {
        false
    };
    tb.branch(423, stripped);
    if stripped {
        if ends_with(tb, 424, w, b"at")
            || ends_with(tb, 425, w, b"bl")
            || ends_with(tb, 426, w, b"iz")
        {
            w.push(b'e');
        } else if double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            tb.branch(427, true);
            w.pop();
        } else if measure(tb, w, w.len()) == 1 && ends_cvc(w, w.len()) {
            tb.branch(428, true);
            w.push(b'e');
        } else {
            tb.branch(429, false);
        }
    }
}

fn step1c(tb: &mut TraceBuilder<'_>, w: &mut [u8]) {
    let n = w.len();
    if n >= 2 && w[n - 1] == b'y' && has_vowel(w, n - 1) {
        tb.branch(430, true);
        w[n - 1] = b'i';
    } else {
        tb.branch(430, false);
    }
}

/// (m > condition) suffix -> replacement rule table application.
fn apply_rules(
    tb: &mut TraceBuilder<'_>,
    w: &mut Vec<u8>,
    site_base: u32,
    min_measure: usize,
    rules: &[(&[u8], &[u8])],
) {
    for (i, (suffix, repl)) in rules.iter().enumerate() {
        if ends_with(tb, site_base + i as u32, w, suffix) {
            if measure(tb, w, w.len() - suffix.len()) >= min_measure {
                replace_suffix(w, suffix.len(), repl);
            }
            return;
        }
    }
}

fn step2(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    apply_rules(
        tb,
        w,
        440,
        1,
        &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ],
    );
}

fn step3(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    apply_rules(
        tb,
        w,
        470,
        1,
        &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ],
    );
}

fn step4(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    const SUFFIXES: [&[u8]; 18] = [
        b"ement", b"ance", b"ence", b"able", b"ible", b"ment", b"ant", b"ent", b"ism", b"ate",
        b"iti", b"ous", b"ive", b"ize", b"ion", b"al", b"er", b"ic",
    ];
    for (i, suffix) in SUFFIXES.iter().enumerate() {
        if ends_with(tb, 480 + i as u32, w, suffix) {
            let stem_len = w.len() - suffix.len();
            let ok = measure(tb, w, stem_len) > 1
                && (*suffix != b"ion" || (stem_len >= 1 && matches!(w[stem_len - 1], b's' | b't')));
            tb.branch(499, ok);
            if ok {
                replace_suffix(w, suffix.len(), b"");
            }
            return;
        }
    }
}

fn step5a(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    if ends_with(tb, 500, w, b"e") {
        let m = measure(tb, w, w.len() - 1);
        if m > 1 || (m == 1 && !ends_cvc(w, w.len() - 1)) {
            w.pop();
        }
    }
}

fn step5b(tb: &mut TraceBuilder<'_>, w: &mut Vec<u8>) {
    let n = w.len();
    let cond = n >= 2 && w[n - 1] == b'l' && double_consonant(w, n) && measure(tb, w, n) > 1;
    tb.branch(501, cond);
    if cond {
        w.pop();
    }
}

/// Generates plausible query words: common roots with inflection suffixes.
#[derive(Debug)]
pub struct WordGenerator {
    rng: SimRng,
}

const ROOTS: [&str; 24] = [
    "motor",
    "relate",
    "connect",
    "process",
    "general",
    "operate",
    "consider",
    "hope",
    "cave",
    "plaster",
    "condition",
    "rate",
    "valence",
    "trouble",
    "size",
    "fall",
    "file",
    "adjust",
    "predicate",
    "triplicate",
    "depend",
    "activate",
    "demonstrate",
    "communicate",
];
const SUFFIXES: [&str; 12] = [
    "", "s", "es", "ed", "ing", "ational", "fulness", "ization", "iveness", "ement", "ly", "al",
];

impl WordGenerator {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: rng_from_seed(derive_stream(seed, 0x57E4)),
        }
    }

    /// Produces the next word.
    pub fn next_word(&mut self) -> String {
        let root = ROOTS[self.rng.random_range(0..ROOTS.len())];
        let suffix = SUFFIXES[self.rng.random_range(0..SUFFIXES.len())];
        format!("{root}{suffix}")
    }
}

/// The WordStem microservice kernel: stems a batch of words per request.
#[derive(Debug)]
pub struct WordStemKernel {
    words: WordGenerator,
    /// Words stemmed per request (tunes the ~4µs service time).
    batch: usize,
}

impl WordStemKernel {
    /// Builds the kernel.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            words: WordGenerator::new(seed),
            batch: 144,
        }
    }
}

impl RequestKernel for WordStemKernel {
    fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
        let mut tb = TraceBuilder::new(out, 0x58_0000, 8 * 1024);
        // Parse the query.
        tb.alu_block(200);
        let mut acc = tb.alu();
        for _ in 0..self.batch {
            let word = self.words.next_word();
            let stemmed = stem_traced(&mut tb, &word);
            // Append the stem to the rewritten query.
            let r = tb.alu_on(acc);
            tb.store(WORD_BASE + 0x1000 + stemmed.len() as u64, r);
            acc = r;
        }
        tb.alu_chain(acc, 64); // serialize the rewritten query
    }

    fn nominal_service_us(&self) -> f64 {
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_cpu::op::Op;

    #[test]
    fn porter_canonical_examples() {
        // From Porter (1980).
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("adoption", "adopt"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expect) in cases {
            assert_eq!(stem(input), expect, "stem({input})");
        }
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
    }

    #[test]
    fn stemming_is_idempotent_on_many_words() {
        let mut gen = WordGenerator::new(9);
        for _ in 0..200 {
            let w = gen.next_word();
            let once = stem(&w);
            let twice = stem(&once);
            // Porter is not strictly idempotent in general, but for this
            // vocabulary double-stemming must at least not grow the word.
            assert!(twice.len() <= once.len(), "{w}: {once} -> {twice}");
        }
    }

    #[test]
    fn kernel_has_no_remote_ops() {
        // WordStem is the no-stall microservice: idleness only (§V).
        let mut k = WordStemKernel::new(1);
        let mut rng = rng_from_seed(2);
        let mut out = Vec::new();
        k.generate(&mut rng, &mut out);
        assert!(out.iter().all(|o| !matches!(o.op, Op::RemoteLoad { .. })));
        assert!(out.len() > 3000, "trace too small: {}", out.len());
    }

    #[test]
    fn kernel_traces_are_branchy() {
        let mut k = WordStemKernel::new(3);
        let mut rng = rng_from_seed(4);
        let mut out = Vec::new();
        k.generate(&mut rng, &mut out);
        let branches = out
            .iter()
            .filter(|o| matches!(o.op, Op::Branch { .. }))
            .count();
        assert!(
            branches as f64 / out.len() as f64 > 0.1,
            "branch fraction too low: {branches}/{}",
            out.len()
        );
    }

    #[test]
    fn measure_examples() {
        // m("tr") = 0, m("trouble" minus e) like "troubl" = 1, m("private")...
        let mut sink = Vec::new();
        let mut tb = TraceBuilder::new(&mut sink, 0, 1024);
        assert_eq!(measure(&mut tb, b"tr", 2), 0);
        assert_eq!(measure(&mut tb, b"ee", 2), 0);
        assert_eq!(measure(&mut tb, b"tree", 4), 0);
        assert_eq!(measure(&mut tb, b"trouble", 6), 1);
        assert_eq!(measure(&mut tb, b"oaten", 5), 2);
        assert_eq!(measure(&mut tb, b"orrery", 6), 2);
    }

    #[test]
    fn consonant_y_rules() {
        // toy: y preceded by vowel => consonant; syzygy: y after s => vowel.
        assert!(is_consonant(b"toy", 2));
        assert!(!is_consonant(b"syzygy", 1));
    }
}
