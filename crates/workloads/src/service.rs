//! Request-granularity service-time models (the BigHouse inputs).
//!
//! §V: "We measure IPC in gem5 and use it to determine the service rate of
//! an FCFS M/G/1 queuing system. We then simulate the high-level behavior of
//! the queue at request (rather than instruction) granularity." A request's
//! service time has two parts: on-core **compute** (which designs slow down
//! or speed up — captured by an IPC scaling factor) and µs-scale **stalls**
//! (whose duration is design-independent, but whose *cycles* different
//! designs waste or fill).

use duplexity_stats::dist::{Deterministic, DynDistribution, Exponential, LogNormal, Uniform};
use duplexity_stats::rng::SimRng;

/// A microservice's per-request service-time structure, in microseconds.
#[derive(Debug)]
pub struct ServiceModel {
    compute: DynDistribution,
    stall: Option<DynDistribution>,
}

impl ServiceModel {
    /// Builds a model from compute and optional stall distributions.
    #[must_use]
    pub fn new(compute: DynDistribution, stall: Option<DynDistribution>) -> Self {
        Self { compute, stall }
    }

    /// FLANN-HA: ~10µs LSH lookup + 1µs-average RDMA read (§V).
    #[must_use]
    pub fn flann_ha() -> Self {
        Self::new(
            Box::new(LogNormal::from_mean_scv(10.0, 0.1)),
            Some(Box::new(Exponential::new(1.0))),
        )
    }

    /// FLANN-LL: ~1µs lookup + 1µs-average RDMA read (§V).
    #[must_use]
    pub fn flann_ll() -> Self {
        Self::new(
            Box::new(LogNormal::from_mean_scv(1.0, 0.1)),
            Some(Box::new(Exponential::new(1.0))),
        )
    }

    /// RSC: 3µs lookup + 4µs copy of compute, 8µs-average Optane stall (§V).
    #[must_use]
    pub fn rsc() -> Self {
        Self::new(
            Box::new(LogNormal::from_mean_scv(7.0, 0.05)),
            Some(Box::new(Exponential::new(8.0))),
        )
    }

    /// McRouter: 3µs routing compute + 3–5µs synchronous leaf wait (§V).
    #[must_use]
    pub fn mcrouter() -> Self {
        Self::new(
            Box::new(Deterministic::new(3.0)),
            Some(Box::new(Uniform::new(3.0, 5.0))),
        )
    }

    /// WordStem: ~4µs pure compute, no µs-scale stalls (§V).
    #[must_use]
    pub fn wordstem() -> Self {
        Self::new(Box::new(LogNormal::from_mean_scv(4.0, 0.15)), None)
    }

    /// Samples (compute_us, stall_us) for one request.
    pub fn sample_parts(&self, rng: &mut SimRng) -> (f64, f64) {
        let c = self.compute.sample(rng);
        let s = self.stall.as_ref().map_or(0.0, |d| d.sample(rng));
        (c, s)
    }

    /// Samples only the on-core compute part, µs. Together with
    /// [`ServiceModel::sample_stall`] this consumes the same RNG draws in
    /// the same order as [`ServiceModel::sample_parts`] — callers that
    /// route the stall through a fault layer split the parts without
    /// perturbing the sample path.
    pub fn sample_compute(&self, rng: &mut SimRng) -> f64 {
        self.compute.sample(rng)
    }

    /// Samples only the µs-scale stall part, µs (0 with no draw for
    /// stall-free workloads).
    pub fn sample_stall(&self, rng: &mut SimRng) -> f64 {
        self.stall.as_ref().map_or(0.0, |d| d.sample(rng))
    }

    /// Samples the total service time for one request.
    pub fn sample_total(&self, rng: &mut SimRng) -> f64 {
        let (c, s) = self.sample_parts(rng);
        c + s
    }

    /// Mean on-core compute per request, µs.
    #[must_use]
    pub fn mean_compute_us(&self) -> f64 {
        self.compute.mean()
    }

    /// Mean µs-scale stall per request, µs.
    #[must_use]
    pub fn mean_stall_us(&self) -> f64 {
        self.stall.as_ref().map_or(0.0, |d| d.mean())
    }

    /// Mean total service time, µs.
    #[must_use]
    pub fn mean_total_us(&self) -> f64 {
        self.mean_compute_us() + self.mean_stall_us()
    }

    /// Fraction of a request's service time spent stalled — the "hole"
    /// Duplexity fills.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let t = self.mean_total_us();
        if t == 0.0 {
            0.0
        } else {
            self.mean_stall_us() / t
        }
    }

    /// Returns a copy of this model with compute scaled by `factor`
    /// (an IPC slowdown from the cycle simulator: >1 = slower).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scale_compute(&self, factor: f64) -> ScaledServiceModel<'_> {
        assert!(factor > 0.0, "scale factor must be positive");
        ScaledServiceModel {
            inner: self,
            factor,
        }
    }
}

/// A view of a [`ServiceModel`] with its compute part scaled by an IPC
/// slowdown factor.
#[derive(Debug)]
pub struct ScaledServiceModel<'a> {
    inner: &'a ServiceModel,
    factor: f64,
}

impl ScaledServiceModel<'_> {
    /// Samples (compute_us, stall_us) with the compute scaled.
    pub fn sample_parts(&self, rng: &mut SimRng) -> (f64, f64) {
        let (c, s) = self.inner.sample_parts(rng);
        (c * self.factor, s)
    }

    /// Samples only the scaled compute part, µs (see
    /// [`ServiceModel::sample_compute`] for the RNG-draw contract).
    pub fn sample_compute(&self, rng: &mut SimRng) -> f64 {
        self.inner.sample_compute(rng) * self.factor
    }

    /// Samples only the (unscaled) stall part, µs.
    pub fn sample_stall(&self, rng: &mut SimRng) -> f64 {
        self.inner.sample_stall(rng)
    }

    /// Mean total service time with scaling, µs.
    #[must_use]
    pub fn mean_total_us(&self) -> f64 {
        self.inner.mean_compute_us() * self.factor + self.inner.mean_stall_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::rng::rng_from_seed;

    #[test]
    fn paper_means() {
        assert!((ServiceModel::flann_ha().mean_total_us() - 11.0).abs() < 1e-9);
        assert!((ServiceModel::flann_ll().mean_total_us() - 2.0).abs() < 1e-9);
        assert!((ServiceModel::rsc().mean_total_us() - 15.0).abs() < 1e-9);
        assert!((ServiceModel::mcrouter().mean_total_us() - 7.0).abs() < 1e-9);
        assert!((ServiceModel::wordstem().mean_total_us() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stall_fractions() {
        assert_eq!(ServiceModel::wordstem().stall_fraction(), 0.0);
        let mc = ServiceModel::mcrouter().stall_fraction();
        assert!(
            (mc - 4.0 / 7.0).abs() < 1e-9,
            "McRouter stall fraction {mc}"
        );
        assert!(ServiceModel::rsc().stall_fraction() > 0.5);
    }

    #[test]
    fn sampling_matches_mean() {
        let m = ServiceModel::rsc();
        let mut rng = rng_from_seed(1);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| m.sample_total(&mut rng)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 15.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn scaling_affects_compute_only() {
        let m = ServiceModel::mcrouter();
        let s = m.scale_compute(2.0);
        assert!((s.mean_total_us() - 10.0).abs() < 1e-9); // 3*2 + 4
        let mut rng = rng_from_seed(2);
        let (c, st) = s.sample_parts(&mut rng);
        assert!((c - 6.0).abs() < 1e-9);
        assert!((3.0..5.0).contains(&st));
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn rejects_bad_scale() {
        let _ = ServiceModel::wordstem().scale_compute(0.0);
    }

    #[test]
    fn split_samplers_preserve_the_sample_path() {
        // sample_compute + sample_stall must consume the same draws in the
        // same order as sample_parts (load-bearing for golden stability).
        for m in [
            ServiceModel::flann_ha(),
            ServiceModel::rsc(),
            ServiceModel::mcrouter(),
            ServiceModel::wordstem(),
        ] {
            let mut a = rng_from_seed(77);
            let mut b = rng_from_seed(77);
            for _ in 0..200 {
                let (c, s) = m.sample_parts(&mut a);
                assert_eq!(c, m.sample_compute(&mut b));
                assert_eq!(s, m.sample_stall(&mut b));
            }
            assert_eq!(a, b);
            let scaled = m.scale_compute(1.5);
            let (c, s) = scaled.sample_parts(&mut a);
            assert_eq!(c, scaled.sample_compute(&mut b));
            assert_eq!(s, scaled.sample_stall(&mut b));
        }
    }
}
