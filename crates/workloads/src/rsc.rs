//! Remote Storage Caching (RSC): a flash-cache microservice (§V).
//!
//! Maps linear block addresses of a remote storage system to a local
//! low-latency SSD using **cuckoo hashing** \[111\] — implemented for real,
//! with two multiply-shift hash functions, 4-way buckets, and displacement
//! insertion. A read request:
//!
//! 1. looks the block up in the cuckoo index (~3µs of mapping + integrity
//!    work, per the paper);
//! 2. on a hit, accesses Intel Optane through user-level polling — modelled
//!    as an 8µs-average exponential µs-scale stall \[51, 52\];
//! 3. copies the 4KB block to the response buffer (~4µs; latency-bound
//!    because the source lines are uncached I/O buffer memory).

use crate::trace::TraceBuilder;
use duplexity_cpu::op::{MicroOp, RequestKernel};
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use duplexity_stats::zipf::Zipf;
use rand::RngExt;

/// 4-way cuckoo buckets, as in MemC3-style bucketized cuckoo tables.
const BUCKET_WAYS: usize = 4;
/// Maximum displacement chain length before an insert is declared failed.
const MAX_KICKS: usize = 512;

/// Virtual base of the cuckoo bucket array.
const TABLE_BASE: u64 = 0x5000_0000;
/// Virtual base of the uncached SSD DMA buffer.
const SSD_BUF_BASE: u64 = 0x8000_0000;
/// Virtual base of the response buffer.
const RESP_BASE: u64 = 0x9000_0000;
/// Virtual base of per-block metadata.
const META_BASE: u64 = 0x5800_0000;

/// A bucketized cuckoo hash table mapping block ids to SSD slots.
#[derive(Debug, Clone)]
pub struct CuckooTable {
    buckets: Vec<[Option<(u64, u32)>; BUCKET_WAYS]>,
    mask: u64,
}

impl CuckooTable {
    /// Creates a table with `buckets` buckets (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let n = buckets.next_power_of_two();
        Self {
            buckets: vec![[None; BUCKET_WAYS]; n],
            mask: n as u64 - 1,
        }
    }

    fn h1(&self, key: u64) -> u64 {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & self.mask
    }

    fn h2(&self, key: u64) -> u64 {
        (key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 23) & self.mask
    }

    /// Inserts `key -> slot`, displacing residents cuckoo-style.
    ///
    /// Returns `false` if the displacement chain exceeded the kick limit
    /// (table effectively full).
    pub fn insert(&mut self, key: u64, slot: u32) -> bool {
        let mut key = key;
        let mut slot = slot;
        let mut bucket = self.h1(key);
        for kick in 0..MAX_KICKS {
            // Try both candidate buckets before displacing.
            for b in [self.h1(key), self.h2(key)] {
                for way in &mut self.buckets[b as usize] {
                    match way {
                        Some((k, s)) if *k == key => {
                            *s = slot;
                            return true;
                        }
                        None => {
                            *way = Some((key, slot));
                            return true;
                        }
                        _ => {}
                    }
                }
            }
            // Displace a pseudo-random resident of the current bucket.
            let victim_way = kick % BUCKET_WAYS;
            let victim = self.buckets[bucket as usize][victim_way]
                .replace((key, slot))
                .expect("bucket was full");
            key = victim.0;
            slot = victim.1;
            bucket = if self.h1(key) == bucket {
                self.h2(key)
            } else {
                self.h1(key)
            };
        }
        false
    }

    /// Looks up `key`, returning the SSD slot and which bucket(s) were
    /// inspected (1 or 2) — the trace generator charges loads accordingly.
    #[must_use]
    pub fn lookup(&self, key: u64) -> (Option<u32>, usize) {
        let b1 = self.h1(key);
        for (k, s) in self.buckets[b1 as usize].iter().flatten() {
            if *k == key {
                return (Some(*s), 1);
            }
        }
        let b2 = self.h2(key);
        for (k, s) in self.buckets[b2 as usize].iter().flatten() {
            if *k == key {
                return (Some(*s), 2);
            }
        }
        (None, 2)
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .flatten()
            .filter(|w| w.is_some())
            .count()
    }

    /// True if no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_addr(&self, bucket: u64) -> u64 {
        TABLE_BASE + bucket * 64 // one bucket per cache line
    }
}

/// The RSC microservice kernel.
#[derive(Debug)]
pub struct RscKernel {
    table: CuckooTable,
    blocks: Vec<u64>,
    optane: Exponential,
    /// Iterations of the mapping/integrity-check loop (tunes the ~3µs
    /// lookup phase).
    lookup_iters: usize,
    /// Block popularity: YCSB-style Zipf over the resident blocks, so the
    /// cuckoo buckets and metadata of hot blocks stay cache-resident.
    popularity: Zipf,
    pick_rng: SimRng,
}

impl RscKernel {
    /// Builds the cache index with 32Ki blocks resident.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = rng_from_seed(derive_stream(seed, 0x05C));
        let mut table = CuckooTable::new(16 * 1024);
        let mut blocks = Vec::with_capacity(32 * 1024);
        while blocks.len() < 32 * 1024 {
            let block: u64 = rng.random::<u64>() >> 16;
            if table.insert(block, blocks.len() as u32) {
                blocks.push(block);
            }
        }
        let popularity = Zipf::new(blocks.len(), 0.99);
        Self {
            table,
            blocks,
            optane: Exponential::new(8.0),
            lookup_iters: 1600,
            popularity,
            pick_rng: rng_from_seed(derive_stream(seed, 0x05D)),
        }
    }

    /// The cuckoo index (for inspection in tests).
    #[must_use]
    pub fn table(&self) -> &CuckooTable {
        &self.table
    }
}

impl RequestKernel for RscKernel {
    fn generate(&mut self, rng: &mut SimRng, out: &mut Vec<MicroOp>) {
        let mut tb = TraceBuilder::new(out, 0x48_0000, 16 * 1024);
        // Pick a cached block (read-only transactions, §V).
        let block = self.blocks[self.popularity.sample(&mut self.pick_rng)];

        // Request parse + block-address computation.
        let mut carry = tb.alu();
        carry = tb.alu_chain(carry, 64);

        // Real cuckoo lookup: hash (multiplies), bucket loads, tag compares.
        let q = tb.alu();
        let h = tb.mul(carry, q);
        let b1 = self.table.h1(block);
        let r1 = tb.load(self.table.bucket_addr(b1));
        tb.alu_on(r1);
        let (slot, probed) = self.table.lookup(block);
        tb.branch(10, probed == 1); // found in the first bucket?
        if probed == 2 {
            let b2 = self.table.h2(block);
            let r2 = tb.load_dependent(self.table.bucket_addr(b2), h);
            tb.alu_on(r2);
        }
        let slot = slot.expect("read-only workload: all blocks resident");

        // Mapping + integrity verification over per-block metadata (the rest
        // of the ~3µs lookup phase): a latency-sensitive pointer walk.
        let meta = META_BASE + u64::from(slot) * 256;
        let mut ptr = tb.load(meta);
        for i in 0..self.lookup_iters {
            ptr = tb.load_dependent(meta + ((i as u64 * 37) % 4) * 64, ptr);
            ptr = tb.alu_on(ptr);
        }

        // Optane read through user-level polling: an 8µs-average µs-scale
        // stall [51, 52]. The CPU spins, so these cycles are the hole
        // Duplexity fills.
        let io = tb.remote_after(self.optane.sample(rng), ptr);

        // 4KB copy from the uncached DMA buffer to the response buffer:
        // latency-bound (dependent line loads), ~4µs.
        let src = SSD_BUF_BASE + u64::from(slot) * 4096;
        let dst = RESP_BASE;
        let mut c = tb.alu_on(io);
        for line in 0..64u64 {
            c = tb.load_dependent(src + line * 64, c);
            tb.store(dst + line * 64, c);
            tb.alu_on(c);
        }
        tb.alu_chain(c, 32); // checksum/ack tail
    }

    fn nominal_service_us(&self) -> f64 {
        15.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_cpu::op::Op;

    #[test]
    fn cuckoo_round_trip() {
        let mut t = CuckooTable::new(64);
        for k in 0..100u64 {
            assert!(t.insert(k * 7 + 1, k as u32), "insert {k}");
        }
        for k in 0..100u64 {
            assert_eq!(t.lookup(k * 7 + 1).0, Some(k as u32));
        }
        assert_eq!(t.lookup(999_999).0, None);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn cuckoo_update_in_place() {
        let mut t = CuckooTable::new(16);
        t.insert(42, 1);
        t.insert(42, 2);
        assert_eq!(t.lookup(42).0, Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn cuckoo_handles_high_load_factor() {
        // 4-way cuckoo sustains >90% occupancy.
        let mut t = CuckooTable::new(256); // 1024 slots
        let mut inserted = 0;
        let mut rng = rng_from_seed(1);
        for _ in 0..920 {
            if t.insert(rng.random::<u64>() >> 8, 0) {
                inserted += 1;
            }
        }
        assert!(inserted >= 900, "only {inserted} inserted");
    }

    #[test]
    fn kernel_trace_shape() {
        let mut k = RscKernel::new(3);
        let mut rng = rng_from_seed(4);
        let mut out = Vec::new();
        k.generate(&mut rng, &mut out);
        let remotes = out
            .iter()
            .filter(|o| matches!(o.op, Op::RemoteLoad { .. }))
            .count();
        assert_eq!(remotes, 1, "exactly one Optane access per read");
        let stores = out
            .iter()
            .filter(|o| matches!(o.op, Op::Store { .. }))
            .count();
        assert!(stores >= 64, "4KB copy writes 64 lines, saw {stores}");
        // The copy reads the DMA buffer.
        assert!(out.iter().any(
            |o| matches!(o.op, Op::Load { addr } if (SSD_BUF_BASE..RESP_BASE)
                .contains(&addr))
        ));
    }

    #[test]
    fn optane_latency_is_stochastic_with_8us_mean() {
        let mut k = RscKernel::new(5);
        let mut rng = rng_from_seed(6);
        let mut lats = Vec::new();
        for _ in 0..200 {
            let mut out = Vec::new();
            k.generate(&mut rng, &mut out);
            for op in &out {
                if let Op::RemoteLoad { latency_us } = op.op {
                    lats.push(latency_us);
                }
            }
        }
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        assert!((mean - 8.0).abs() < 2.0, "mean Optane latency {mean}µs");
    }

    #[test]
    fn every_request_hits() {
        // Read-only workload over resident blocks: the lookup always
        // succeeds (the expect() in generate would panic otherwise).
        let mut k = RscKernel::new(7);
        let mut rng = rng_from_seed(8);
        for _ in 0..50 {
            let mut out = Vec::new();
            k.generate(&mut rng, &mut out);
            assert!(!out.is_empty());
        }
    }
}
