//! McRouter: consistent-hash routing of key-value operations (§V).
//!
//! Re-implements the mid-tier routing microservice: a consistent-hash ring
//! \[27, 28\] with 100 leaf servers and 160 virtual nodes each. A request
//! parses the KV operation, hashes the key (FNV-1a, computed for real),
//! binary-searches the ring, and synchronously waits for the leaf — a
//! single-sided RDMA KV store that takes 3–5µs per operation \[29\].

use crate::trace::TraceBuilder;
use duplexity_cpu::op::{MicroOp, RequestKernel};
use duplexity_stats::dist::{Distribution, Uniform};
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use rand::RngExt;

/// Number of leaf KV servers (§V).
pub const LEAVES: usize = 100;
/// Virtual nodes per leaf on the ring.
pub const VNODES_PER_LEAF: usize = 160;

/// Virtual base of the ring array.
const RING_BASE: u64 = 0xA000_0000;
/// Virtual base of the request buffer.
const REQ_BASE: u64 = 0xB000_0000;
/// Virtual base of the reply buffer.
const REPLY_BASE: u64 = 0xB800_0000;

/// The kind of key-value operation being routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read: smaller leaf latency.
    Get,
    /// Write: larger leaf latency.
    Set,
}

/// A consistent-hash ring over `LEAVES` leaves.
#[derive(Debug, Clone)]
pub struct ConsistentRing {
    /// Sorted (hash, leaf) points.
    points: Vec<(u64, u16)>,
}

impl ConsistentRing {
    /// Builds the ring with `leaves * vnodes` points.
    ///
    /// # Panics
    ///
    /// Panics if `leaves == 0` or `vnodes == 0`.
    #[must_use]
    pub fn new(leaves: usize, vnodes: usize) -> Self {
        assert!(leaves > 0 && vnodes > 0, "ring needs leaves and vnodes");
        let mut points = Vec::with_capacity(leaves * vnodes);
        for leaf in 0..leaves {
            for v in 0..vnodes {
                let h = fnv1a(&[leaf as u8, (leaf >> 8) as u8, v as u8, (v >> 8) as u8, 0xAB]);
                // Finalize with an avalanche mix: FNV over short structured
                // inputs leaves the high bits poorly distributed.
                points.push((mix64(h), leaf as u16));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Self { points }
    }

    /// Routes `key_hash` to a leaf: the first ring point clockwise from the
    /// hash. Returns (leaf, binary-search steps taken).
    #[must_use]
    pub fn route(&self, key_hash: u64) -> (u16, usize) {
        let idx = self.points.partition_point(|&(h, _)| h < key_hash);
        let steps = (usize::BITS - self.points.len().leading_zeros()) as usize;
        let leaf = if idx == self.points.len() {
            self.points[0].1
        } else {
            self.points[idx].1
        };
        (leaf, steps)
    }

    /// Number of ring points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the ring has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// SplitMix64 finalizer: avalanches all input bits across the output.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// The McRouter microservice kernel.
#[derive(Debug)]
pub struct McRouterKernel {
    ring: ConsistentRing,
    leaf_latency: Uniform,
    /// Iterations of the protocol-processing loop (tunes the ~3µs routing
    /// compute).
    route_iters: usize,
    key_rng: SimRng,
}

impl McRouterKernel {
    /// Builds the router with the paper's 100-leaf ring.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            ring: ConsistentRing::new(LEAVES, VNODES_PER_LEAF),
            leaf_latency: Uniform::new(3.0, 5.0),
            route_iters: 1500,
            key_rng: rng_from_seed(derive_stream(seed, 0x3C12)),
        }
    }

    /// The ring (for tests).
    #[must_use]
    pub fn ring(&self) -> &ConsistentRing {
        &self.ring
    }
}

impl RequestKernel for McRouterKernel {
    fn generate(&mut self, rng: &mut SimRng, out: &mut Vec<MicroOp>) {
        let mut tb = TraceBuilder::new(out, 0x50_0000, 24 * 1024);

        // Random key + op mix (90% GET / 10% SET, memcached-like).
        let key_len = self.key_rng.random_range(8usize..64);
        let key: Vec<u8> = (0..key_len).map(|_| self.key_rng.random()).collect();
        let op = if self.key_rng.random::<f64>() < 0.9 {
            KvOp::Get
        } else {
            KvOp::Set
        };

        // Parse the request buffer: per-16B chunk load + checks.
        let mut carry = tb.alu();
        for chunk in 0..(key_len as u64).div_ceil(16).max(1) {
            let r = tb.load(REQ_BASE + chunk * 64);
            carry = tb.alu_on(r);
            tb.branch(20, chunk % 2 == 0); // field-delimiter checks
        }
        tb.branch(21, op == KvOp::Get);

        // Hash the key for real; trace the byte loop (unrolled x8: one
        // chained multiply per 8 bytes).
        let h = fnv1a(&key);
        for _ in 0..key_len.div_ceil(8) {
            let q = tb.alu_on(carry);
            carry = tb.mul(q, carry);
        }

        // Binary-search the ring: dependent loads, one per step, each with a
        // real comparison branch.
        let (leaf, steps) = self.ring.route(h);
        let mut probe = carry;
        let mut lo = 0u64;
        let mut hi = self.ring.len() as u64;
        for s in 0..steps {
            let mid = (lo + hi) / 2;
            probe = tb.load_dependent(RING_BASE + mid * 16, probe);
            let go_right = (h & (1 << s)) != 0; // data-dependent direction
            tb.branch(30 + (s % 8) as u32, go_right);
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }

        // Route bookkeeping + connection state (the rest of the ~3µs):
        // pointer walks over per-leaf connection structures.
        let conn = RING_BASE + 0x10_0000 + u64::from(leaf) * 512;
        let mut ptr = tb.load(conn);
        for i in 0..self.route_iters {
            ptr = tb.load_dependent(conn + ((i as u64 * 29) % 8) * 64, ptr);
            ptr = tb.alu_on(ptr);
        }

        // Synchronous leaf wait: 3–5µs single-sided RDMA KV operation [29].
        let reply = tb.remote_after(self.leaf_latency.sample(rng), ptr);

        // Relay the reply.
        let mut c = tb.alu_on(reply);
        for line in 0..8u64 {
            c = tb.load_dependent(REPLY_BASE + line * 64, c);
            tb.store(REPLY_BASE + 0x1000 + line * 64, c);
        }
        tb.alu_chain(c, 32);
    }

    fn nominal_service_us(&self) -> f64 {
        7.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_cpu::op::Op;

    #[test]
    fn ring_routes_deterministically() {
        let ring = ConsistentRing::new(100, 160);
        let (a, _) = ring.route(12345);
        let (b, _) = ring.route(12345);
        assert_eq!(a, b);
        assert!(usize::from(a) < 100);
    }

    #[test]
    fn ring_wraps_past_last_point() {
        let ring = ConsistentRing::new(4, 4);
        let (leaf, _) = ring.route(u64::MAX);
        assert!(usize::from(leaf) < 4);
    }

    #[test]
    fn ring_balances_load() {
        // With 160 vnodes per leaf, routing random keys is near-uniform.
        let ring = ConsistentRing::new(100, 160);
        let mut counts = [0u32; 100];
        let mut rng = rng_from_seed(1);
        let n = 100_000;
        for _ in 0..n {
            let (leaf, _) = ring.route(rng.random());
            counts[usize::from(leaf)] += 1;
        }
        let expect = n as f64 / 100.0;
        for (leaf, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expect).abs() / expect < 0.35,
                "leaf {leaf} got {c} of expected {expect}"
            );
        }
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(&[]), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn kernel_emits_one_leaf_wait_in_3_to_5_us() {
        let mut k = McRouterKernel::new(2);
        let mut rng = rng_from_seed(3);
        for _ in 0..20 {
            let mut out = Vec::new();
            k.generate(&mut rng, &mut out);
            let remotes: Vec<f64> = out
                .iter()
                .filter_map(|o| match o.op {
                    Op::RemoteLoad { latency_us } => Some(latency_us),
                    _ => None,
                })
                .collect();
            assert_eq!(remotes.len(), 1);
            assert!((3.0..5.0).contains(&remotes[0]), "leaf wait {}", remotes[0]);
        }
    }

    #[test]
    fn trace_includes_ring_search_loads() {
        let mut k = McRouterKernel::new(4);
        let mut rng = rng_from_seed(5);
        let mut out = Vec::new();
        k.generate(&mut rng, &mut out);
        let ring_loads = out
            .iter()
            .filter(|o| {
                matches!(o.op, Op::Load { addr } if (RING_BASE..RING_BASE + 0x10_0000)
                    .contains(&addr))
            })
            .count();
        assert!(ring_loads >= 10, "binary search loads: {ring_loads}");
    }
}
