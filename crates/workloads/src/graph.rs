//! Batch / filler-thread workloads: BSP graph analytics over a synthetic
//! power-law graph (§V).
//!
//! The paper's filler-threads "execute distributed PageRank and Single-Source
//! Shortest Path algorithms based on bulk synchronous processing \[115\] and
//! \[a\] synchronous queue pair-based disaggregated memory model \[12\] on ...
//! a subset of the Twitter graph \[116\]". Roughly half of vertex reads are
//! remote, single–cache-line RDMA reads of 1µs; the net effect is ~1µs of
//! stall per 1–2µs of compute, with 32 filler threads per dyad.
//!
//! We build a preferential-attachment (power-law, Twitter-like) graph in CSR
//! form, shard its vertices across threads, and run real PageRank /
//! Bellman-Ford-style SSSP sweeps whose traces carry the actual CSR
//! addresses. Remote reads are batched queue-pair operations: one 1µs
//! exponential stall per [`GraphConfig::ops_per_remote`] emitted ops, which
//! calibrates to the paper's stated compute-to-stall ratio. BSP superstep
//! barriers are not modelled (threads interleave in steady state), a
//! simplification that preserves per-thread compute/stall structure.

use crate::trace::TraceBuilder;
use duplexity_cpu::op::{Fetched, InstructionStream, MicroOp};
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use rand::RngExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual base of a shard's rank/distance arrays.
const RANK_BASE: u64 = 0xD000_0000;
/// Virtual base of the CSR target array.
const EDGE_BASE: u64 = 0xE000_0000;
/// Virtual base of the CSR offset array.
const OFFSET_BASE: u64 = 0xD800_0000;
/// Virtual base of per-thread ghost-vertex replica caches.
const GHOST_BASE: u64 = 0xD400_0000;
/// Virtual base of per-thread BSP receive buffers.
const MSG_BASE: u64 = 0xD600_0000;
/// Ghost replica entries per thread (1KB of 8-byte entries).
const GHOST_ENTRIES: u64 = 128;
/// Receive-buffer entries per thread (512B of 8-byte entries).
const MSG_ENTRIES: u64 = 64;

/// Tuning for graph filler threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Vertices in the shared graph.
    pub vertices: usize,
    /// Average out-degree.
    pub avg_degree: usize,
    /// Probability an edge endpoint lives on a remote node.
    pub remote_fraction: f64,
    /// Emitted micro-ops between consecutive remote reads (batched BSP
    /// messaging); ~3000 ops ≈ 1.5µs of compute per context on the in-order
    /// cores, the middle of the paper's "1µs stall per 1–2µs compute" band.
    pub ops_per_remote: usize,
    /// Mean RDMA read latency in µs.
    pub rdma_mean_us: f64,
    /// Enforce BSP superstep barriers: a thread may not start sweep `s+1`
    /// until every thread has finished sweep `s` (off by default; §V's
    /// steady-state interleave). Stragglers make the whole pool wait, a
    /// correlated-stall stress case for HSMT.
    pub bsp_barrier: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            vertices: 8 * 1024,
            avg_degree: 16,
            remote_fraction: 0.5,
            ops_per_remote: 3000,
            rdma_mean_us: 1.0,
            bsp_barrier: false,
        }
    }
}

/// Shared superstep progress for BSP barriers: one counter per thread.
#[derive(Debug)]
pub struct BarrierState {
    sweeps: Vec<AtomicU64>,
}

impl BarrierState {
    /// Creates barrier state for `threads` participants.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            sweeps: (0..threads.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records that `thread` finished another sweep.
    pub fn complete_sweep(&self, thread: usize) {
        self.sweeps[thread].fetch_add(1, Ordering::Relaxed);
    }

    /// The slowest participant's completed-sweep count.
    #[must_use]
    pub fn min_sweeps(&self) -> u64 {
        self.sweeps
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }

    /// Completed sweeps of `thread`.
    #[must_use]
    pub fn sweeps_of(&self, thread: usize) -> u64 {
        self.sweeps[thread].load(Ordering::Relaxed)
    }
}

/// A synthetic power-law directed graph in CSR form.
#[derive(Debug)]
pub struct SyntheticGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    cfg: GraphConfig,
}

impl SyntheticGraph {
    /// Generates a Twitter-like graph by preferential attachment: each new
    /// edge's target is, with probability 1/2, the target of a previously
    /// placed edge (rich get richer), otherwise uniform.
    #[must_use]
    pub fn twitter_like(cfg: GraphConfig, seed: u64) -> Self {
        let mut rng = rng_from_seed(derive_stream(seed, 0x6EA9));
        let n = cfg.vertices;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut placed: Vec<u32> = Vec::with_capacity(n * cfg.avg_degree);
        for list in adj.iter_mut() {
            // Power-law-ish out-degree: 1 + geometric burst around the mean.
            let mut degree = 1;
            while degree < cfg.avg_degree * 8
                && rng.random::<f64>() < 1.0 - 1.0 / cfg.avg_degree as f64
            {
                degree += 1;
            }
            for _ in 0..degree {
                let t = if !placed.is_empty() && rng.random::<bool>() {
                    placed[rng.random_range(0..placed.len())]
                } else {
                    rng.random_range(0..n as u32)
                };
                list.push(t);
                placed.push(t);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for list in &adj {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets,
            targets,
            cfg,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`.
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The configuration used to build the graph.
    #[must_use]
    pub fn config(&self) -> &GraphConfig {
        &self.cfg
    }
}

/// Which graph kernel a filler thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKernel {
    /// Iterative PageRank accumulation.
    PageRank,
    /// Bellman-Ford-style SSSP relaxation sweeps.
    Sssp,
}

/// An infinite filler-thread instruction stream running a graph kernel over
/// one shard of the shared graph.
pub struct GraphStream {
    graph: Arc<SyntheticGraph>,
    kernel: GraphKernel,
    shard_start: u32,
    shard_end: u32,
    cursor: u32,
    barrier: Option<(Arc<BarrierState>, usize)>,
    my_sweeps: u64,
    ranks: Vec<f32>,
    dists: Vec<u32>,
    rdma: Exponential,
    ops_since_remote: usize,
    buf: Vec<MicroOp>,
    pos: usize,
    rng: SimRng,
}

impl std::fmt::Debug for GraphStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStream")
            .field("kernel", &self.kernel)
            .field("shard", &(self.shard_start..self.shard_end))
            .finish()
    }
}

impl GraphStream {
    /// Creates the stream for thread `thread` of `total_threads`, running
    /// `kernel` over its shard.
    ///
    /// # Panics
    ///
    /// Panics if `total_threads == 0` or `thread >= total_threads`.
    #[must_use]
    pub fn new(
        graph: Arc<SyntheticGraph>,
        kernel: GraphKernel,
        thread: usize,
        total_threads: usize,
        seed: u64,
    ) -> Self {
        assert!(
            total_threads > 0 && thread < total_threads,
            "bad shard index"
        );
        let n = graph.vertex_count() as u32;
        let per = n / total_threads as u32;
        let shard_start = per * thread as u32;
        let shard_end = if thread + 1 == total_threads {
            n
        } else {
            per * (thread as u32 + 1)
        };
        let rdma_mean = graph.config().rdma_mean_us;
        let nv = graph.vertex_count();
        Self {
            graph,
            kernel,
            shard_start,
            shard_end,
            cursor: shard_start,
            barrier: None,
            my_sweeps: 0,
            ranks: vec![1.0; nv],
            dists: vec![u32::MAX / 2; nv],
            rdma: Exponential::new(rdma_mean),
            ops_since_remote: 0,
            buf: Vec::with_capacity(4096),
            pos: 0,
            rng: rng_from_seed(derive_stream(seed, 0x6EAA + thread as u64)),
        }
    }

    /// Joins a BSP barrier group as participant `thread` (builder style).
    #[must_use]
    pub fn with_barrier(mut self, barrier: Arc<BarrierState>, thread: usize) -> Self {
        self.barrier = Some((barrier, thread));
        self
    }

    /// Generates the trace of processing the next vertex into `buf`.
    fn refill(&mut self) {
        self.buf.clear();
        self.pos = 0;
        let v = self.cursor;
        self.cursor += 1;
        if self.cursor >= self.shard_end {
            self.cursor = self.shard_start; // next sweep / superstep
            self.my_sweeps += 1;
            if let Some((barrier, thread)) = &self.barrier {
                barrier.complete_sweep(*thread);
            }
        }
        let cfg = *self.graph.config();
        let graph = Arc::clone(&self.graph);
        let mut tb = TraceBuilder::new(&mut self.buf, 0x60_0000, 16 * 1024);

        // Load the CSR offsets and the vertex's own state.
        let o = tb.load(OFFSET_BASE + u64::from(v) * 4);
        tb.alu_on(o);
        let mut acc = tb.load(RANK_BASE + u64::from(v) * 8);

        let neighbors: Vec<u32> = graph.neighbors(v).to_vec();
        let lo = graph.offsets[v as usize] as u64;
        // Process edges in unrolled groups of four, as a compiled BSP inner
        // loop would: issue the four target-state loads first, then the four
        // accumulations. The separation gives the in-order lender datapath
        // memory-level parallelism across the group.
        //
        // Memory traffic is shard-confined, as in a real BSP partitioning:
        // in-shard targets read the local rank array; out-of-shard targets
        // read either a per-thread ghost replica (cached cross-shard state)
        // or the BSP receive buffer whose refills are the batched RDMA reads
        // below.
        // Per-thread bases staggered by an odd line count so threads do not
        // alias into identical L1 sets.
        let ghost_base = GHOST_BASE + u64::from(self.shard_start) * 66;
        let msg_base = MSG_BASE + u64::from(self.shard_start) * 18;
        for (g, group) in neighbors.chunks(4).enumerate() {
            let mut vals = [0u8; 4];
            for (j, &t) in group.iter().enumerate() {
                let i = (g * 4 + j) as u64;
                // Sequential CSR edge read (hits: the id array is dense).
                let e = tb.load(EDGE_BASE + (lo + i) * 4);
                tb.alu_on(e);
                // Target state read.
                let addr = if (self.shard_start..self.shard_end).contains(&t) {
                    RANK_BASE + u64::from(t) * 8
                } else if u64::from(t ^ v) % 2 == 0 {
                    ghost_base + (u64::from(t) % GHOST_ENTRIES) * 8
                } else {
                    msg_base + (i % MSG_ENTRIES) * 8
                };
                vals[j] = tb.load(addr);
            }
            for (j, &t) in group.iter().enumerate() {
                let i = g * 4 + j;
                match self.kernel {
                    GraphKernel::PageRank => {
                        // rank[v] += rank[t] / degree(t), computed for real.
                        let d = graph.neighbors(t).len().max(1) as f32;
                        self.ranks[v as usize] += self.ranks[t as usize] / d;
                        let f = tb.fp_on(vals[j]);
                        acc = tb.fp_on(f);
                    }
                    GraphKernel::Sssp => {
                        // Relax edge (v, t) with unit-ish weights.
                        let w = 1 + (u64::from(v ^ t) % 4) as u32;
                        let nd = self.dists[v as usize].saturating_add(w);
                        let improved = nd < self.dists[t as usize];
                        tb.branch(600 + (i % 8) as u32, improved);
                        if improved {
                            self.dists[t as usize] = nd;
                            tb.store(RANK_BASE + 0x100_0000 + u64::from(t) * 4, vals[j]);
                        }
                        acc = tb.alu_on(vals[j]);
                    }
                }
            }
            // Batched queue-pair remote read (§V: 1µs per 1-2µs compute).
            let remote = self.rng.random::<f64>() < cfg.remote_fraction;
            self.ops_since_remote += 6 * group.len();
            if remote && self.ops_since_remote >= cfg.ops_per_remote {
                self.ops_since_remote = 0;
                let lat = self.rdma.sample(&mut self.rng);
                let r = tb.remote_after(lat, acc);
                acc = tb.alu_on(r);
            }
        }
        // Write the vertex's updated state.
        tb.store(RANK_BASE + u64::from(v) * 8, acc);
        // Seed SSSP sources so relaxations keep happening across sweeps.
        if self.kernel == GraphKernel::Sssp && v == self.shard_start {
            self.dists[v as usize] = 0;
        }
    }
}

impl InstructionStream for GraphStream {
    fn next(&mut self, now: u64, _rng: &mut SimRng) -> Fetched {
        // BSP barrier: do not start the next superstep until the slowest
        // participant has finished the current one. Poll every ~2µs.
        if self.pos >= self.buf.len() && self.cursor == self.shard_start {
            if let Some((barrier, _)) = &self.barrier {
                if barrier.min_sweeps() < self.my_sweeps {
                    return Fetched::IdleUntil(now + 6800);
                }
            }
        }
        while self.pos >= self.buf.len() {
            self.refill();
        }
        let op = self.buf[self.pos];
        self.pos += 1;
        Fetched::Op(op)
    }
}

/// Standard filler-thread factory: even thread ids run PageRank, odd run
/// SSSP, over a shared Twitter-like graph (§V).
#[derive(Debug, Clone)]
pub struct FillerFactory {
    graph: Arc<SyntheticGraph>,
    total_threads: usize,
    seed: u64,
    barrier: Option<Arc<BarrierState>>,
}

impl FillerFactory {
    /// Builds the shared graph once; streams are created per thread id.
    #[must_use]
    pub fn new(cfg: GraphConfig, total_threads: usize, seed: u64) -> Self {
        let total_threads = total_threads.max(1);
        Self {
            graph: Arc::new(SyntheticGraph::twitter_like(cfg, seed)),
            total_threads,
            seed,
            barrier: cfg
                .bsp_barrier
                .then(|| Arc::new(BarrierState::new(total_threads))),
        }
    }

    /// The paper's configuration: 32 filler threads per dyad.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self::new(GraphConfig::default(), 32, seed)
    }

    /// Creates the stream for filler thread `id`.
    #[must_use]
    pub fn stream(&self, id: usize) -> Box<dyn InstructionStream> {
        let kernel = if id.is_multiple_of(2) {
            GraphKernel::PageRank
        } else {
            GraphKernel::Sssp
        };
        let stream = GraphStream::new(
            Arc::clone(&self.graph),
            kernel,
            id % self.total_threads,
            self.total_threads,
            derive_stream(self.seed, id as u64),
        );
        match &self.barrier {
            Some(b) => Box::new(stream.with_barrier(Arc::clone(b), id % self.total_threads)),
            None => Box::new(stream),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_cpu::op::Op;

    fn small_cfg() -> GraphConfig {
        GraphConfig {
            vertices: 2048,
            avg_degree: 8,
            ..GraphConfig::default()
        }
    }

    #[test]
    fn graph_shape() {
        let g = SyntheticGraph::twitter_like(small_cfg(), 1);
        assert_eq!(g.vertex_count(), 2048);
        let avg = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(avg > 2.0 && avg < 64.0, "avg degree {avg}");
    }

    #[test]
    fn graph_is_power_law_ish() {
        // In-degree distribution should be heavily skewed: the top 1% of
        // vertices absorb far more than 1% of edges.
        let g = SyntheticGraph::twitter_like(small_cfg(), 2);
        let mut indeg = vec![0u32; g.vertex_count()];
        for &t in &g.targets {
            indeg[t as usize] += 1;
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top: u32 = indeg[..g.vertex_count() / 100].iter().sum();
        let total: u32 = indeg.iter().sum();
        assert!(
            f64::from(top) / f64::from(total) > 0.05,
            "top-1% share {}",
            f64::from(top) / f64::from(total)
        );
    }

    #[test]
    fn shards_partition_vertices() {
        let g = Arc::new(SyntheticGraph::twitter_like(small_cfg(), 3));
        let mut covered = 0u32;
        for t in 0..8 {
            let s = GraphStream::new(Arc::clone(&g), GraphKernel::PageRank, t, 8, 0);
            covered += s.shard_end - s.shard_start;
        }
        assert_eq!(covered, g.vertex_count() as u32);
    }

    #[test]
    fn stream_emits_remote_loads_at_calibrated_rate() {
        let cfg = GraphConfig {
            ops_per_remote: 500,
            ..small_cfg()
        };
        let g = Arc::new(SyntheticGraph::twitter_like(cfg, 4));
        let mut s = GraphStream::new(g, GraphKernel::PageRank, 0, 4, 7);
        let mut rng = rng_from_seed(8);
        let mut total = 0usize;
        let mut remotes = 0usize;
        for _ in 0..60_000 {
            if let Fetched::Op(op) = s.next(0, &mut rng) {
                total += 1;
                if matches!(op.op, Op::RemoteLoad { .. }) {
                    remotes += 1;
                }
            }
        }
        assert!(remotes > 10, "remotes {remotes}");
        let ops_per_remote = total as f64 / remotes as f64;
        assert!(
            (300.0..2000.0).contains(&ops_per_remote),
            "ops per remote {ops_per_remote}"
        );
    }

    #[test]
    fn pagerank_accumulates_rank() {
        let g = Arc::new(SyntheticGraph::twitter_like(small_cfg(), 5));
        let mut s = GraphStream::new(g, GraphKernel::PageRank, 0, 1, 9);
        let before: f32 = s.ranks.iter().sum();
        let mut rng = rng_from_seed(10);
        for _ in 0..50_000 {
            let _ = s.next(0, &mut rng);
        }
        let after: f32 = s.ranks.iter().sum();
        assert!(after > before, "ranks must accumulate: {before} -> {after}");
    }

    #[test]
    fn sssp_distances_decrease() {
        let g = Arc::new(SyntheticGraph::twitter_like(small_cfg(), 6));
        let mut s = GraphStream::new(g, GraphKernel::Sssp, 0, 1, 11);
        let mut rng = rng_from_seed(12);
        for _ in 0..300_000 {
            let _ = s.next(0, &mut rng);
        }
        let settled = s.dists.iter().filter(|&&d| d < u32::MAX / 2).count();
        assert!(settled > 10, "settled vertices {settled}");
    }

    #[test]
    fn factory_alternates_kernels() {
        let f = FillerFactory::new(small_cfg(), 8, 13);
        // Streams build without panicking for all 32 paper threads.
        for id in 0..32 {
            let _ = f.stream(id);
        }
    }

    #[test]
    fn streams_are_infinite() {
        let f = FillerFactory::new(small_cfg(), 4, 14);
        let mut s = f.stream(0);
        let mut rng = rng_from_seed(15);
        for now in 0..10_000 {
            assert!(matches!(s.next(now, &mut rng), Fetched::Op(_)));
        }
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use duplexity_cpu::inorder::InoEngine;
    use duplexity_cpu::memsys::MemSys;
    use duplexity_cpu::pool::{ContextPool, VirtualContext};
    use duplexity_uarch::config::LatencyModel;

    fn run_lender(cfg: GraphConfig, horizon: u64) -> (f64, FillerFactory) {
        let factory = FillerFactory::new(cfg, 16, 7);
        let mut lender = InoEngine::lender(3400.0, 64);
        let mut pool = ContextPool::new();
        for id in 0..16 {
            pool.add(VirtualContext::new(id, factory.stream(id)));
        }
        let mut mem = MemSys::table1(LatencyModel::default());
        let mut rng = rng_from_seed(9);
        for now in 0..horizon {
            lender.step(now, &mut mem, None, Some(&mut pool), &mut rng);
        }
        (lender.stats().ipc(), factory)
    }

    #[test]
    fn barriers_keep_supersteps_in_lockstep() {
        let cfg = GraphConfig {
            vertices: 2048,
            bsp_barrier: true,
            ..GraphConfig::default()
        };
        let (_, factory) = run_lender(cfg, 2_000_000);
        let barrier = factory.barrier.as_ref().expect("barrier enabled");
        let sweeps: Vec<u64> = (0..16).map(|t| barrier.sweeps_of(t)).collect();
        let min = *sweeps.iter().min().unwrap();
        let max = *sweeps.iter().max().unwrap();
        assert!(min > 0, "no superstep completed: {sweeps:?}");
        assert!(max - min <= 1, "threads drifted: {sweeps:?}");
    }

    #[test]
    fn barriers_cost_throughput() {
        let free = run_lender(
            GraphConfig {
                vertices: 2048,
                ..GraphConfig::default()
            },
            1_000_000,
        )
        .0;
        let bsp = run_lender(
            GraphConfig {
                vertices: 2048,
                bsp_barrier: true,
                ..GraphConfig::default()
            },
            1_000_000,
        )
        .0;
        assert!(
            bsp < free,
            "correlated barrier stalls must cost something: {bsp} vs {free}"
        );
        assert!(bsp > 0.2 * free, "but not collapse: {bsp} vs {free}");
    }

    #[test]
    fn barrier_state_accounting() {
        let b = BarrierState::new(3);
        assert_eq!(b.min_sweeps(), 0);
        b.complete_sweep(0);
        b.complete_sweep(1);
        assert_eq!(b.min_sweeps(), 0);
        b.complete_sweep(2);
        assert_eq!(b.min_sweeps(), 1);
        assert_eq!(b.sweeps_of(0), 1);
    }
}
