//! Trace emission helper for instrumented workload kernels.
//!
//! Workload algorithms run for real (hashing, searching, stemming) and call
//! [`TraceBuilder`] methods at each step to emit the micro-ops a compiled
//! implementation would execute: ALU work, loads/stores at the *actual* data
//! addresses the algorithm touches, conditional branches at stable
//! per-call-site PCs (so branch predictors see real patterns), and µs-scale
//! remote operations.

use duplexity_cpu::op::{MicroOp, Op, NO_REG};

/// Harvests the µs-scale remote-operation latencies out of an emitted trace,
/// in program order — the bridge from instrumented kernels to
/// `duplexity_net`'s trace-replay latency distribution
/// (`LatencyDist::from_trace`).
///
/// # Examples
///
/// ```
/// use duplexity_workloads::trace::{remote_latencies_us, TraceBuilder};
///
/// let mut ops = Vec::new();
/// let mut tb = TraceBuilder::new(&mut ops, 0x1000, 4 * 1024);
/// tb.alu_block(4);
/// tb.remote(1.5);
/// tb.remote(0.75);
/// assert_eq!(remote_latencies_us(&ops), vec![1.5, 0.75]);
/// ```
#[must_use]
pub fn remote_latencies_us(ops: &[MicroOp]) -> Vec<f64> {
    ops.iter()
        .filter_map(|op| match op.op {
            Op::RemoteLoad { latency_us } => Some(latency_us),
            _ => None,
        })
        .collect()
}

/// PC region reserved for branch call sites (keeps branch PCs stable per
/// static site, independent of emission order).
const BRANCH_REGION: u64 = 0x00F0_0000;

/// Number of general-purpose registers the builder rotates through for
/// plain value-producing ops (leaves headroom for explicit chains).
const ROTATION_REGS: u8 = 12;

/// Emits micro-ops on behalf of an instrumented algorithm.
///
/// The builder tracks a program counter that advances sequentially through a
/// bounded code footprint (wrapping, so instruction-cache behaviour is
/// realistic for a loop-structured service) and rotates destination
/// registers to give the out-of-order engine genuine ILP while letting the
/// caller express true data dependencies explicitly.
///
/// # Examples
///
/// ```
/// use duplexity_workloads::trace::TraceBuilder;
///
/// let mut ops = Vec::new();
/// let mut tb = TraceBuilder::new(&mut ops, 0x1000, 16 * 1024);
/// let v = tb.load(0xBEEF_000);
/// let w = tb.alu_on(v);
/// tb.store(0xBEEF_040, w);
/// assert_eq!(ops.len(), 3);
/// ```
#[derive(Debug)]
pub struct TraceBuilder<'a> {
    out: &'a mut Vec<MicroOp>,
    code_base: u64,
    code_bytes: u64,
    pc_off: u64,
    next_reg: u8,
}

impl<'a> TraceBuilder<'a> {
    /// Creates a builder appending to `out`, with instructions living in a
    /// wrapping code region of `code_bytes` at `code_base`.
    ///
    /// # Panics
    ///
    /// Panics if `code_bytes` is zero or not a multiple of 4.
    #[must_use]
    pub fn new(out: &'a mut Vec<MicroOp>, code_base: u64, code_bytes: u64) -> Self {
        assert!(
            code_bytes > 0 && code_bytes.is_multiple_of(4),
            "code footprint must be 4-byte units"
        );
        Self {
            out,
            code_base,
            code_bytes,
            pc_off: 0,
            next_reg: 0,
        }
    }

    /// Ops emitted so far through this builder.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn pc(&mut self) -> u64 {
        let pc = self.code_base + self.pc_off;
        self.pc_off = (self.pc_off + 4) % self.code_bytes;
        pc
    }

    fn rot(&mut self) -> u8 {
        let r = self.next_reg;
        self.next_reg = (self.next_reg + 1) % ROTATION_REGS;
        r
    }

    /// Emits one independent integer ALU op; returns its destination
    /// register.
    pub fn alu(&mut self) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out.push(MicroOp::new(pc, Op::IntAlu).with_dst(dst));
        dst
    }

    /// Emits an integer ALU op consuming `src`; returns its destination.
    pub fn alu_on(&mut self, src: u8) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out.push(
            MicroOp::new(pc, Op::IntAlu)
                .with_srcs(src, NO_REG)
                .with_dst(dst),
        );
        dst
    }

    /// Emits `n` *serially dependent* ALU ops (a latency chain) seeded by
    /// `src`; returns the chain's final register.
    pub fn alu_chain(&mut self, src: u8, n: usize) -> u8 {
        let mut r = src;
        for _ in 0..n {
            r = self.alu_on(r);
        }
        r
    }

    /// Emits `n` independent ALU ops (pure throughput work).
    pub fn alu_block(&mut self, n: usize) {
        for _ in 0..n {
            self.alu();
        }
    }

    /// Emits an integer multiply on `a` and `b`.
    pub fn mul(&mut self, a: u8, b: u8) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out
            .push(MicroOp::new(pc, Op::IntMul).with_srcs(a, b).with_dst(dst));
        dst
    }

    /// Emits a floating-point/SIMD op consuming `src`.
    pub fn fp_on(&mut self, src: u8) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out.push(
            MicroOp::new(pc, Op::FpAlu)
                .with_srcs(src, NO_REG)
                .with_dst(dst),
        );
        dst
    }

    /// Emits `n` independent FP ops (vectorized arithmetic).
    pub fn fp_block(&mut self, n: usize) {
        for _ in 0..n {
            let pc = self.pc();
            let dst = self.rot();
            self.out.push(MicroOp::new(pc, Op::FpAlu).with_dst(dst));
        }
    }

    /// Emits a load from `addr`; returns the loaded register.
    pub fn load(&mut self, addr: u64) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out
            .push(MicroOp::new(pc, Op::Load { addr }).with_dst(dst));
        dst
    }

    /// Emits a load whose *address* depends on `src` (pointer chase).
    pub fn load_dependent(&mut self, addr: u64, src: u8) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out.push(
            MicroOp::new(pc, Op::Load { addr })
                .with_srcs(src, NO_REG)
                .with_dst(dst),
        );
        dst
    }

    /// Emits a store of `src` to `addr`.
    pub fn store(&mut self, addr: u64, src: u8) {
        let pc = self.pc();
        self.out
            .push(MicroOp::new(pc, Op::Store { addr }).with_srcs(src, NO_REG));
    }

    /// Emits a conditional branch at the stable PC of static `site`, with the
    /// algorithm's actual `taken` outcome.
    pub fn branch(&mut self, site: u32, taken: bool) {
        // Branch PCs live in their own region so each call site trains its
        // own predictor entry regardless of how many ops preceded it.
        let pc = BRANCH_REGION + u64::from(site) * 4;
        let target = pc + 64;
        self.out
            .push(MicroOp::new(pc, Op::Branch { taken, target }));
        self.pc(); // account for the slot in the code footprint
    }

    /// Emits a µs-scale remote operation (RDMA read, Optane poll, leaf
    /// wait); the result register can be used to make dependents wait.
    pub fn remote(&mut self, latency_us: f64) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out
            .push(MicroOp::new(pc, Op::RemoteLoad { latency_us }).with_dst(dst));
        dst
    }

    /// Emits a µs-scale remote operation ordered after `src` (issued only
    /// once the preceding computation completes, as a synchronous I/O is).
    pub fn remote_after(&mut self, latency_us: f64, src: u8) -> u8 {
        let pc = self.pc();
        let dst = self.rot();
        self.out.push(
            MicroOp::new(pc, Op::RemoteLoad { latency_us })
                .with_srcs(src, NO_REG)
                .with_dst(dst),
        );
        dst
    }

    /// Emits a streaming copy of `lines` cache lines from `src` to `dst`
    /// addresses, with serially dependent loads (models a userspace copy
    /// from an uncached I/O buffer, where effective bandwidth is
    /// latency-bound).
    pub fn copy_lines_dependent(&mut self, src_base: u64, dst_base: u64, lines: u64) {
        let mut carry = self.alu();
        for i in 0..lines {
            carry = self.load_dependent(src_base + i * 64, carry);
            self.store(dst_base + i * 64, carry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_cpu::op::Op;

    fn build(f: impl FnOnce(&mut TraceBuilder<'_>)) -> Vec<MicroOp> {
        let mut ops = Vec::new();
        let mut tb = TraceBuilder::new(&mut ops, 0x1000, 1024);
        f(&mut tb);
        ops
    }

    #[test]
    fn remote_latency_harvest_is_in_program_order() {
        let ops = build(|tb| {
            tb.alu_block(2);
            tb.remote(1.0);
            let x = tb.alu();
            tb.remote_after(2.5, x);
            tb.store(0x40, x);
        });
        assert_eq!(remote_latencies_us(&ops), vec![1.0, 2.5]);
        assert!(remote_latencies_us(&[]).is_empty());
    }

    #[test]
    fn pcs_advance_and_wrap() {
        let ops = build(|tb| tb.alu_block(300));
        assert_eq!(ops[0].pc, 0x1000);
        assert_eq!(ops[1].pc, 0x1004);
        // 1024-byte footprint = 256 slots; op 256 wraps to the base.
        assert_eq!(ops[256].pc, 0x1000);
    }

    #[test]
    fn chain_is_serially_dependent() {
        let ops = build(|tb| {
            let s = tb.alu();
            tb.alu_chain(s, 3);
        });
        assert_eq!(ops.len(), 4);
        for w in ops.windows(2) {
            assert_eq!(w[1].srcs[0], w[0].dst.unwrap(), "chain must link");
        }
    }

    #[test]
    fn branch_pcs_stable_per_site() {
        let ops = build(|tb| {
            tb.alu_block(10);
            tb.branch(7, true);
            tb.alu_block(20);
            tb.branch(7, false);
            tb.branch(8, true);
        });
        let branches: Vec<&MicroOp> = ops
            .iter()
            .filter(|o| matches!(o.op, Op::Branch { .. }))
            .collect();
        assert_eq!(branches.len(), 3);
        assert_eq!(branches[0].pc, branches[1].pc, "same site, same pc");
        assert_ne!(branches[0].pc, branches[2].pc, "different sites differ");
    }

    #[test]
    fn rotation_avoids_false_dependencies() {
        let ops = build(|tb| tb.alu_block(8));
        let dsts: Vec<u8> = ops.iter().map(|o| o.dst.unwrap()).collect();
        let unique: std::collections::HashSet<u8> = dsts.iter().copied().collect();
        assert_eq!(unique.len(), 8, "8 consecutive ops must use 8 registers");
    }

    #[test]
    fn copy_emits_load_store_pairs() {
        let ops = build(|tb| tb.copy_lines_dependent(0x10_000, 0x20_000, 4));
        let loads = ops
            .iter()
            .filter(|o| matches!(o.op, Op::Load { .. }))
            .count();
        let stores = ops
            .iter()
            .filter(|o| matches!(o.op, Op::Store { .. }))
            .count();
        assert_eq!(loads, 4);
        assert_eq!(stores, 4);
        // Each load depends on the previous one (latency-bound copy).
        let load_ops: Vec<&MicroOp> = ops
            .iter()
            .filter(|o| matches!(o.op, Op::Load { .. }))
            .collect();
        for w in load_ops.windows(2) {
            assert_ne!(w[1].srcs[0], NO_REG);
        }
    }

    #[test]
    fn remote_after_is_ordered() {
        let ops = build(|tb| {
            let x = tb.alu();
            tb.remote_after(1.0, x);
        });
        assert_eq!(ops[1].srcs[0], ops[0].dst.unwrap());
        assert!(matches!(ops[1].op, Op::RemoteLoad { latency_us } if latency_us == 1.0));
    }
}
