//! Tables I and II.

pub use duplexity_power::table2::{table2_rows, Table2Row};
pub use duplexity_uarch::config::Table1;

/// Renders Table I as printable lines.
#[must_use]
pub fn table1_lines() -> Vec<String> {
    Table1::rows()
        .into_iter()
        .map(|(k, v)| format!("{k:<14} | {v}"))
        .collect()
}

/// Renders Table II as printable lines (model vs paper).
#[must_use]
pub fn table2_lines() -> Vec<String> {
    table2_rows()
        .into_iter()
        .map(|r| {
            let freq = r
                .frequency_ghz
                .map_or_else(|| "N/A".to_string(), |f| format!("{f:.2} GHz"));
            format!(
                "{:<26} | {:>6.2} mm^2 (paper {:>5.1}) | {}",
                r.component, r.area_mm2, r.paper_area_mm2, freq
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_rows() {
        let lines = table1_lines();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().any(|l| l.contains("Lender-core")));
        assert!(lines.iter().any(|l| l.contains("Infiniband")));
    }

    #[test]
    fn table2_renders_with_frequencies() {
        let lines = table2_lines();
        assert_eq!(lines.len(), 7);
        assert!(lines.iter().any(|l| l.contains("3.25 GHz")));
        assert!(lines.last().unwrap().contains("N/A"));
    }
}
