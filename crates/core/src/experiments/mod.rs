//! One driver per table and figure of the paper's evaluation.

pub mod cluster_sweep;
pub mod fault_sweep;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod hedge_sweep;
pub mod rack_sweep;
pub mod sweep;
pub mod tables;
pub mod timeline;
