//! Latency–load sweeps and SLO capacity (an operator-facing extension).
//!
//! The paper reports tails at three fixed loads; operators usually ask the
//! inverse question: *how much load can a design carry inside a tail-latency
//! budget?* This driver sweeps offered load, runs the same
//! IPC-scaled BigHouse machinery as Figure 5(d) at each point, and derives
//! each design's **SLO capacity** — the highest load whose p99 stays within
//! budget.

use crate::cellcache::{
    assemble, miss_indices, CellCache, CellKey, Digest, PayloadReader, PayloadWriter,
};
use crate::exec::ExecPool;
use crate::server::ServerSim;
use duplexity_cpu::designs::Design;
use duplexity_net::{EventKind, FaultPlan};
use duplexity_obs::{log_enabled, log_line};
use duplexity_queueing::des::{try_simulate_mg1, Mg1Options};
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Microservice under test.
    pub workload: Workload,
    /// Designs to sweep.
    pub designs: Vec<Design>,
    /// Offered loads to evaluate (fractions of nominal capacity).
    pub loads: Vec<f64>,
    /// Cycle horizon for the per-design service calibration.
    pub calibration_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Queueing controls.
    pub queue: Mg1Options,
    /// Fault plan applied to each request's µs-scale stall leg
    /// ([`FaultPlan::none`] reproduces the fault-free sample path
    /// byte-for-byte).
    pub fault: FaultPlan,
    /// Worker threads for calibrations and sweep points; `0` resolves
    /// `DUPLEXITY_THREADS` / available parallelism (see [`crate::exec`]).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Content-addressed cell cache (default off). Cached cells skip the
    /// work list — and designs whose cells all hit skip calibration —
    /// with results byte-identical to a cold run.
    pub cache: Option<CellCache>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            workload: Workload::McRouter,
            designs: vec![Design::Baseline, Design::Smt, Design::Duplexity],
            loads: (1..=17).map(|i| 0.05 * f64::from(i)).collect(),
            calibration_cycles: 2_000_000,
            seed: 42,
            queue: Mg1Options {
                max_samples: 300_000,
                ..Mg1Options::default()
            },
            fault: FaultPlan::none(),
            threads: 0,
            cache: None,
        }
    }
}

/// One sweep measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Design.
    pub design: Design,
    /// Offered load fraction.
    pub load: f64,
    /// 99th-percentile latency, µs (`inf` once the scaled queue saturates).
    pub p99_us: f64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Whether this point saturated.
    pub saturated: bool,
}

/// Content-addressed cache keys for every (design, load) cell of the
/// sweep grid, in the driver's design-major evaluation order. A cell's
/// key digests everything its value depends on — workload, design, load,
/// calibration horizon, seed, queueing controls, fault plan — and
/// nothing else, so adding loads or designs to the grid reuses the
/// overlapping cells.
#[must_use]
pub fn cell_keys(opts: &SweepOptions) -> Vec<CellKey> {
    opts.designs
        .iter()
        .flat_map(|&design| {
            opts.loads.iter().map(move |&load| {
                CellKey::build("sweep", |w| {
                    opts.workload.digest(w);
                    design.digest(w);
                    w.field_f64("load", load);
                    w.field_u64("calibration_cycles", opts.calibration_cycles);
                    w.field_u64("seed", opts.seed);
                    w.field("queue", &opts.queue);
                    w.field("fault", &opts.fault);
                })
            })
        })
        .collect()
}

fn encode_point(p: &SweepPoint) -> String {
    let mut w = PayloadWriter::new();
    w.f64("p99_us", p.p99_us);
    w.f64("mean_us", p.mean_us);
    w.bool("saturated", p.saturated);
    w.finish()
}

// Measured outputs only: the (design, load) coordinates are rebuilt from
// the grid at assembly time.
fn decode_point(payload: &str) -> Option<(f64, f64, bool)> {
    let mut r = PayloadReader::new(payload);
    let p99_us = r.f64("p99_us")?;
    let mean_us = r.f64("mean_us")?;
    let saturated = r.bool("saturated")?;
    r.done().then_some((p99_us, mean_us, saturated))
}

/// Runs the sweep: one saturated calibration per design, then a queueing
/// simulation per (design, load), with common random numbers across designs.
///
/// # Panics
///
/// Panics if the options contain no loads, no designs, or omit
/// [`Design::Baseline`] (the slowdown reference).
#[must_use]
pub fn latency_load_sweep(opts: &SweepOptions) -> Vec<SweepPoint> {
    assert!(
        !opts.loads.is_empty() && !opts.designs.is_empty(),
        "empty sweep"
    );
    assert!(
        opts.designs.contains(&Design::Baseline),
        "baseline required as the slowdown reference"
    );
    let model = opts.workload.service_model();
    let nominal = opts.workload.nominal_service_us();
    let stall = model.mean_stall_us();

    let pool = ExecPool::new(opts.threads);

    // Every (design, load) point builds its queueing RNG from
    // (seed, load) — common random numbers across designs — so the grid
    // parallelizes with bit-identical results in design-major order.
    let grid: Vec<(usize, f64)> = (0..opts.designs.len())
        .flat_map(|di| opts.loads.iter().map(move |&l| (di, l)))
        .collect();
    let keys = cell_keys(opts);
    let hits = match &opts.cache {
        Some(cache) => cache.probe(&keys, decode_point),
        None => grid.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);

    let saturated_service = |design: Design| -> Option<f64> {
        let m = ServerSim::new(design, opts.workload)
            .saturated()
            .horizon_cycles(opts.calibration_cycles)
            .seed(derive_stream(opts.seed, 0x53E9))
            .run();
        if m.request_latencies_us.len() < 10 {
            return None;
        }
        Some(m.request_latencies_us.iter().sum::<f64>() / m.request_latencies_us.len() as f64)
    };

    // Calibrations are independent cycle simulations — one per design — so
    // they run on the pool; the baseline's slot is the slowdown reference.
    // Only designs with a missed cell calibrate (plus the baseline, which
    // anchors every slowdown): each calibration is a pure function of
    // (design, workload, horizon, seed), so a subset run is bit-identical.
    let mut needed = vec![false; opts.designs.len()];
    for &i in &misses {
        needed[grid[i].0] = true;
    }
    let base_idx = opts
        .designs
        .iter()
        .position(|&d| d == Design::Baseline)
        .expect("asserted above");
    if !misses.is_empty() {
        needed[base_idx] = true;
    }
    let needed_idx: Vec<usize> = (0..opts.designs.len()).filter(|&i| needed[i]).collect();
    let calibrated = pool.run("sweep/calibrate", needed_idx.len(), |j| {
        saturated_service(opts.designs[needed_idx[j]])
    });
    let mut services: Vec<Option<f64>> = vec![None; opts.designs.len()];
    for (j, &di) in needed_idx.iter().enumerate() {
        services[di] = calibrated[j];
    }
    let base_service = services[base_idx];
    let slowdowns: Vec<f64> = services
        .iter()
        .map(|mine| match (base_service, *mine) {
            (Some(b), Some(m)) => {
                let (bc, mc) = ((b - stall).max(0.05), (m - stall).max(0.05));
                (mc / bc).clamp(1.0, 6.0)
            }
            _ => 1.0,
        })
        .collect();

    let fresh = pool.run("sweep/points", misses.len(), |j| {
        let (di, load) = grid[misses[j]];
        let design = opts.designs[di];
        let slowdown = slowdowns[di];
        let lambda = load / nominal;
        let scaled_mean =
            model.mean_compute_us() * slowdown + opts.fault.effective_mean_bound_us(stall);
        if lambda * scaled_mean >= 0.95 {
            return SweepPoint {
                design,
                load,
                p99_us: f64::INFINITY,
                mean_us: f64::INFINITY,
                saturated: true,
            };
        }
        let scaled = model.scale_compute(slowdown);
        let fault = opts.fault;
        let mut service = |rng: &mut SimRng| {
            let c = scaled.sample_compute(rng);
            if fault.is_none() {
                c + scaled.sample_stall(rng)
            } else {
                c + fault
                    .sample_event(EventKind::RemoteMemory, rng, |r| scaled.sample_stall(r))
                    .latency_us
            }
        };
        let mut qopts = opts.queue;
        qopts.seed = derive_stream(opts.seed, 0x53EA ^ (load * 1000.0) as u64);
        // The pre-guard above is a cheap bound; the DES pilot is the
        // authoritative stability check, and its typed Unstable verdict
        // marks the point saturated instead of killing the sweep.
        match try_simulate_mg1(lambda, &mut service, &qopts) {
            Ok(r) => SweepPoint {
                design,
                load,
                p99_us: r.tail_us,
                mean_us: r.mean_sojourn_us,
                saturated: false,
            },
            Err(_) => SweepPoint {
                design,
                load,
                p99_us: f64::INFINITY,
                mean_us: f64::INFINITY,
                saturated: true,
            },
        }
    });
    if let Some(cache) = &opts.cache {
        for (j, &i) in misses.iter().enumerate() {
            cache.store(&keys[i], &encode_point(&fresh[j]));
        }
    }
    let hit_points = hits
        .into_iter()
        .zip(&grid)
        .map(|(hit, &(di, load))| {
            hit.map(|(p99_us, mean_us, saturated)| SweepPoint {
                design: opts.designs[di],
                load,
                p99_us,
                mean_us,
                saturated,
            })
        })
        .collect();
    let points = assemble(hit_points, fresh);
    if log_enabled() {
        let saturated = points.iter().filter(|p| p.saturated).count();
        log_line(&format!(
            "sweep: {} points ({} designs × {} loads) on {}, {} saturated",
            points.len(),
            opts.designs.len(),
            opts.loads.len(),
            opts.workload,
            saturated,
        ));
    }
    points
}

/// The highest swept load whose p99 stays within `budget_us` for `design`
/// (its SLO capacity), or `None` if no point qualifies.
#[must_use]
pub fn slo_capacity(points: &[SweepPoint], design: Design, budget_us: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.design == design && !p.saturated && p.p99_us <= budget_us)
        .map(|p| p.load)
        .fold(None, |best, l| Some(best.map_or(l, |b: f64| b.max(l))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> SweepOptions {
        SweepOptions {
            loads: vec![0.2, 0.4, 0.6, 0.8],
            calibration_cycles: 800_000,
            queue: Mg1Options {
                max_samples: 80_000,
                warmup: 1_000,
                ..Mg1Options::default()
            },
            ..SweepOptions::default()
        }
    }

    #[test]
    fn p99_rises_monotonically_with_load() {
        let points = latency_load_sweep(&quick_opts());
        for design in [Design::Baseline, Design::Duplexity] {
            let series: Vec<&SweepPoint> = points
                .iter()
                .filter(|p| p.design == design && !p.saturated)
                .collect();
            assert!(series.len() >= 3, "{design}: too few stable points");
            for w in series.windows(2) {
                assert!(
                    w[1].p99_us >= w[0].p99_us * 0.95,
                    "{design}: p99 fell from {} to {} as load rose",
                    w[0].p99_us,
                    w[1].p99_us
                );
            }
        }
    }

    #[test]
    fn slo_capacity_orders_designs_sensibly() {
        let points = latency_load_sweep(&quick_opts());
        // Pick a budget that the baseline meets at low load.
        let base_low = points
            .iter()
            .find(|p| p.design == Design::Baseline && p.load == 0.2)
            .unwrap()
            .p99_us;
        let budget = base_low * 3.0;
        let base_cap = slo_capacity(&points, Design::Baseline, budget);
        let dup_cap = slo_capacity(&points, Design::Duplexity, budget);
        assert!(base_cap.is_some());
        // Duplexity's modest service inflation cannot beat baseline at
        // iso-load, but it must stay within one sweep step of it.
        let (b, d) = (base_cap.unwrap(), dup_cap.unwrap_or(0.0));
        assert!(d >= b - 0.21, "Duplexity SLO capacity {d} vs baseline {b}");
    }

    #[test]
    fn fault_axis_shrinks_slo_capacity() {
        use duplexity_net::RetryPolicy;
        let mut opts = quick_opts();
        opts.designs = vec![Design::Baseline];
        let clean = latency_load_sweep(&opts);
        opts.fault = FaultPlan::none()
            .with_drop(0.05)
            .with_retry(RetryPolicy::new(4, 10.0, 2.0, 16.0));
        let faulted = latency_load_sweep(&opts);
        for (a, b) in clean.iter().zip(&faulted) {
            assert_eq!(a.load, b.load);
            assert!(
                b.saturated || b.p99_us > a.p99_us,
                "load {}: faulted p99 {} vs clean {}",
                a.load,
                b.p99_us,
                a.p99_us
            );
        }
        let budget = clean[0].p99_us * 3.0;
        let clean_cap = slo_capacity(&clean, Design::Baseline, budget).unwrap();
        let faulted_cap = slo_capacity(&faulted, Design::Baseline, budget).unwrap_or(0.0);
        assert!(
            faulted_cap <= clean_cap,
            "faulted capacity {faulted_cap} vs clean {clean_cap}"
        );
    }

    #[test]
    fn slo_capacity_none_for_impossible_budget() {
        let points = latency_load_sweep(&quick_opts());
        assert_eq!(slo_capacity(&points, Design::Baseline, 0.0001), None);
    }
}
