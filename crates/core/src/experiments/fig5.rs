//! Figure 5: the main efficiency and QoS comparison.
//!
//! For every (design × microservice × load) cell this driver produces the
//! paper's six metrics:
//!
//! * **(a)** master-core utilization from the cycle simulator;
//! * **(b)** performance density — retired ops per second per mm² of a
//!   dyad-equivalent chip unit (main core + paired HSMT throughput core +
//!   2MB LLC, §VI-B), normalized to the baseline;
//! * **(c)** energy per instruction from the power model, normalized;
//! * **(d)** 99th-percentile latency from the BigHouse-style M/G/1
//!   simulation, with each design's service time scaled by the IPC slowdown
//!   the cycle simulator measured (§V methodology), normalized;
//! * **(e)** iso-throughput p99: the same queueing simulation with the
//!   arrival rate rescaled by performance density, so designs are compared
//!   at equal cost (§VII);
//! * **(f)** batch-thread system throughput STP = Σᵢ IPCᵢ(shared) /
//!   IPCᵢ(alone) \[123\], normalized.

use crate::cellcache::{miss_indices, CellCache, CellKey, Digest, PayloadReader, PayloadWriter};
use crate::exec::ExecPool;
use crate::server::ServerSim;
use duplexity_cpu::designs::{Design, DesignMetrics, Stepping};
use duplexity_cpu::inorder::InoEngine;
use duplexity_cpu::memsys::MemSys;
use duplexity_cpu::pool::{ContextPool, VirtualContext};
use duplexity_net::{EventKind, FaultPlan};
use duplexity_obs::{log_enabled, log_line, Registry, TraceLog, Tracer};
use duplexity_power::{chip_area_mm2, core_kind_for, power_w, CoreKind, LLC_MM2_PER_MB};
use duplexity_queueing::des::{try_simulate_mg1_traced, Mg1Options};
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};
use duplexity_uarch::config::LatencyModel;
use duplexity_workloads::graph::FillerFactory;
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Grid and fidelity parameters for the Figure 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Options {
    /// Offered loads (the paper uses 30%, 50%, 70%).
    pub loads: Vec<f64>,
    /// Microservices to evaluate.
    pub workloads: Vec<Workload>,
    /// Designs to evaluate.
    pub designs: Vec<Design>,
    /// Cycle-simulation horizon per cell.
    pub horizon_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Queueing-simulation controls.
    pub queue: Mg1Options,
    /// Fault plan applied to each request's µs-scale stall in the tail
    /// simulations (a new grid axis; [`FaultPlan::none`] reproduces the
    /// fault-free sample path byte-for-byte).
    pub fault: FaultPlan,
    /// Worker threads for the cell grid; `0` resolves `DUPLEXITY_THREADS` /
    /// available parallelism (see [`crate::exec`]). Results are bit-identical
    /// for every value.
    pub threads: usize,
    /// Cycle-loop stepping strategy for every cycle simulation in the grid.
    /// [`Stepping::FastForward`] (the default) is bit-identical to
    /// [`Stepping::Naive`]; `Naive` exists for differential testing and
    /// benchmarking.
    pub stepping: Stepping,
    /// Content-addressed cell cache (default off). Cached cells skip the
    /// calibration, cycle-simulation, and tail passes — a fully warm grid
    /// also skips the lender reference — with results byte-identical to a
    /// cold run. Ignored when tracing is requested (trace logs are not
    /// cached).
    pub cache: Option<CellCache>,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Self {
            loads: vec![0.3, 0.5, 0.7],
            workloads: Workload::ALL.to_vec(),
            designs: Design::ALL.to_vec(),
            horizon_cycles: 6_000_000,
            seed: 42,
            queue: Mg1Options::default(),
            fault: FaultPlan::none(),
            threads: 0,
            stepping: Stepping::FastForward,
            cache: None,
        }
    }
}

/// One (design, workload, load) cell of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Design under evaluation.
    pub design: Design,
    /// Microservice.
    pub workload: Workload,
    /// Offered load fraction.
    pub load: f64,
    /// Fig. 5(a): master-core utilization.
    pub utilization: f64,
    /// Fig. 5(b): performance density normalized to baseline.
    pub perf_density_norm: f64,
    /// Fig. 5(c): energy per instruction normalized to baseline.
    pub energy_norm: f64,
    /// Fig. 5(d): absolute p99, µs (`inf` when the scaled queue saturates).
    pub p99_us: f64,
    /// Fig. 5(d): p99 normalized to baseline.
    pub p99_norm: f64,
    /// Fig. 5(e): iso-throughput p99, µs.
    pub iso_p99_us: f64,
    /// Fig. 5(e): iso-throughput p99 normalized to baseline.
    pub iso_p99_norm: f64,
    /// Fig. 5(f): batch STP normalized to baseline.
    pub stp_norm: f64,
    /// Whether the IPC-scaled queue was unstable at this load.
    pub saturated: bool,
    /// Master-thread service slowdown vs baseline measured by the cycle sim.
    pub service_slowdown: f64,
    /// Remote µs-scale operations per wall µs (drives Figure 6).
    pub remote_ops_per_us: f64,
}

/// Reference throughput of a standalone lender-core and of one batch thread
/// running alone (STP denominators and the §VI-B pairing for designs without
/// an in-dyad lender).
#[derive(Debug, Clone)]
struct LenderReference {
    ops_per_cycle: f64,
    remote_ops_per_cycle: f64,
    retired_per_ctx_per_cycle: Vec<f64>,
    alone_ops_per_cycle: f64,
}

fn lender_reference(horizon: u64, seed: u64) -> LenderReference {
    let fillers = FillerFactory::paper(seed);
    let cycles_per_us = 3400.0;
    let mut lender = InoEngine::lender(cycles_per_us, 64);
    let mut pool = ContextPool::new();
    for id in 0..32 {
        pool.add(VirtualContext::new(id, fillers.stream(id)));
    }
    let mut mem = MemSys::table1(LatencyModel::default());
    let mut rng = rng_from_seed(derive_stream(seed, 0x1E0D));
    for now in 0..horizon {
        lender.step(now, &mut mem, None, Some(&mut pool), &mut rng);
    }
    let wall = horizon.max(1) as f64;
    let retired_per_ctx_per_cycle = lender
        .retired_by_ctx()
        .iter()
        .map(|&r| r as f64 / wall)
        .collect();

    // One batch thread alone on an in-order core (the STP "alone" IPC).
    let mut alone = InoEngine::new(1, 4, false, cycles_per_us, 64);
    alone.add_fixed_context(0, fillers.stream(0));
    let mut mem2 = MemSys::table1(LatencyModel::default());
    let mut rng2 = rng_from_seed(derive_stream(seed, 0x1E0E));
    let alone_horizon = horizon / 2;
    for now in 0..alone_horizon {
        alone.step(now, &mut mem2, None, None, &mut rng2);
    }

    LenderReference {
        ops_per_cycle: lender.stats().ipc(),
        remote_ops_per_cycle: lender.stats().remote_ops as f64 / wall,
        retired_per_ctx_per_cycle,
        alone_ops_per_cycle: alone.stats().ipc(),
    }
}

/// Raw per-cell measurements before normalization.
#[derive(Debug)]
struct RawCell {
    design: Design,
    workload: Workload,
    load: f64,
    utilization: f64,
    density: f64,
    energy_nj: f64,
    stp: f64,
    slowdown: f64,
    remote_ops_per_us: f64,
}

/// Content-addressed cache keys for every (workload, load, design) cell
/// of the Figure 5 grid, in the driver's workload-major evaluation order.
/// A cell's payload covers its cycle-level measurements *and* its tail
/// tuple; the deterministic normalization post-pass is recomputed on
/// every run, so the key digests everything upstream of it — grid
/// coordinates, horizons, seed, queueing controls, fault plan, stepping.
#[must_use]
pub fn cell_keys(opts: &Fig5Options) -> Vec<CellKey> {
    let mut keys = Vec::new();
    for &workload in &opts.workloads {
        for &load in &opts.loads {
            for &design in &opts.designs {
                keys.push(CellKey::build("fig5", |w| {
                    workload.digest(w);
                    design.digest(w);
                    w.field_f64("load", load);
                    w.field_u64("horizon_cycles", opts.horizon_cycles);
                    w.field_u64("seed", opts.seed);
                    w.field("queue", &opts.queue);
                    w.field("fault", &opts.fault);
                    opts.stepping.digest(w);
                }));
            }
        }
    }
    keys
}

// One cached cell: the RawCell measurements plus the tail tuple, i.e.
// everything the (simulation-free) normalization post-pass consumes.
// Coordinates are rebuilt from the grid at assembly time.
struct CachedCell {
    utilization: f64,
    density: f64,
    energy_nj: f64,
    stp: f64,
    slowdown: f64,
    remote_ops_per_us: f64,
    density_norm: f64,
    p99: f64,
    saturated: bool,
    iso_p99: f64,
    iso_sat: bool,
}

fn encode_cell(raw: &RawCell, tail: &(f64, f64, bool, f64, bool)) -> String {
    let &(density_norm, p99, saturated, iso_p99, iso_sat) = tail;
    let mut w = PayloadWriter::new();
    w.f64("utilization", raw.utilization);
    w.f64("density", raw.density);
    w.f64("energy_nj", raw.energy_nj);
    w.f64("stp", raw.stp);
    w.f64("slowdown", raw.slowdown);
    w.f64("remote_ops_per_us", raw.remote_ops_per_us);
    w.f64("density_norm", density_norm);
    w.f64("p99", p99);
    w.bool("saturated", saturated);
    w.f64("iso_p99", iso_p99);
    w.bool("iso_sat", iso_sat);
    w.finish()
}

fn decode_cell(payload: &str) -> Option<CachedCell> {
    let mut r = PayloadReader::new(payload);
    let c = CachedCell {
        utilization: r.f64("utilization")?,
        density: r.f64("density")?,
        energy_nj: r.f64("energy_nj")?,
        stp: r.f64("stp")?,
        slowdown: r.f64("slowdown")?,
        remote_ops_per_us: r.f64("remote_ops_per_us")?,
        density_norm: r.f64("density_norm")?,
        p99: r.f64("p99")?,
        saturated: r.bool("saturated")?,
        iso_p99: r.f64("iso_p99")?,
        iso_sat: r.bool("iso_sat")?,
    };
    r.done().then_some(c)
}

/// Tracing controls for [`run_fig5_traced`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Ring-buffer capacity per traced cell, in events. When a cell emits
    /// more, the oldest events are dropped (and counted in
    /// [`TraceLog::dropped`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 1 << 16 }
    }
}

/// Result of [`run_fig5_traced`]: the Figure 5 cells plus, when tracing was
/// requested, one [`TraceLog`] per cycle-simulation and tail-simulation
/// cell and a merged metrics [`Registry`].
#[derive(Debug)]
pub struct Fig5Run {
    /// The Figure 5 grid, identical to [`run_fig5`]'s output.
    pub cells: Vec<Fig5Cell>,
    /// Per-cell trace logs, labeled `cells/<design>/<workload>@<load>` for
    /// cycle simulations and `tails/...` for queueing simulations, in
    /// deterministic grid order. Empty when tracing was not requested.
    pub traces: Vec<(String, TraceLog)>,
    /// Every cell's counters/observations merged under its trace label.
    pub registry: Registry,
}

/// Runs the full Figure 5 grid.
///
/// # Panics
///
/// Panics if the options omit [`Design::Baseline`] (the normalization
/// reference) or contain no loads/workloads.
#[must_use]
pub fn run_fig5(opts: &Fig5Options) -> Vec<Fig5Cell> {
    run_fig5_traced(opts, None).cells
}

/// [`run_fig5`] with optional cycle-domain tracing.
///
/// Each grid cell gets its own tracer, created inside the cell closure and
/// harvested through the pool's index-ordered result slots, so the combined
/// trace output is **bit-identical for every worker count** — and because
/// tracing consumes no RNG draws, `cells` is bit-identical to [`run_fig5`]
/// whether tracing is on or off.
///
/// # Panics
///
/// Panics under the same conditions as [`run_fig5`].
#[must_use]
pub fn run_fig5_traced(opts: &Fig5Options, trace: Option<&TraceConfig>) -> Fig5Run {
    assert!(
        opts.designs.contains(&Design::Baseline),
        "baseline required for normalization"
    );
    assert!(
        !opts.loads.is_empty() && !opts.workloads.is_empty(),
        "empty grid"
    );

    let pool = ExecPool::new(opts.threads);

    // Grid in (workload, load, design) lexicographic order; probed against
    // the cell cache up front so every later pass touches misses only.
    // Tracing bypasses the cache entirely: trace logs are not cached, and
    // a partially traced grid would not be worth having.
    let grid: Vec<(Workload, f64, Design)> = opts
        .workloads
        .iter()
        .flat_map(|&w| {
            opts.loads
                .iter()
                .flat_map(move |&l| opts.designs.iter().map(move |&d| (w, l, d)))
        })
        .collect();
    let cache = if trace.is_some() {
        None
    } else {
        opts.cache.as_ref()
    };
    let keys = cell_keys(opts);
    let hits = match cache {
        Some(c) => c.probe(&keys, decode_cell),
        None => grid.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);

    // The lender reference feeds only fresh cycle cells; a fully warm grid
    // skips it (it is the one serial stretch of a cold run).
    let lender_ref =
        (!misses.is_empty()).then(|| lender_reference(opts.horizon_cycles / 2, opts.seed));

    // Pass 1: per-(workload, design) service-time slowdowns from dedicated
    // saturated runs — the analogue of the paper's "measure IPC in gem5 and
    // use it to determine the service rate" (§V). Saturated runs yield many
    // requests with no queueing-delay contamination. Each calibration cell
    // seeds itself from the experiment seed alone, so the grid parallelizes
    // with bit-identical results; the baseline ratio is taken in a
    // deterministic combine step below. Only pairs reachable from a missed
    // cell calibrate (each missed (w, d) plus its (w, baseline) anchor):
    // calibrations are pair-independent pure functions, so a subset run is
    // bit-identical.
    let all_pairs: Vec<(Workload, Design)> = opts
        .workloads
        .iter()
        .flat_map(|&w| opts.designs.iter().map(move |&d| (w, d)))
        .collect();
    let pairs: Vec<(Workload, Design)> = all_pairs
        .into_iter()
        .filter(|&(w, d)| {
            misses.iter().any(|&i| {
                let (mw, _, md) = grid[i];
                mw == w && (md == d || d == Design::Baseline)
            })
        })
        .collect();
    let services = pool.run("fig5/calibrate", pairs.len(), |i| {
        let (workload, design) = pairs[i];
        saturated_service_us(design, workload, opts)
    });
    let service_of = |workload: Workload, design: Design| -> Option<f64> {
        pairs
            .iter()
            .position(|&(w, d)| w == workload && d == design)
            .and_then(|i| services[i])
    };
    let mut slowdowns: Vec<(Workload, Design, f64)> = Vec::new();
    for &workload in &opts.workloads {
        let base = service_of(workload, Design::Baseline);
        for &design in &opts.designs {
            let mine = service_of(workload, design);
            let stall = workload.service_model().mean_stall_us();
            let slowdown = match (base, mine) {
                (Some(b), Some(m)) => {
                    let (bc, mc) = ((b - stall).max(0.05), (m - stall).max(0.05));
                    // No design serves faster than the solo baseline; ratios
                    // below 1 are measurement noise.
                    (mc / bc).clamp(1.0, 6.0)
                }
                // Uncalibrated pairs are exactly those no missed cell
                // consults (hit cells carry their slowdown in the payload).
                _ => 1.0,
            };
            slowdowns.push((workload, design, slowdown));
        }
    }

    // Pass 2: cycle simulations of the missed cells. Every cell's ServerSim
    // derives its streams from (seed, design, workload, load) internally, so
    // scheduling order cannot perturb the metrics.
    let new_tracer = || match trace {
        Some(t) => Tracer::enabled(t.capacity, 1000.0),
        None => Tracer::disabled(),
    };
    let cell_label = |prefix: &str, design: Design, workload: Workload, load: f64| {
        format!("{prefix}/{design}/{workload}@{load:.2}")
    };
    let traced_raw: Vec<(RawCell, Option<TraceLog>)> = pool.run("fig5/cells", misses.len(), |j| {
        let (workload, load, design) = grid[misses[j]];
        let tracer = new_tracer();
        let metrics = ServerSim::new(design, workload)
            .load(load)
            .horizon_cycles(opts.horizon_cycles)
            .seed(opts.seed)
            .stepping(opts.stepping)
            .run_traced(&tracer);
        let lender_ref = lender_ref.as_ref().expect("computed when any cell misses");
        let mut cell = build_raw(design, workload, load, metrics, lender_ref);
        cell.slowdown = slowdowns
            .iter()
            .find(|(w, d, _)| *w == workload && *d == design)
            .map_or(1.0, |(_, _, s)| *s);
        let log = tracer.is_enabled().then(|| tracer.take());
        (cell, log)
    });
    let mut cell_logs = Vec::new();
    let mut fresh_raw = traced_raw
        .into_iter()
        .map(|(cell, log)| {
            if let Some(log) = log {
                cell_logs.push((
                    cell_label("cells", cell.design, cell.workload, cell.load),
                    log,
                ));
            }
            Some(cell)
        })
        .collect::<Vec<Option<RawCell>>>()
        .into_iter();
    // The full-grid raw vector interleaves cached measurements with fresh
    // ones, so the tail pass's baseline lookups work unchanged on any
    // cold/warm mix.
    let raw: Vec<RawCell> = grid
        .iter()
        .zip(&hits)
        .map(|(&(workload, load, design), hit)| match hit {
            Some(c) => RawCell {
                design,
                workload,
                load,
                utilization: c.utilization,
                density: c.density,
                energy_nj: c.energy_nj,
                stp: c.stp,
                slowdown: c.slowdown,
                remote_ops_per_us: c.remote_ops_per_us,
            },
            None => fresh_raw.next().flatten().expect("one raw cell per miss"),
        })
        .collect();

    // Pass 3: queueing simulations of the missed cells, parallel per cell.
    // Each tail run builds a fresh RNG from (seed, workload, load), so a
    // cell's own tail and its iso-throughput tail are pure functions of the
    // raw grid. The baseline's density_norm is exactly 1.0 (x/x), so its
    // `tails` entry doubles as both normalization denominators — the same
    // values the serial code recomputed per cell.
    let traced_tails = pool.run("fig5/tails", misses.len(), |j| {
        let c = &raw[misses[j]];
        let baseline = raw
            .iter()
            .find(|b| b.workload == c.workload && b.load == c.load && b.design == Design::Baseline)
            .expect("baseline cell exists");
        let density_norm = c.density / baseline.density.max(f64::MIN_POSITIVE);
        let tracer = new_tracer();
        let (p99, saturated) = tail_latency(c, 1.0, opts, &tracer);
        let (iso_p99, iso_sat) = tail_latency(c, density_norm, opts, &Tracer::disabled());
        let log = tracer.is_enabled().then(|| tracer.take());
        ((density_norm, p99, saturated, iso_p99, iso_sat), log)
    });
    let mut tail_logs = Vec::new();
    let mut fresh_tails = traced_tails
        .into_iter()
        .zip(&misses)
        .map(|((tuple, log), &i)| {
            if let Some(log) = log {
                let c = &raw[i];
                tail_logs.push((cell_label("tails", c.design, c.workload, c.load), log));
            }
            tuple
        })
        .collect::<Vec<(f64, f64, bool, f64, bool)>>()
        .into_iter();
    let tails: Vec<(f64, f64, bool, f64, bool)> = hits
        .iter()
        .map(|hit| match hit {
            Some(c) => (c.density_norm, c.p99, c.saturated, c.iso_p99, c.iso_sat),
            None => fresh_tails.next().expect("one tail tuple per miss"),
        })
        .collect();
    if let Some(c) = cache {
        for &i in &misses {
            c.store(&keys[i], &encode_cell(&raw[i], &tails[i]));
        }
    }

    // Deterministic post-pass: normalization against the baseline cell.
    let mut cells = Vec::with_capacity(raw.len());
    for (c, &(density_norm, p99, saturated, iso_p99, iso_sat)) in raw.iter().zip(&tails) {
        let base_idx = raw
            .iter()
            .position(|b| {
                b.workload == c.workload && b.load == c.load && b.design == Design::Baseline
            })
            .expect("baseline cell exists");
        let baseline = &raw[base_idx];
        // Both denominators are the baseline's tail at unscaled arrival rate
        // (the serial code invoked `tail_latency(baseline, 1.0)` twice).
        let base_p99 = tails[base_idx].1;
        let base_iso_p99 = base_p99;

        cells.push(Fig5Cell {
            design: c.design,
            workload: c.workload,
            load: c.load,
            utilization: c.utilization,
            perf_density_norm: density_norm,
            energy_norm: c.energy_nj / baseline.energy_nj.max(f64::MIN_POSITIVE),
            p99_us: p99,
            p99_norm: p99 / base_p99.max(f64::MIN_POSITIVE),
            iso_p99_us: iso_p99,
            iso_p99_norm: iso_p99 / base_iso_p99.max(f64::MIN_POSITIVE),
            stp_norm: c.stp / baseline.stp.max(f64::MIN_POSITIVE),
            saturated: saturated || iso_sat,
            service_slowdown: c.slowdown,
            remote_ops_per_us: c.remote_ops_per_us,
        });
    }

    let mut traces = cell_logs;
    traces.extend(tail_logs);
    let mut registry = Registry::default();
    for (label, log) in &traces {
        registry.merge_prefixed(label, &log.registry);
    }
    if log_enabled() {
        let saturated = cells.iter().filter(|c| c.saturated).count();
        log_line(&format!(
            "fig5: {} cells ({} designs × {} workloads × {} loads), {} saturated, {} traced, seed {}",
            cells.len(),
            opts.designs.len(),
            opts.workloads.len(),
            opts.loads.len(),
            saturated,
            traces.len(),
            opts.seed,
        ));
    }
    Fig5Run {
        cells,
        traces,
        registry,
    }
}

/// Mean per-request service time (µs) of `design` on `workload` under
/// back-to-back (saturated) requests; `None` if too few requests completed.
fn saturated_service_us(design: Design, workload: Workload, opts: &Fig5Options) -> Option<f64> {
    let m = ServerSim::new(design, workload)
        .saturated()
        .horizon_cycles(opts.horizon_cycles / 3)
        .seed(derive_stream(opts.seed, 0x5A7))
        .stepping(opts.stepping)
        .run();
    // In saturated mode a request's recorded latency is its fetch-to-retire
    // service time.
    if m.request_latencies_us.len() < 10 {
        return None;
    }
    Some(m.request_latencies_us.iter().sum::<f64>() / m.request_latencies_us.len() as f64)
}

fn build_raw(
    design: Design,
    workload: Workload,
    load: f64,
    metrics: DesignMetrics,
    lender_ref: &LenderReference,
) -> RawCell {
    let wall = metrics.wall_cycles.max(1) as f64;
    let wall_us = metrics.wall_us().max(1e-9);
    let utilization = metrics.utilization(4);

    // Throughput of the dyad-equivalent unit (add the §VI-B paired lender
    // for designs that lack one).
    let internal =
        (metrics.master_retired + metrics.colocated_retired + metrics.lender_retired) as f64;
    let paired_lender_ops = if design.has_lender() {
        0.0
    } else {
        lender_ref.ops_per_cycle * wall
    };
    let total_ops = internal + paired_lender_ops;
    let kind = core_kind_for(design);
    let density = total_ops / wall_us / chip_area_mm2(kind);

    // Power: main core + lender + LLC leakage.
    let main_ipc = (metrics.master_retired + metrics.colocated_retired) as f64 / wall;
    let ino_fraction = if metrics.master_retired + metrics.colocated_retired == 0 {
        0.0
    } else {
        metrics.colocated_retired as f64
            / (metrics.master_retired + metrics.colocated_retired) as f64
    };
    let lender_ipc = if design.has_lender() {
        metrics.lender_retired as f64 / wall
    } else {
        lender_ref.ops_per_cycle
    };
    let main_power = power_w(kind, main_ipc, metrics.clock_ghz, ino_fraction).total_w();
    let lender_power = power_w(CoreKind::LenderCore, lender_ipc, 3.4, 1.0).total_w();
    let llc_power = 2.0 * LLC_MM2_PER_MB * duplexity_power::energy::STATIC_W_PER_MM2;
    let total_power = main_power + lender_power + llc_power;
    let ops_per_ns = total_ops / (wall_us * 1000.0);
    let energy_nj = total_power / ops_per_ns.max(f64::MIN_POSITIVE);

    // STP over batch threads.
    let alone = lender_ref.alone_ops_per_cycle.max(f64::MIN_POSITIVE);
    let mut stp: f64 = metrics
        .retired_by_ctx
        .iter()
        .map(|&r| (r as f64 / wall) / alone)
        .sum();
    if !design.has_lender() {
        stp += lender_ref
            .retired_per_ctx_per_cycle
            .iter()
            .map(|&r| r / alone)
            .sum::<f64>();
    }

    // Remote operation rate for Figure 6.
    let mut remote_ops = (metrics.remote_ops_master + metrics.remote_ops_batch) as f64;
    if !design.has_lender() {
        remote_ops += lender_ref.remote_ops_per_cycle * wall;
    }
    let remote_ops_per_us = remote_ops / wall_us;

    RawCell {
        design,
        workload,
        load,
        utilization,
        density,
        energy_nj,
        stp,
        slowdown: 1.0,
        remote_ops_per_us,
    }
}

/// Runs the BigHouse-style tail simulation for one raw cell; `density_norm`
/// rescales the arrival rate for the iso-throughput variant (Fig. 5(e)).
///
/// Returns `(p99_us, saturated)`; a saturated queue reports `inf`.
fn tail_latency(
    cell: &RawCell,
    density_norm: f64,
    opts: &Fig5Options,
    tracer: &Tracer,
) -> (f64, bool) {
    let model = cell.workload.service_model();
    let nominal = cell.workload.nominal_service_us();
    let lambda = cell.load / nominal / density_norm.max(f64::MIN_POSITIVE);
    // `effective_mean_bound_us` is exactly the stall mean for the identity
    // plan and a conservative bound once faults add timeouts and retries.
    let scaled_mean = model.mean_compute_us() * cell.slowdown
        + opts.fault.effective_mean_bound_us(model.mean_stall_us());
    if lambda * scaled_mean >= 0.95 {
        return (f64::INFINITY, true);
    }
    let scaled = model.scale_compute(cell.slowdown);
    let fault = opts.fault;
    let mut service = |rng: &mut SimRng| {
        // Split sampling keeps the identity plan's RNG stream identical to
        // the historical `sample_parts` path (golden contract).
        let c = scaled.sample_compute(rng);
        if fault.is_none() {
            c + scaled.sample_stall(rng)
        } else {
            c + fault
                .sample_event(EventKind::RemoteMemory, rng, |r| scaled.sample_stall(r))
                .latency_us
        }
    };
    let mut qopts = opts.queue;
    // Common random numbers across designs: every design's queue sees the
    // same arrival/service sample path for a given (workload, load) cell, so
    // normalized tails reflect service scaling, not sampling noise.
    qopts.seed = derive_stream(
        opts.seed,
        0x5D00 ^ ((cell.load * 1000.0) as u64) ^ ((nominal * 16.0) as u64) << 16,
    );
    // The pre-guard above is a cheap bound; the DES pilot is the
    // authoritative stability check, and its typed Unstable verdict marks
    // the cell saturated instead of killing the whole figure.
    match try_simulate_mg1_traced(lambda, &mut service, &qopts, tracer) {
        Ok(r) => (r.tail_us, false),
        Err(_) => (f64::INFINITY, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Fig5Options {
        Fig5Options {
            loads: vec![0.5],
            workloads: vec![Workload::McRouter],
            designs: vec![Design::Baseline, Design::Smt, Design::Duplexity],
            horizon_cycles: 1_200_000,
            seed: 42,
            queue: Mg1Options {
                max_samples: 150_000,
                warmup: 1_000,
                ..Mg1Options::default()
            },
            fault: FaultPlan::none(),
            threads: 0,
            stepping: Stepping::FastForward,
            cache: None,
        }
    }

    #[test]
    fn fault_axis_inflates_tails_without_touching_cycle_metrics() {
        use duplexity_net::RetryPolicy;
        let clean = run_fig5(&tiny_opts());
        let mut faulted_opts = tiny_opts();
        faulted_opts.fault = FaultPlan::none()
            .with_drop(0.05)
            .with_retry(RetryPolicy::new(4, 10.0, 2.0, 16.0));
        let faulted = run_fig5(&faulted_opts);
        for (a, b) in clean.iter().zip(&faulted) {
            // The cycle-level metrics are upstream of the fault layer.
            assert_eq!(a.utilization, b.utilization);
            assert_eq!(a.perf_density_norm, b.perf_density_norm);
            assert_eq!(a.service_slowdown, b.service_slowdown);
            // Drops + timeouts can only push the tail up.
            assert!(
                b.p99_us > a.p99_us,
                "{}: faulted p99 {} vs clean {}",
                a.design,
                b.p99_us,
                a.p99_us
            );
        }
    }

    #[test]
    fn tiny_grid_reproduces_headline_ordering() {
        let cells = run_fig5(&tiny_opts());
        assert_eq!(cells.len(), 3);
        let get = |d: Design| cells.iter().find(|c| c.design == d).unwrap();
        let base = get(Design::Baseline);
        let dup = get(Design::Duplexity);

        // 5(a): Duplexity fills holes the baseline wastes.
        assert!(dup.utilization > 1.8 * base.utilization);
        // Normalizations are 1.0 for the baseline itself.
        assert!((base.perf_density_norm - 1.0).abs() < 1e-9);
        assert!((base.energy_norm - 1.0).abs() < 1e-9);
        assert!((base.p99_norm - 1.0).abs() < 1e-9);
        // 5(b): Duplexity's density beats baseline.
        assert!(
            dup.perf_density_norm > 1.1,
            "density {}",
            dup.perf_density_norm
        );
        // 5(c): and it spends less energy per op.
        assert!(dup.energy_norm < 0.95, "energy {}", dup.energy_norm);
        // 5(f): more batch progress than the idle-paired baseline.
        assert!(dup.stp_norm > 0.5);
    }

    #[test]
    fn duplexity_iso_tail_beats_baseline() {
        let cells = run_fig5(&tiny_opts());
        let dup = cells
            .iter()
            .find(|c| c.design == Design::Duplexity)
            .unwrap();
        assert!(!dup.saturated);
        // 5(e): at equal cost, Duplexity's p99 is lower than baseline's.
        assert!(dup.iso_p99_norm < 1.0, "iso p99 norm {}", dup.iso_p99_norm);
        // 5(d): and its straight p99 inflation is modest.
        assert!(dup.p99_norm < 1.6, "p99 norm {}", dup.p99_norm);
    }

    /// Pins the STP-denominator reference and the cell values derived from
    /// it, to exact bit patterns. `alone_ops_per_cycle` was historically
    /// computed as `ipc() / h * h` — a no-op divide-then-multiply now
    /// simplified to `ipc()` — and this test proves the simplification (and
    /// any future refactor of the reference runs) is value-preserving.
    #[test]
    fn lender_reference_and_derived_cells_are_pinned() {
        let r = lender_reference(600_000, 42);
        assert_eq!(r.ops_per_cycle, 2.713738333333333);
        assert_eq!(r.remote_ops_per_cycle, 0.001015);
        assert_eq!(r.alone_ops_per_cycle, 0.29205);

        let cells = run_fig5(&tiny_opts());
        let get = |d: Design| cells.iter().find(|c| c.design == d).unwrap();
        assert_eq!(get(Design::Baseline).stp_norm, 1.0);
        assert_eq!(get(Design::Baseline).perf_density_norm, 1.0);
        assert_eq!(get(Design::Smt).stp_norm, 1.2172071367725825);
        assert_eq!(get(Design::Smt).perf_density_norm, 1.1904130350524866);
        assert_eq!(get(Design::Duplexity).stp_norm, 2.046106754335809);
        assert_eq!(get(Design::Duplexity).perf_density_norm, 1.8896520651251965);
    }

    #[test]
    #[should_panic(expected = "baseline required")]
    fn requires_baseline() {
        let mut o = tiny_opts();
        o.designs = vec![Design::Duplexity];
        let _ = run_fig5(&o);
    }
}
