//! Figure 2: lender-core design-space experiments.
//!
//! * **2(a)** — throughput of multithreaded SPEC-like mixes on a 4-wide core
//!   under out-of-order vs in-order issue as thread count grows (the
//!   OoO/InO gap closes near 8 threads, §III-A);
//! * **2(b)** — the analytic virtual-context provisioning model: the
//!   probability that at least 8 of `n` contexts are ready, for per-thread
//!   stall probabilities 0.1 and 0.5.

use duplexity_cpu::inorder::InoEngine;
use duplexity_cpu::memsys::MemSys;
use duplexity_cpu::ooo::{FetchPolicy, OooEngine, ThreadClass};
use duplexity_obs::{log_enabled, log_line};
use duplexity_stats::binomial::Binomial;
use duplexity_stats::rng::{derive_stream, rng_from_seed};
use duplexity_uarch::config::{CoreConfig, LatencyModel, MachineConfig};
use duplexity_workloads::specmix::mix_stream;
use serde::{Deserialize, Serialize};

/// One Figure 2(a) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2aPoint {
    /// Number of SMT threads.
    pub threads: usize,
    /// Aggregate IPC under out-of-order issue.
    pub ooo_ipc: f64,
    /// Aggregate IPC under in-order issue.
    pub ino_ipc: f64,
}

impl Fig2aPoint {
    /// The InO/OoO throughput ratio (→ 1 as the gap vanishes).
    #[must_use]
    pub fn ino_over_ooo(&self) -> f64 {
        if self.ooo_ipc == 0.0 {
            0.0
        } else {
            self.ino_ipc / self.ooo_ipc
        }
    }
}

/// Runs the Figure 2(a) sweep over `1..=max_threads` SPEC-like mix threads.
#[must_use]
pub fn fig2a(max_threads: usize, horizon_cycles: u64, seed: u64) -> Vec<Fig2aPoint> {
    let machine = MachineConfig::baseline();
    let points: Vec<Fig2aPoint> = (1..=max_threads)
        .map(|threads| {
            // Out-of-order run.
            let mut ooo = OooEngine::new(
                CoreConfig::baseline_ooo(),
                FetchPolicy::Icount,
                machine.cycles_per_us(),
            );
            for t in 0..threads {
                ooo.add_thread(mix_stream(t, seed), ThreadClass::Secondary);
            }
            let mut mem = MemSys::table1(LatencyModel::default());
            let mut rng = rng_from_seed(derive_stream(seed, 0x2A00 + threads as u64));
            for now in 0..horizon_cycles {
                ooo.step(now, &mut mem, &mut rng);
            }

            // In-order run with the same streams.
            let mut ino = InoEngine::new(threads, 4, false, machine.cycles_per_us(), 64);
            for t in 0..threads {
                ino.add_fixed_context(t, mix_stream(t, seed));
            }
            let mut mem2 = MemSys::table1(LatencyModel::default());
            let mut rng2 = rng_from_seed(derive_stream(seed, 0x2A80 + threads as u64));
            for now in 0..horizon_cycles {
                ino.step(now, &mut mem2, None, None, &mut rng2);
            }

            Fig2aPoint {
                threads,
                ooo_ipc: ooo.stats().ipc(),
                ino_ipc: ino.stats().ipc(),
            }
        })
        .collect();
    if log_enabled() {
        if let Some(last) = points.last() {
            log_line(&format!(
                "fig2a: {} thread points, InO/OoO ratio at {} threads: {:.2}",
                points.len(),
                last.threads,
                last.ino_over_ooo(),
            ));
        }
    }
    points
}

/// One Figure 2(b) point: P(k ≥ `physical`) with `n` virtual contexts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2bPoint {
    /// Per-thread stall probability.
    pub stall_p: f64,
    /// Virtual contexts provisioned.
    pub n: u32,
    /// Probability at least 8 contexts are ready.
    pub p_ready: f64,
}

/// Computes the Figure 2(b) curves for stall probabilities 0.1 and 0.5 over
/// `8..=max_n` virtual contexts.
#[must_use]
pub fn fig2b(max_n: u32) -> Vec<Fig2bPoint> {
    let mut out = Vec::new();
    for stall_p in [0.1, 0.5] {
        for n in 8..=max_n {
            out.push(Fig2bPoint {
                stall_p,
                n,
                p_ready: Binomial::new(n, 1.0 - stall_p).sf_at_least(8),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_gap_closes_with_threads() {
        let points = fig2a(8, 300_000, 11);
        let one = points.iter().find(|p| p.threads == 1).unwrap();
        let eight = points.iter().find(|p| p.threads == 8).unwrap();
        // Single thread: OoO wins clearly.
        assert!(one.ino_over_ooo() < 0.85, "1T ratio {}", one.ino_over_ooo());
        // Eight threads: the gap (§III-A) has substantially closed.
        assert!(
            eight.ino_over_ooo() > one.ino_over_ooo() + 0.2,
            "1T {} vs 8T {}",
            one.ino_over_ooo(),
            eight.ino_over_ooo()
        );
        assert!(
            eight.ino_over_ooo() > 0.65,
            "8T ratio {}",
            eight.ino_over_ooo()
        );
    }

    #[test]
    fn fig2a_throughput_grows_with_threads() {
        let points = fig2a(8, 200_000, 12);
        let ipc = |n: usize| points.iter().find(|p| p.threads == n).unwrap();
        assert!(ipc(8).ino_ipc > 1.5 * ipc(1).ino_ipc);
        assert!(ipc(8).ooo_ipc >= ipc(1).ooo_ipc);
    }

    #[test]
    fn fig2b_matches_paper_anchors() {
        let points = fig2b(32);
        let p = |stall: f64, n: u32| {
            points
                .iter()
                .find(|q| q.stall_p == stall && q.n == n)
                .unwrap()
                .p_ready
        };
        // §III-A: 11 contexts suffice at 10% stall; 21 needed at 50%.
        assert!(p(0.1, 11) >= 0.9);
        assert!(p(0.5, 21) >= 0.9);
        assert!(p(0.5, 20) < 0.9);
        // Monotone in n.
        for stall in [0.1, 0.5] {
            let mut prev = 0.0;
            for n in 8..=32 {
                let v = p(stall, n);
                assert!(v >= prev - 1e-12);
                prev = v;
            }
        }
    }
}
