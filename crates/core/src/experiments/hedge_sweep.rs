//! Cluster-level duplication and hedging sweep: tail latency bought with
//! duplicate work.
//!
//! "Reducing Tail Latency via Safe and Simple Duplication" (PAPERS.md)
//! shows prioritized duplicate queues cut p99 cheaply, and RackSched
//! argues the decision belongs at the rack level. This driver sweeps the
//! cluster DES's [`DuplicationPolicy`] axis — eager duplicate-to-d,
//! deadline-triggered hedges, purge-on-first-completion, low-priority
//! duplicate queues — against the balancer-policy axis, producing the
//! tail-latency-per-unit-added-load frontier that `report --hedge`
//! renders.
//!
//! Unlike [`cluster_sweep`](crate::experiments::cluster_sweep) there is no
//! design axis and no cycle-level calibration: the sweep isolates the
//! duplication axis on the raw workload service distribution, so a cell
//! differs from its neighbors *only* in how duplicates are launched and
//! queued. Every cell at a given (cluster size, load) derives its
//! queueing seed from those coordinates alone — common random numbers
//! across balancer policies *and* duplication plans — and zero-duplication
//! plans draw nothing from the duplicate stream, making `none` cells
//! bitwise comparable to the undecorated balancer.

use crate::cellcache::{
    assemble, miss_indices, CellCache, CellKey, Digest, PayloadReader, PayloadWriter,
};
use crate::exec::ExecPool;
use duplexity_obs::{log_enabled, log_line, Tracer};
use duplexity_queueing::cluster::{
    merge_hedged_replications, try_simulate_cluster_hedged, BalancerPolicy, ClusterOptions,
    DuplicationPolicy, HedgedClusterResult,
};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::eventcore::EventQueueKind;
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Stream label for per-cell seeds (keyed on load and cluster size only,
/// never on the policy or plan, so every tail-cutting strategy races the
/// identical marked point process).
const HEDGE_CELL_STREAM: u64 = 0x4ED6;

/// Grid and fidelity parameters for the hedge sweep.
#[derive(Debug, Clone)]
pub struct HedgeSweepOptions {
    /// Microservice under test.
    pub workload: Workload,
    /// Balancing policies to compare.
    pub policies: Vec<BalancerPolicy>,
    /// Duplication/hedging plans to compare (include
    /// [`DuplicationPolicy::none`] as the frontier's origin).
    pub plans: Vec<DuplicationPolicy>,
    /// Cluster sizes (servers behind the balancer) to evaluate.
    pub server_counts: Vec<usize>,
    /// Per-server offered loads (fractions of nominal capacity; aggregate
    /// arrival rate scales with the cluster size).
    pub loads: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Queueing controls (lifted per-cell to [`ClusterOptions`]).
    pub queue: Mg1Options,
    /// Worker threads for grid cells; `0` resolves `DUPLEXITY_THREADS` /
    /// available parallelism (see [`crate::exec`]). Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Future-event-set implementation for every cell's event engine.
    /// Heap and wheel are bit-identical under the `(t, kind, seq)`
    /// total-order contract (see `duplexity_queueing::eventcore`), so this
    /// is a pure throughput knob; the bench uses it to race the two.
    pub event_queue: EventQueueKind,
    /// Independent replications per cell, run *within-cell parallel* on
    /// the pool (flattened into the grid's work list, exactly as
    /// [`cluster_sweep`](crate::experiments::cluster_sweep) does) with
    /// per-replication derived seeds and merged in replication order via
    /// [`merge_hedged_replications`]. `1` (the default) runs each cell's
    /// historical single pass bitwise; `R > 1` splits the per-cell sample
    /// budget `R` ways so even a tiny grid can keep every worker busy.
    pub replications: usize,
    /// Content-addressed cell cache (default off). Cached cells skip the
    /// work list with results byte-identical to a cold run.
    pub cache: Option<CellCache>,
}

impl Default for HedgeSweepOptions {
    fn default() -> Self {
        Self {
            // RSC, not McRouter: duplication only pays when the service
            // distribution has a heavy tail to race away, and RSC's
            // exponential 8µs Optane stall is exactly the cluster-level
            // straggler. (McRouter's near-deterministic 6–8µs service
            // makes duplication pure overhead — a result the sweep can
            // still show by overriding `workload`.)
            workload: Workload::Rsc,
            policies: vec![BalancerPolicy::Jsq, BalancerPolicy::PowerOfD(2)],
            plans: vec![
                DuplicationPolicy::none(),
                DuplicationPolicy::duplicate(2),
                DuplicationPolicy::duplicate(2).without_purge(),
                DuplicationPolicy::duplicate(2).at_low_priority(),
                DuplicationPolicy::hedge(20.0),
                DuplicationPolicy::hedge(20.0).at_low_priority(),
            ],
            server_counts: vec![4, 16],
            loads: vec![0.3, 0.5, 0.7],
            seed: 42,
            queue: Mg1Options {
                max_samples: 200_000,
                ..Mg1Options::default()
            },
            threads: 0,
            event_queue: EventQueueKind::default(),
            replications: 1,
            cache: None,
        }
    }
}

/// One (policy, plan, cluster size, load) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HedgeSweepPoint {
    /// Balancing policy name (e.g. `jsq`, `power_of_2`).
    pub policy: String,
    /// Duplication plan label (e.g. `none`, `dup2`, `hedge10_lp`).
    pub plan: String,
    /// Servers behind the balancer.
    pub servers: usize,
    /// Per-server offered load fraction.
    pub load: f64,
    /// 99th-percentile sojourn, µs (`inf` once the cell saturates).
    pub p99_us: f64,
    /// Median sojourn, µs.
    pub p50_us: f64,
    /// Mean sojourn, µs.
    pub mean_us: f64,
    /// Mean primary-copy queueing delay, µs.
    pub mean_wait_us: f64,
    /// Mean duplicate-copy queueing delay from dispatch, µs (0 when no
    /// duplicate reached service).
    pub dup_mean_wait_us: f64,
    /// Mean per-server busy fraction (delivered service only).
    pub utilization: f64,
    /// Busy fraction attributable to duplicate copies — the added-load
    /// axis of the frontier.
    pub added_utilization: f64,
    /// Duplicate copies issued over the measured window.
    pub dup_copies: u64,
    /// Hedge deadlines that fired.
    pub hedges_fired: u64,
    /// Sibling copies purged (queued + in-service).
    pub purged: u64,
    /// Redundant completions (duplicates that ran to the end and lost).
    pub wasted_completions: u64,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the sample cap.
    pub converged: bool,
    /// Whether this cell saturated (pre-guard or DES pilot verdict).
    pub saturated: bool,
}

fn saturated_point(
    policy: BalancerPolicy,
    plan: &DuplicationPolicy,
    servers: usize,
    load: f64,
) -> HedgeSweepPoint {
    HedgeSweepPoint {
        policy: policy.to_string(),
        plan: plan.label(),
        servers,
        load,
        p99_us: f64::INFINITY,
        p50_us: f64::INFINITY,
        mean_us: f64::INFINITY,
        mean_wait_us: f64::INFINITY,
        dup_mean_wait_us: f64::INFINITY,
        utilization: 1.0,
        added_utilization: 0.0,
        dup_copies: 0,
        hedges_fired: 0,
        purged: 0,
        wasted_completions: 0,
        samples: 0,
        converged: false,
        saturated: true,
    }
}

/// Content-addressed cache keys for every (policy, plan, cluster size,
/// load) cell of the hedge-sweep grid, in the driver's lexicographic
/// evaluation order. The plan is digested structurally (mode, purge,
/// priority), not by label; replication count is digested because it
/// splits the sample budget and re-derives seeds.
#[must_use]
pub fn cell_keys(opts: &HedgeSweepOptions) -> Vec<CellKey> {
    let mut keys = Vec::new();
    for &policy in &opts.policies {
        for &plan in &opts.plans {
            for &servers in &opts.server_counts {
                for &load in &opts.loads {
                    keys.push(CellKey::build("hedge_sweep", |w| {
                        opts.workload.digest(w);
                        policy.digest(w);
                        plan.digest(w);
                        w.field_usize("servers", servers);
                        w.field_f64("load", load);
                        w.field_u64("seed", opts.seed);
                        w.field("queue", &opts.queue);
                        w.field("event_queue", &opts.event_queue);
                        w.field_usize("replications", opts.replications.max(1));
                    }));
                }
            }
        }
    }
    keys
}

fn encode_point(p: &HedgeSweepPoint) -> String {
    let mut w = PayloadWriter::new();
    w.f64("p99_us", p.p99_us);
    w.f64("p50_us", p.p50_us);
    w.f64("mean_us", p.mean_us);
    w.f64("mean_wait_us", p.mean_wait_us);
    w.f64("dup_mean_wait_us", p.dup_mean_wait_us);
    w.f64("utilization", p.utilization);
    w.f64("added_utilization", p.added_utilization);
    w.u64("dup_copies", p.dup_copies);
    w.u64("hedges_fired", p.hedges_fired);
    w.u64("purged", p.purged);
    w.u64("wasted_completions", p.wasted_completions);
    w.usize("samples", p.samples);
    w.bool("converged", p.converged);
    w.bool("saturated", p.saturated);
    w.finish()
}

// Measured outputs only: the (policy, plan, servers, load) coordinates
// are rebuilt from the grid at assembly time.
struct CachedPoint {
    p99_us: f64,
    p50_us: f64,
    mean_us: f64,
    mean_wait_us: f64,
    dup_mean_wait_us: f64,
    utilization: f64,
    added_utilization: f64,
    dup_copies: u64,
    hedges_fired: u64,
    purged: u64,
    wasted_completions: u64,
    samples: usize,
    converged: bool,
    saturated: bool,
}

fn decode_point(payload: &str) -> Option<CachedPoint> {
    let mut r = PayloadReader::new(payload);
    let p = CachedPoint {
        p99_us: r.f64("p99_us")?,
        p50_us: r.f64("p50_us")?,
        mean_us: r.f64("mean_us")?,
        mean_wait_us: r.f64("mean_wait_us")?,
        dup_mean_wait_us: r.f64("dup_mean_wait_us")?,
        utilization: r.f64("utilization")?,
        added_utilization: r.f64("added_utilization")?,
        dup_copies: r.u64("dup_copies")?,
        hedges_fired: r.u64("hedges_fired")?,
        purged: r.u64("purged")?,
        wasted_completions: r.u64("wasted_completions")?,
        samples: r.usize("samples")?,
        converged: r.bool("converged")?,
        saturated: r.bool("saturated")?,
    };
    r.done().then_some(p)
}

/// Runs the hedge sweep: one duplication-aware cluster simulation per
/// (policy, plan, cluster size, load) cell, in lexicographic grid order.
///
/// Cells derive their queueing seed from `(seed, load, servers)` only, so
/// the policy and plan axes are paired comparisons over one shared marked
/// point process; the grid is bit-identical under [`ExecPool`] at any
/// worker count.
///
/// # Panics
///
/// Panics if the options contain no loads, policies, plans, or server
/// counts, or contain a zero server count.
#[must_use]
pub fn hedge_sweep(opts: &HedgeSweepOptions) -> Vec<HedgeSweepPoint> {
    assert!(
        !opts.loads.is_empty()
            && !opts.policies.is_empty()
            && !opts.plans.is_empty()
            && !opts.server_counts.is_empty(),
        "empty hedge sweep"
    );
    assert!(
        opts.server_counts.iter().all(|&n| n >= 1),
        "cluster sizes must be >= 1"
    );
    let model = opts.workload.service_model();
    let nominal = opts.workload.nominal_service_us();
    let mean_service = model.mean_compute_us() + model.mean_stall_us();

    let pool = ExecPool::new(opts.threads);

    // Grid in (policy, plan, servers, load) lexicographic order; each
    // cell is independent so the pool slots are index-addressed.
    let grid: Vec<(usize, usize, usize, f64)> = (0..opts.policies.len())
        .flat_map(|pi| {
            let plans = &opts.plans;
            let counts = &opts.server_counts;
            let loads = &opts.loads;
            (0..plans.len()).flat_map(move |qi| {
                counts
                    .iter()
                    .flat_map(move |&n| loads.iter().map(move |&l| (pi, qi, n, l)))
            })
        })
        .collect();

    let keys = cell_keys(opts);
    let hits = match &opts.cache {
        Some(cache) => cache.probe(&keys, decode_point),
        None => grid.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);

    // Replications flatten into the pool's work list (cell-major, so a
    // cell's replications are contiguous and merge in replication order),
    // exactly as the cluster sweep does; only missed cells enter the list.
    let reps = opts.replications.max(1);
    let rep_samples = opts.queue.max_samples.div_ceil(reps);
    let runs: Vec<Option<HedgedClusterResult>> =
        pool.run("hedge_sweep/points", misses.len() * reps, |w| {
            let (pi, qi, servers, load) = grid[misses[w / reps]];
            let rep = w % reps;
            let policy = opts.policies[pi];
            let plan = opts.plans[qi];
            let lambda = servers as f64 * load / nominal;
            // Cheap pre-guard mirroring the engine's pilot rule: an eager
            // no-purge plan must carry every copy to completion.
            let eager_copies = match plan.mode {
                duplexity_queueing::cluster::DupMode::Duplicate { copies } if !plan.purge => {
                    copies as f64
                }
                _ => 1.0,
            };
            if load / nominal * mean_service * eager_copies >= 0.95 {
                return None;
            }
            let mut service = |rng: &mut SimRng| {
                // Split sampling: the same draw order as the cluster sweep's
                // fault-free path.
                model.sample_compute(rng) + model.sample_stall(rng)
            };
            let mut copts = ClusterOptions::from_mg1(servers, &opts.queue);
            copts.event_queue = opts.event_queue;
            copts.max_samples = rep_samples;
            // A lone replication uses the cell seed directly (the
            // historical stream); R > 1 derives per-replication
            // sub-streams.
            let cell_seed = derive_stream(
                opts.seed,
                HEDGE_CELL_STREAM ^ ((load * 1000.0) as u64) ^ ((servers as u64) << 32),
            );
            copts.seed = if reps == 1 {
                cell_seed
            } else {
                derive_stream(cell_seed, 1 + rep as u64)
            };
            let mut balancer = policy.build();
            try_simulate_cluster_hedged(
                lambda,
                &mut service,
                balancer.as_mut(),
                &plan,
                &copts,
                &Tracer::disabled(),
            )
            .ok()
        });

    // Assemble missed cells from their replications (consumed cell-major,
    // matching the flattened work list), write them back, then interleave
    // with cached hits in grid order.
    let mut run_iter = runs.into_iter();
    let fresh: Vec<HedgeSweepPoint> = misses
        .iter()
        .map(|&i| {
            let (pi, qi, servers, load) = grid[i];
            let policy = opts.policies[pi];
            let plan = opts.plans[qi];
            let mut parts = Vec::with_capacity(reps);
            let mut saturated = false;
            for _ in 0..reps {
                match run_iter.next().expect("one run per (cell, replication)") {
                    Some(r) => parts.push(r),
                    None => saturated = true,
                }
            }
            if saturated {
                return saturated_point(policy, &plan, servers, load);
            }
            // A lone replication passes through untouched (bitwise the
            // historical cell); pooled replications merge in replication
            // order.
            let r = if parts.len() == 1 {
                parts.pop().expect("one replication")
            } else {
                merge_hedged_replications(parts, opts.queue.quantile, opts.queue.confidence)
            };
            HedgeSweepPoint {
                policy: policy.to_string(),
                plan: plan.label(),
                servers,
                load,
                p99_us: r.cluster.tail_us,
                p50_us: r.cluster.p50_us,
                mean_us: r.cluster.mean_sojourn_us,
                mean_wait_us: r.cluster.mean_wait_us,
                dup_mean_wait_us: if r.dup_wait.count() > 0 {
                    r.dup_wait.mean()
                } else {
                    0.0
                },
                utilization: r.cluster.utilization,
                added_utilization: r.added_utilization,
                dup_copies: r.tally.dup_copies,
                hedges_fired: r.tally.hedges_fired,
                purged: r.tally.purged_queued + r.tally.purged_in_service,
                wasted_completions: r.tally.wasted_completions,
                samples: r.cluster.samples,
                converged: r.cluster.converged,
                saturated: false,
            }
        })
        .collect();
    if let Some(cache) = &opts.cache {
        for (j, &i) in misses.iter().enumerate() {
            cache.store(&keys[i], &encode_point(&fresh[j]));
        }
    }
    let hit_points = hits
        .into_iter()
        .zip(&grid)
        .map(|(hit, &(pi, qi, servers, load))| {
            hit.map(|c| HedgeSweepPoint {
                policy: opts.policies[pi].to_string(),
                plan: opts.plans[qi].label(),
                servers,
                load,
                p99_us: c.p99_us,
                p50_us: c.p50_us,
                mean_us: c.mean_us,
                mean_wait_us: c.mean_wait_us,
                dup_mean_wait_us: c.dup_mean_wait_us,
                utilization: c.utilization,
                added_utilization: c.added_utilization,
                dup_copies: c.dup_copies,
                hedges_fired: c.hedges_fired,
                purged: c.purged,
                wasted_completions: c.wasted_completions,
                samples: c.samples,
                converged: c.converged,
                saturated: c.saturated,
            })
        })
        .collect();
    let points = assemble(hit_points, fresh);
    if log_enabled() {
        let saturated = points.iter().filter(|p| p.saturated).count();
        log_line(&format!(
            "hedge_sweep: {} points ({} policies × {} plans × {} sizes × {} loads) on {}, {} saturated",
            points.len(),
            opts.policies.len(),
            opts.plans.len(),
            opts.server_counts.len(),
            opts.loads.len(),
            opts.workload,
            saturated,
        ));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> HedgeSweepOptions {
        HedgeSweepOptions {
            policies: vec![BalancerPolicy::Jsq],
            plans: vec![
                DuplicationPolicy::none(),
                DuplicationPolicy::duplicate(2),
                DuplicationPolicy::duplicate(2).without_purge(),
            ],
            server_counts: vec![4],
            // Low enough that even the eager no-purge plan (which doubles
            // the offered work) stays below the saturation guard.
            loads: vec![0.25, 0.4],
            queue: Mg1Options {
                max_samples: 40_000,
                warmup: 1_000,
                ..Mg1Options::default()
            },
            ..HedgeSweepOptions::default()
        }
    }

    #[test]
    fn duplication_cuts_the_tail_and_purging_cuts_the_bill() {
        let points = hedge_sweep(&quick_opts());
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(!p.saturated, "unexpected saturation at {p:?}");
        }
        for load in [0.25, 0.4] {
            let at = |plan: &str| {
                points
                    .iter()
                    .find(|p| p.plan == plan && p.load == load)
                    .unwrap()
            };
            assert!(
                at("dup2").p99_us <= at("none").p99_us,
                "@{load}: dup2 {} vs none {}",
                at("dup2").p99_us,
                at("none").p99_us
            );
            assert!(
                at("dup2").added_utilization < at("dup2_np").added_utilization,
                "@{load}: purge must deliver less duplicate work"
            );
            assert_eq!(at("none").dup_copies, 0);
            assert_eq!(at("none").added_utilization, 0.0);
        }
    }

    #[test]
    fn within_cell_replications_merge_deterministically() {
        let mut opts = quick_opts();
        opts.replications = 4;
        opts.threads = 1;
        let one = hedge_sweep(&opts);
        opts.threads = 8;
        let eight = hedge_sweep(&opts);
        assert_eq!(
            serde_json::to_string_pretty(&one).unwrap(),
            serde_json::to_string_pretty(&eight).unwrap(),
            "replicated grid must be bit-identical at any worker count"
        );
        // The merged cells keep the replication-split sample budget and the
        // qualitative duplication contract.
        for p in &one {
            assert!(!p.saturated, "unexpected saturation at {p:?}");
            assert!(p.samples >= 40_000, "budget lost in the merge: {p:?}");
        }
        for load in [0.25, 0.4] {
            let at = |plan: &str| {
                one.iter()
                    .find(|p| p.plan == plan && p.load == load)
                    .unwrap()
            };
            assert!(at("dup2").p99_us <= at("none").p99_us);
            assert!(at("dup2").added_utilization < at("dup2_np").added_utilization);
            assert_eq!(at("none").dup_copies, 0);
        }
    }

    #[test]
    fn saturated_cells_render_instead_of_panicking() {
        let mut opts = quick_opts();
        opts.plans = vec![DuplicationPolicy::duplicate(2).without_purge()];
        opts.loads = vec![0.3, 0.6];
        let points = hedge_sweep(&opts);
        assert_eq!(points.len(), 2);
        assert!(!points[0].saturated);
        // 0.6 offered twice over (eager, no purge) saturates the farm.
        assert!(points[1].saturated, "eager no-purge at 0.6 must saturate");
        assert!(points[1].p99_us.is_infinite());
    }
}
