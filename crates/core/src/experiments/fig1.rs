//! Figure 1: the killer-microsecond motivation experiments.
//!
//! * **1(a)** — utilization surface of the closed-loop compute/stall model;
//! * **1(b)** — cumulative distribution of M/G/1 idle periods at 200K and 1M
//!   QPS for 30/50/70% load (analytic, cross-checked by discrete-event
//!   simulation);
//! * **1(c)** — throughput vs SMT thread count (1–16) on a 4-wide OoO core
//!   for FLANN with four compute-to-stall ratios.

use duplexity_cpu::memsys::MemSys;
use duplexity_cpu::ooo::{FetchPolicy, OooEngine, ThreadClass};
use duplexity_cpu::request::RequestStream;
use duplexity_obs::{log_enabled, log_line};
use duplexity_queueing::closed_loop::{utilization_surface, SurfaceCell};
use duplexity_queueing::idle_period_cdf;
use duplexity_stats::rng::{derive_stream, rng_from_seed};
use duplexity_uarch::config::{CoreConfig, LatencyModel, MachineConfig};
use duplexity_workloads::flann::{FlannConfig, FlannKernel};
use serde::{Deserialize, Serialize};

/// Computes the Figure 1(a) surface (see
/// [`duplexity_queueing::closed_loop`]).
#[must_use]
pub fn fig1a(points_per_decade: usize) -> Vec<SurfaceCell> {
    utilization_surface(points_per_decade)
}

/// One Figure 1(b) series: the idle-period CDF of an M/G/1 microservice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1bSeries {
    /// Service capacity in queries per second.
    pub qps: f64,
    /// Offered load fraction.
    pub load: f64,
    /// (idle duration µs, cumulative probability) points.
    pub cdf: Vec<(f64, f64)>,
}

/// Computes the six Figure 1(b) series (200K & 1M QPS × 30/50/70% load).
#[must_use]
pub fn fig1b(points: usize) -> Vec<Fig1bSeries> {
    let mut out = Vec::new();
    for qps in [200_000.0, 1_000_000.0] {
        for load in [0.3, 0.5, 0.7] {
            let max_t = 40.0; // µs, the figure's x-range
            let cdf = (0..=points)
                .map(|i| {
                    let t = max_t * i as f64 / points as f64;
                    (t, idle_period_cdf(qps, load, t))
                })
                .collect();
            out.push(Fig1bSeries { qps, load, cdf });
        }
    }
    out
}

/// The four §II-B FLANN sweep variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlannVariant {
    /// ~10µs compute, no stalls.
    Baseline,
    /// ~9–10µs compute per 1µs stall (90% effective utilization).
    C9S1,
    /// ~10µs compute per 10µs stall (50% effective utilization).
    C10S10,
    /// ~1µs compute per 1µs stall (50% utilization, 10× more frequent).
    C1S1,
}

impl FlannVariant {
    /// All variants in figure order.
    pub const ALL: [FlannVariant; 4] = [
        FlannVariant::Baseline,
        FlannVariant::C9S1,
        FlannVariant::C10S10,
        FlannVariant::C1S1,
    ];

    /// Display name matching the figure legend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlannVariant::Baseline => "baseline",
            FlannVariant::C9S1 => "FLANN-9-1",
            FlannVariant::C10S10 => "FLANN-10-10",
            FlannVariant::C1S1 => "FLANN-1-1",
        }
    }

    /// The FLANN configuration implementing this variant.
    #[must_use]
    pub fn config(self) -> FlannConfig {
        match self {
            FlannVariant::Baseline => FlannConfig::sweep_baseline(),
            FlannVariant::C9S1 => FlannConfig::sweep_9_1(),
            FlannVariant::C10S10 => FlannConfig::sweep_10_10(),
            FlannVariant::C1S1 => FlannConfig::sweep_1_1(),
        }
    }
}

impl std::fmt::Display for FlannVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One Figure 1(c) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1cPoint {
    /// Workload variant.
    pub variant: FlannVariant,
    /// SMT thread count.
    pub threads: usize,
    /// Aggregate retired micro-ops per cycle.
    pub ipc: f64,
    /// IPC normalized to the baseline variant's peak.
    pub normalized: f64,
}

/// Runs the Figure 1(c) thread sweep: saturated FLANN threads on one 4-wide
/// OoO core, scaling only thread count (plus architectural registers, per
/// the paper's protocol).
#[must_use]
pub fn fig1c(max_threads: usize, horizon_cycles: u64, seed: u64) -> Vec<Fig1cPoint> {
    let machine = MachineConfig::baseline();
    let mut raw: Vec<Fig1cPoint> = Vec::new();
    for variant in FlannVariant::ALL {
        for threads in 1..=max_threads {
            let mut engine = OooEngine::new(
                CoreConfig::baseline_ooo(),
                FetchPolicy::Icount,
                machine.cycles_per_us(),
            );
            for t in 0..threads {
                let kernel = FlannKernel::new(variant.config(), derive_stream(seed, t as u64));
                let stream = RequestStream::saturated(Box::new(kernel));
                engine.add_thread(
                    Box::new(stream),
                    if t == 0 {
                        ThreadClass::Primary
                    } else {
                        ThreadClass::Secondary
                    },
                );
            }
            let mut mem = MemSys::table1(LatencyModel::default());
            let mut rng = rng_from_seed(derive_stream(seed, 0xF1C + threads as u64));
            for now in 0..horizon_cycles {
                engine.step(now, &mut mem, &mut rng);
            }
            raw.push(Fig1cPoint {
                variant,
                threads,
                ipc: engine.stats().ipc(),
                normalized: 0.0,
            });
        }
    }
    let baseline_peak = raw
        .iter()
        .filter(|p| p.variant == FlannVariant::Baseline)
        .map(|p| p.ipc)
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    for p in &mut raw {
        p.normalized = p.ipc / baseline_peak;
    }
    if log_enabled() {
        log_line(&format!(
            "fig1c: {} points ({} variants × {max_threads} threads), baseline peak IPC {baseline_peak:.2}",
            raw.len(),
            FlannVariant::ALL.len(),
        ));
    }
    raw
}

/// The thread count at which a variant's throughput peaks.
#[must_use]
pub fn peak_threads(points: &[Fig1cPoint], variant: FlannVariant) -> Option<usize> {
    points
        .iter()
        .filter(|p| p.variant == variant)
        .max_by(|a, b| a.ipc.partial_cmp(&b.ipc).expect("finite ipc"))
        .map(|p| p.threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_has_expected_cells() {
        let cells = fig1a(2);
        assert!(cells.len() >= 81);
        assert!(cells.iter().all(|c| (0.0..=1.0).contains(&c.utilization)));
    }

    #[test]
    fn fig1b_matches_paper_anchors() {
        let series = fig1b(80);
        assert_eq!(series.len(), 6);
        // 1M QPS @ 50%: mean idle 2µs => CDF(2µs) = 1 - 1/e.
        let s = series
            .iter()
            .find(|s| s.qps == 1_000_000.0 && s.load == 0.5)
            .expect("series exists");
        let at_2us = s
            .cdf
            .iter()
            .find(|(t, _)| (*t - 2.0).abs() < 0.3)
            .expect("point");
        assert!((at_2us.1 - (1.0 - (-1.0f64).exp())).abs() < 0.1);
        // CDFs are monotone.
        for s in &series {
            for w in s.cdf.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }

    /// A scaled-down 1(c): stalled variants need more threads than the
    /// no-stall baseline, and heavy stalls cap attainable throughput.
    #[test]
    fn fig1c_shape_smoke() {
        // Small horizon and few thread points to keep the test fast; the
        // bench regenerates the full figure.
        let points: Vec<Fig1cPoint> = fig1c(8, 400_000, 3);
        let ipc_at = |v: FlannVariant, n: usize| {
            points
                .iter()
                .find(|p| p.variant == v && p.threads == n)
                .unwrap()
                .ipc
        };
        // More threads help every variant at the low end.
        assert!(ipc_at(FlannVariant::Baseline, 4) > 1.2 * ipc_at(FlannVariant::Baseline, 1));
        assert!(ipc_at(FlannVariant::C1S1, 8) > 1.5 * ipc_at(FlannVariant::C1S1, 1));
        // With equal thread counts, stalls depress throughput.
        assert!(ipc_at(FlannVariant::C10S10, 8) < ipc_at(FlannVariant::Baseline, 8));
    }
}
