//! Two-level rack sweep: stale-signal dispatch, work stealing, and
//! dispatch-plane coordination over the cluster grid.
//!
//! The cluster sweep assumes the balancer observes per-server queues
//! instantaneously — at microsecond service times that is generous, since
//! a rack-level scheduler's view of its servers is itself microseconds
//! old. This driver lifts the [`cluster_sweep`] methodology to the
//! two-level rack model ([`try_simulate_rack`]): per (design, policy,
//! plan, cluster size, load) cell it runs the rack engine with bounded
//! signal staleness Δ, optional idle-server work stealing, centralized or
//! distributed dispatch planes, and Zipf-skewed tenant traffic.
//!
//! The grid shares the cluster sweep's calibration (one saturated
//! cycle-level run per design) *and* its per-cell seed derivation, so a
//! fresh plan's cells — Δ=0, no stealing, single tenant — are bitwise
//! identical to the corresponding [`cluster_sweep`] cells: the rack sweep
//! strictly generalizes the cluster sweep without perturbing one golden
//! byte.
//!
//! [`cluster_sweep`]: crate::experiments::cluster_sweep

use crate::cellcache::{
    assemble, miss_indices, CellCache, CellKey, Digest, PayloadReader, PayloadWriter,
};
use crate::exec::ExecPool;
use crate::server::ServerSim;
use duplexity_cpu::designs::Design;
use duplexity_obs::{log_enabled, log_line, Tracer};
use duplexity_queueing::cluster::{BalancerPolicy, ClusterOptions};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::eventcore::EventQueueKind;
use duplexity_queueing::rack::{merge_rack_replications, try_simulate_rack, RackPlan, RackResult};
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Grid and fidelity parameters for the rack sweep.
#[derive(Debug, Clone)]
pub struct RackSweepOptions {
    /// Microservice under test.
    pub workload: Workload,
    /// Designs to sweep (must include [`Design::Baseline`], the slowdown
    /// reference).
    pub designs: Vec<Design>,
    /// Balancing policies to compare.
    pub policies: Vec<BalancerPolicy>,
    /// Rack scheduling plans (coordination × staleness × stealing ×
    /// tenant skew) to compare. [`RackPlan::fresh`] reproduces the
    /// cluster sweep's cells byte-for-byte.
    pub plans: Vec<RackPlan>,
    /// Cluster sizes (servers behind the rack dispatcher) to evaluate.
    pub server_counts: Vec<usize>,
    /// Per-server offered loads to evaluate.
    pub loads: Vec<f64>,
    /// Cycle horizon for the per-design service calibration.
    pub calibration_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Queueing controls (lifted per-cell to [`ClusterOptions`]).
    pub queue: Mg1Options,
    /// Worker threads; `0` resolves `DUPLEXITY_THREADS` / available
    /// parallelism. Results are bit-identical for every value.
    pub threads: usize,
    /// Event queue driving each cell (heap and wheel are bit-identical by
    /// the eventcore contract, so this is a speed knob, not a digested
    /// input).
    pub event_queue: EventQueueKind,
    /// Independent replications per cell, flattened into the pool's work
    /// list and merged in replication order (same contract as the cluster
    /// sweep).
    pub replications: usize,
    /// Content-addressed cell cache (default off).
    pub cache: Option<CellCache>,
}

impl Default for RackSweepOptions {
    fn default() -> Self {
        Self {
            workload: Workload::McRouter,
            designs: vec![Design::Baseline, Design::Duplexity],
            policies: vec![BalancerPolicy::Jsq, BalancerPolicy::PowerOfD(2)],
            plans: vec![
                RackPlan::fresh(),
                RackPlan::fresh().with_delta(8.0),
                RackPlan::fresh().with_delta(32.0),
                RackPlan::fresh().with_delta(8.0).with_steal(2),
                RackPlan::fresh()
                    .with_delta(8.0)
                    .distributed(4)
                    .with_tenants(64, 0.99),
            ],
            server_counts: vec![8],
            loads: vec![0.5, 0.7],
            calibration_cycles: 2_000_000,
            seed: 42,
            queue: Mg1Options {
                max_samples: 300_000,
                ..Mg1Options::default()
            },
            threads: 0,
            event_queue: EventQueueKind::default(),
            replications: 1,
            cache: None,
        }
    }
}

/// One (design, policy, plan, cluster size, load) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackSweepPoint {
    /// Design.
    pub design: Design,
    /// Balancing policy name (e.g. `jsq`, `power_of_2`).
    pub policy: String,
    /// Rack plan label (e.g. `central`, `central_d4`, `dist4_d4_z0.99`).
    pub plan: String,
    /// Dispatch-plane coordination label (`central` / `dist{k}`).
    pub coordination: String,
    /// Signal staleness Δ, µs.
    pub delta_us: f64,
    /// Servers behind the dispatcher.
    pub servers: usize,
    /// Per-server offered load fraction.
    pub load: f64,
    /// 99th-percentile sojourn, µs (`inf` once the cell saturates).
    pub p99_us: f64,
    /// Median sojourn, µs.
    pub p50_us: f64,
    /// Mean sojourn, µs.
    pub mean_us: f64,
    /// Mean queueing delay (arrival to service start), µs.
    pub mean_wait_us: f64,
    /// Hot-tenant 99th-percentile sojourn, µs (sketch-derived; equals the
    /// overall sketch tail when the plan has a single tenant).
    pub hot_p99_us: f64,
    /// Mean per-server busy fraction.
    pub utilization: f64,
    /// Successful steals over the run.
    pub steals: u64,
    /// Steal attempts whose stale signal pointed at an empty victim.
    pub steals_empty: u64,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the sample cap.
    pub converged: bool,
    /// Whether this cell saturated (pre-guard or DES pilot verdict).
    pub saturated: bool,
}

fn saturated_point(
    design: Design,
    policy: BalancerPolicy,
    plan: &RackPlan,
    servers: usize,
    load: f64,
) -> RackSweepPoint {
    RackSweepPoint {
        design,
        policy: policy.to_string(),
        plan: plan.label(),
        coordination: plan.coordination.label(),
        delta_us: plan.delta_us,
        servers,
        load,
        p99_us: f64::INFINITY,
        p50_us: f64::INFINITY,
        mean_us: f64::INFINITY,
        mean_wait_us: f64::INFINITY,
        hot_p99_us: f64::INFINITY,
        utilization: 1.0,
        steals: 0,
        steals_empty: 0,
        samples: 0,
        converged: false,
        saturated: true,
    }
}

/// Content-addressed cache keys for every cell of the rack-sweep grid, in
/// the driver's lexicographic evaluation order.
///
/// Digested: workload, design, policy, the full rack plan (coordination,
/// Δ, steal policy, tenants, skew), cluster size, load, calibration
/// horizon, seed, queue controls, and the replication count. Deliberately
/// **excluded**: the event-queue kind (heap and wheel are bit-identical by
/// the eventcore contract — a speed knob cannot change a result) and the
/// resolved thread count.
#[must_use]
pub fn cell_keys(opts: &RackSweepOptions) -> Vec<CellKey> {
    let mut keys = Vec::new();
    for &design in &opts.designs {
        for &policy in &opts.policies {
            for plan in &opts.plans {
                for &servers in &opts.server_counts {
                    for &load in &opts.loads {
                        keys.push(CellKey::build("rack_sweep", |w| {
                            opts.workload.digest(w);
                            design.digest(w);
                            policy.digest(w);
                            plan.digest(w);
                            w.field_usize("servers", servers);
                            w.field_f64("load", load);
                            w.field_u64("calibration_cycles", opts.calibration_cycles);
                            w.field_u64("seed", opts.seed);
                            w.field("queue", &opts.queue);
                            w.field_usize("replications", opts.replications.max(1));
                        }));
                    }
                }
            }
        }
    }
    keys
}

fn encode_point(p: &RackSweepPoint) -> String {
    let mut w = PayloadWriter::new();
    w.f64("p99_us", p.p99_us);
    w.f64("p50_us", p.p50_us);
    w.f64("mean_us", p.mean_us);
    w.f64("mean_wait_us", p.mean_wait_us);
    w.f64("hot_p99_us", p.hot_p99_us);
    w.f64("utilization", p.utilization);
    w.u64("steals", p.steals);
    w.u64("steals_empty", p.steals_empty);
    w.usize("samples", p.samples);
    w.bool("converged", p.converged);
    w.bool("saturated", p.saturated);
    w.finish()
}

// Measured outputs only: the grid coordinates (and the plan's labels) are
// rebuilt from the options at assembly time.
struct CachedPoint {
    p99_us: f64,
    p50_us: f64,
    mean_us: f64,
    mean_wait_us: f64,
    hot_p99_us: f64,
    utilization: f64,
    steals: u64,
    steals_empty: u64,
    samples: usize,
    converged: bool,
    saturated: bool,
}

fn decode_point(payload: &str) -> Option<CachedPoint> {
    let mut r = PayloadReader::new(payload);
    let p = CachedPoint {
        p99_us: r.f64("p99_us")?,
        p50_us: r.f64("p50_us")?,
        mean_us: r.f64("mean_us")?,
        mean_wait_us: r.f64("mean_wait_us")?,
        hot_p99_us: r.f64("hot_p99_us")?,
        utilization: r.f64("utilization")?,
        steals: r.u64("steals")?,
        steals_empty: r.u64("steals_empty")?,
        samples: r.usize("samples")?,
        converged: r.bool("converged")?,
        saturated: r.bool("saturated")?,
    };
    r.done().then_some(p)
}

/// Runs the rack sweep: one saturated calibration per design, then a rack
/// simulation per (design, policy, plan, cluster size, load) cell.
///
/// Per-cell seeds use the cluster sweep's exact derivation —
/// `derive_stream(seed, 0xC105 ^ load-bits ^ servers-bits)` — so cells
/// are common-random-number comparable across designs, policies, *and*
/// plans, and a fresh plan's cells reproduce [`cluster_sweep`] cells
/// bitwise. Bit-identical under [`ExecPool`] at any worker count.
///
/// [`cluster_sweep`]: crate::experiments::cluster_sweep::cluster_sweep
///
/// # Panics
///
/// Panics if the options contain no loads, designs, policies, plans, or
/// server counts, contain a zero server count, or omit
/// [`Design::Baseline`] (the slowdown reference).
#[must_use]
pub fn rack_sweep(opts: &RackSweepOptions) -> Vec<RackSweepPoint> {
    assert!(
        !opts.loads.is_empty()
            && !opts.designs.is_empty()
            && !opts.policies.is_empty()
            && !opts.plans.is_empty()
            && !opts.server_counts.is_empty(),
        "empty rack sweep"
    );
    assert!(
        opts.designs.contains(&Design::Baseline),
        "baseline required as the slowdown reference"
    );
    assert!(
        opts.server_counts.iter().all(|&n| n >= 1),
        "cluster sizes must be >= 1"
    );
    let model = opts.workload.service_model();
    let nominal = opts.workload.nominal_service_us();
    let stall = model.mean_stall_us();

    let pool = ExecPool::new(opts.threads);

    // Grid in (design, policy, plan, servers, load) lexicographic order.
    let grid: Vec<(usize, usize, usize, usize, f64)> = (0..opts.designs.len())
        .flat_map(|di| {
            let policies = &opts.policies;
            let plans = &opts.plans;
            let counts = &opts.server_counts;
            let loads = &opts.loads;
            (0..policies.len()).flat_map(move |pi| {
                (0..plans.len()).flat_map(move |li| {
                    counts
                        .iter()
                        .flat_map(move |&n| loads.iter().map(move |&l| (di, pi, li, n, l)))
                })
            })
        })
        .collect();
    let keys = cell_keys(opts);
    let hits = match &opts.cache {
        Some(cache) => cache.probe(&keys, decode_point),
        None => grid.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);

    // The cluster sweep's calibration verbatim: one saturated cycle sim
    // per design (stream 0x53E9), baseline anchors every slowdown, and
    // only designs with a missed cell pay for it.
    let saturated_service = |design: Design| -> Option<f64> {
        let m = ServerSim::new(design, opts.workload)
            .saturated()
            .horizon_cycles(opts.calibration_cycles)
            .seed(derive_stream(opts.seed, 0x53E9))
            .run();
        if m.request_latencies_us.len() < 10 {
            return None;
        }
        Some(m.request_latencies_us.iter().sum::<f64>() / m.request_latencies_us.len() as f64)
    };
    let mut needed = vec![false; opts.designs.len()];
    for &i in &misses {
        needed[grid[i].0] = true;
    }
    let base_idx = opts
        .designs
        .iter()
        .position(|&d| d == Design::Baseline)
        .expect("asserted above");
    if !misses.is_empty() {
        needed[base_idx] = true;
    }
    let needed_idx: Vec<usize> = (0..opts.designs.len()).filter(|&i| needed[i]).collect();
    let calibrated = pool.run("rack_sweep/calibrate", needed_idx.len(), |j| {
        saturated_service(opts.designs[needed_idx[j]])
    });
    let mut services: Vec<Option<f64>> = vec![None; opts.designs.len()];
    for (j, &di) in needed_idx.iter().enumerate() {
        services[di] = calibrated[j];
    }
    let base_service = services[base_idx];
    let slowdowns: Vec<f64> = services
        .iter()
        .map(|mine| match (base_service, *mine) {
            (Some(b), Some(m)) => {
                let (bc, mc) = ((b - stall).max(0.05), (m - stall).max(0.05));
                (mc / bc).clamp(1.0, 6.0)
            }
            _ => 1.0,
        })
        .collect();

    // Replications flatten cell-major into the pool's work list, exactly
    // as in the cluster sweep. Only missed cells enter.
    let reps = opts.replications.max(1);
    let rep_samples = opts.queue.max_samples.div_ceil(reps);
    let runs: Vec<Option<RackResult>> = pool.run("rack_sweep/points", misses.len() * reps, |w| {
        let (di, pi, li, servers, load) = grid[misses[w / reps]];
        let rep = w % reps;
        let policy = opts.policies[pi];
        let plan = &opts.plans[li];
        let slowdown = slowdowns[di];
        let lambda = servers as f64 * load / nominal;
        // The cluster sweep's fault-free pre-guard: mean service is the
        // scaled compute leg plus the (fault-free) stall leg.
        let scaled_mean = model.mean_compute_us() * slowdown + stall;
        if load / nominal * scaled_mean >= 0.95 {
            return None;
        }
        let scaled = model.scale_compute(slowdown);
        // The cluster sweep's fault-free service closure: split sampling
        // keeps the RNG stream identical to the historical path, which is
        // what makes fresh-plan cells reproduce cluster cells bitwise.
        let mut service = |rng: &mut SimRng| scaled.sample_compute(rng) + scaled.sample_stall(rng);
        let mut copts = ClusterOptions::from_mg1(servers, &opts.queue);
        copts.max_samples = rep_samples;
        copts.event_queue = opts.event_queue;
        // The cluster sweep's cell-seed derivation verbatim: common random
        // numbers across designs, policies, and plans at a given (load,
        // cluster size).
        let cell_seed = derive_stream(
            opts.seed,
            0xC105 ^ ((load * 1000.0) as u64) ^ ((servers as u64) << 32),
        );
        copts.seed = if reps == 1 {
            cell_seed
        } else {
            derive_stream(cell_seed, 1 + rep as u64)
        };
        try_simulate_rack(
            lambda,
            &mut service,
            policy,
            plan,
            &copts,
            &Tracer::disabled(),
        )
        .ok()
    });

    // Assemble missed cells cell-major, write back, interleave with hits.
    let mut run_iter = runs.into_iter();
    let fresh: Vec<RackSweepPoint> = misses
        .iter()
        .map(|&i| {
            let (di, pi, li, servers, load) = grid[i];
            let design = opts.designs[di];
            let policy = opts.policies[pi];
            let plan = &opts.plans[li];
            let mut parts = Vec::with_capacity(reps);
            let mut saturated = false;
            for _ in 0..reps {
                match run_iter.next().expect("one run per (cell, replication)") {
                    Some(r) => parts.push(r),
                    None => saturated = true,
                }
            }
            if saturated {
                return saturated_point(design, policy, plan, servers, load);
            }
            let r = if parts.len() == 1 {
                parts.pop().expect("one replication")
            } else {
                merge_rack_replications(parts, opts.queue.quantile, opts.queue.confidence)
            };
            // Single-tenant plans put every sample in the hot sketch, so
            // the hot tail degenerates to the overall sketch tail.
            let hot_p99 = r.hot_sketch.quantile(0.99).unwrap_or(0.0);
            RackSweepPoint {
                design,
                policy: policy.to_string(),
                plan: plan.label(),
                coordination: plan.coordination.label(),
                delta_us: plan.delta_us,
                servers,
                load,
                p99_us: r.cluster.tail_us,
                p50_us: r.cluster.p50_us,
                mean_us: r.cluster.mean_sojourn_us,
                mean_wait_us: r.cluster.mean_wait_us,
                hot_p99_us: hot_p99,
                utilization: r.cluster.utilization,
                steals: r.tally.steals,
                steals_empty: r.tally.steals_empty,
                samples: r.cluster.samples,
                converged: r.cluster.converged,
                saturated: false,
            }
        })
        .collect();
    if let Some(cache) = &opts.cache {
        for (j, &i) in misses.iter().enumerate() {
            cache.store(&keys[i], &encode_point(&fresh[j]));
        }
    }
    let hit_points = hits
        .into_iter()
        .zip(&grid)
        .map(|(hit, &(di, pi, li, servers, load))| {
            hit.map(|c| {
                let plan = &opts.plans[li];
                RackSweepPoint {
                    design: opts.designs[di],
                    policy: opts.policies[pi].to_string(),
                    plan: plan.label(),
                    coordination: plan.coordination.label(),
                    delta_us: plan.delta_us,
                    servers,
                    load,
                    p99_us: c.p99_us,
                    p50_us: c.p50_us,
                    mean_us: c.mean_us,
                    mean_wait_us: c.mean_wait_us,
                    hot_p99_us: c.hot_p99_us,
                    utilization: c.utilization,
                    steals: c.steals,
                    steals_empty: c.steals_empty,
                    samples: c.samples,
                    converged: c.converged,
                    saturated: c.saturated,
                }
            })
        })
        .collect();
    let points = assemble(hit_points, fresh);
    if log_enabled() {
        let saturated = points.iter().filter(|p| p.saturated).count();
        log_line(&format!(
            "rack_sweep: {} points ({} designs × {} policies × {} plans × {} sizes × {} loads) on {}, {} saturated",
            points.len(),
            opts.designs.len(),
            opts.policies.len(),
            opts.plans.len(),
            opts.server_counts.len(),
            opts.loads.len(),
            opts.workload,
            saturated,
        ));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions};

    fn quick_opts() -> RackSweepOptions {
        RackSweepOptions {
            designs: vec![Design::Baseline, Design::Duplexity],
            policies: vec![BalancerPolicy::Jsq],
            plans: vec![
                RackPlan::fresh(),
                RackPlan::fresh().with_delta(32.0),
                RackPlan::fresh()
                    .with_delta(8.0)
                    .distributed(4)
                    .with_tenants(64, 0.0),
            ],
            server_counts: vec![4],
            loads: vec![0.4, 0.7],
            calibration_cycles: 800_000,
            queue: Mg1Options {
                max_samples: 80_000,
                warmup: 1_000,
                ..Mg1Options::default()
            },
            ..RackSweepOptions::default()
        }
    }

    #[test]
    fn fresh_plan_cells_reproduce_the_cluster_sweep_bitwise() {
        // The degeneracy criterion end-to-end: a fresh rack plan's cells
        // must equal the cluster sweep's cells bit-for-bit (same
        // calibration streams, same cell seeds, same engine bookkeeping).
        let ropts = RackSweepOptions {
            plans: vec![RackPlan::fresh()],
            ..quick_opts()
        };
        let copts = ClusterSweepOptions {
            designs: ropts.designs.clone(),
            policies: ropts.policies.clone(),
            server_counts: ropts.server_counts.clone(),
            loads: ropts.loads.clone(),
            calibration_cycles: ropts.calibration_cycles,
            queue: ropts.queue,
            ..ClusterSweepOptions::default()
        };
        let rack = rack_sweep(&ropts);
        let cluster = cluster_sweep(&copts);
        assert_eq!(rack.len(), cluster.len());
        for (r, c) in rack.iter().zip(&cluster) {
            assert_eq!(r.design, c.design);
            assert_eq!(r.policy, c.policy);
            assert_eq!(r.load, c.load);
            assert_eq!(r.p99_us, c.p99_us, "{r:?} vs {c:?}");
            assert_eq!(r.p50_us, c.p50_us);
            assert_eq!(r.mean_us, c.mean_us);
            assert_eq!(r.mean_wait_us, c.mean_wait_us);
            assert_eq!(r.utilization, c.utilization);
            assert_eq!(r.samples, c.samples);
            assert_eq!(r.converged, c.converged);
        }
    }

    #[test]
    fn stale_and_uncoordinated_dispatch_degrade_every_cell() {
        let points = rack_sweep(&quick_opts());
        assert_eq!(points.len(), 12);
        for design in [Design::Baseline, Design::Duplexity] {
            for load in [0.4, 0.7] {
                let at = |plan: &str| {
                    points
                        .iter()
                        .find(|p| p.design == design && p.plan == plan && p.load == load)
                        .unwrap()
                };
                // Staleness inflates queueing delay (the clean per-cell
                // signal; the p99 ordering is pinned on the stronger
                // distributed contrast below and in the engine tests).
                assert!(
                    at("central").mean_wait_us < at("central_d32").mean_wait_us,
                    "{design} @{load}: fresh wait {} vs stale wait {}",
                    at("central").mean_wait_us,
                    at("central_d32").mean_wait_us
                );
                // Distributed dispatchers herd onto the visibly-short
                // server; the tail pays for it at every cell.
                assert!(
                    at("central").p99_us < at("dist4_d8_z0").p99_us,
                    "{design} @{load}: central p99 {} vs distributed p99 {}",
                    at("central").p99_us,
                    at("dist4_d8_z0").p99_us
                );
            }
        }
    }

    #[test]
    fn saturated_cells_render_instead_of_panicking() {
        let mut opts = quick_opts();
        opts.designs = vec![Design::Baseline];
        opts.plans = vec![RackPlan::fresh().with_delta(8.0)];
        opts.loads = vec![0.5, 0.99];
        let points = rack_sweep(&opts);
        assert_eq!(points.len(), 2);
        assert!(!points[0].saturated);
        assert!(points[1].saturated, "load 0.99 must report saturation");
        assert!(points[1].p99_us.is_infinite());
    }
}
