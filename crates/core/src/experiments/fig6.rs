//! Figure 6: interconnect (NIC IOPS) utilization per dyad (§VIII).

use super::fig5::{run_fig5, Fig5Cell, Fig5Options};
use duplexity_cpu::designs::Design;
use duplexity_net::NicModel;
use duplexity_obs::{log_enabled, log_line};
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// One Figure 6 bar: NIC IOPS utilization of a dyad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig6Cell {
    /// Design.
    pub design: Design,
    /// Microservice.
    pub workload: Workload,
    /// Offered load.
    pub load: f64,
    /// Remote operations per second issued by the dyad.
    pub ops_per_second: f64,
    /// Fraction of the FDR 4× port's 90M IOPS budget.
    pub nic_utilization: f64,
}

/// Derives Figure 6 from the Figure 5 cycle-simulation results: the remote
/// operation rates, charged against a single FDR 4× InfiniBand port.
#[must_use]
pub fn fig6(cells: &[Fig5Cell]) -> Vec<Fig6Cell> {
    let nic = NicModel::fdr_4x();
    cells
        .iter()
        .map(|c| {
            let ops_per_second = c.remote_ops_per_us * 1e6;
            Fig6Cell {
                design: c.design,
                workload: c.workload,
                load: c.load,
                ops_per_second,
                nic_utilization: nic.utilization(ops_per_second, 64.0),
            }
        })
        .collect()
}

/// Runs the Figure 5 grid (on the parallel engine configured by
/// `opts.threads`) and derives Figure 6 from it in one call.
///
/// # Panics
///
/// Propagates [`run_fig5`]'s panics (missing baseline, empty grid).
#[must_use]
pub fn run_fig6(opts: &Fig5Options) -> Vec<Fig6Cell> {
    let cells = fig6(&run_fig5(opts));
    if log_enabled() {
        let worst = cells.iter().map(|c| c.nic_utilization).fold(0.0, f64::max);
        log_line(&format!(
            "fig6: {} cells, worst NIC utilization {:.3}, {} dyads/port",
            cells.len(),
            worst,
            dyads_per_port(&cells),
        ));
    }
    cells
}

/// The §VIII headline: how many dyads of the *worst-case* cell can share one
/// FDR port.
#[must_use]
pub fn dyads_per_port(cells: &[Fig6Cell]) -> usize {
    let worst = cells.iter().map(|c| c.nic_utilization).fold(0.0, f64::max);
    if worst <= 0.0 {
        usize::MAX
    } else {
        (1.0 / worst).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig5::{run_fig5, Fig5Options};
    use duplexity_queueing::des::Mg1Options;

    #[test]
    fn fig6_tracks_remote_traffic_and_fits_fdr() {
        let opts = Fig5Options {
            loads: vec![0.5],
            workloads: vec![Workload::FlannLl],
            designs: vec![Design::Baseline, Design::Duplexity],
            horizon_cycles: 1_000_000,
            seed: 7,
            queue: Mg1Options {
                max_samples: 60_000,
                ..Mg1Options::default()
            },
            ..Fig5Options::default()
        };
        let f5 = run_fig5(&opts);
        let f6 = fig6(&f5);
        assert_eq!(f6.len(), 2);
        let base = f6.iter().find(|c| c.design == Design::Baseline).unwrap();
        let dup = f6.iter().find(|c| c.design == Design::Duplexity).unwrap();
        // Duplexity raises network utilization (§VIII: +58% over baseline on
        // average) because fillers keep issuing remote reads.
        assert!(dup.nic_utilization > base.nic_utilization);
        // But stays a small fraction of an FDR port (§VIII: < 7.1%).
        assert!(dup.nic_utilization < 0.15, "nic {}", dup.nic_utilization);
        assert!(dyads_per_port(&f6) >= 6);
    }
}
