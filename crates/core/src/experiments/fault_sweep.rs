//! Fault-policy sweep: how drop/retry/duplication/degradation policies move
//! the tail.
//!
//! RackSched and the tail-duplication line of work (PAPERS.md) show that at
//! microsecond scale the *policy* applied to a flaky leg — wait out a
//! timeout and retry, race a duplicate, or eat a degraded replica — changes
//! the p99 by integer factors. This driver runs the workspace's BigHouse
//! M/G/1 machinery over a (policy × load) grid with the stall leg routed
//! through each [`FaultPlan`], using common random numbers per load so the
//! per-policy tail columns isolate policy effects from sampling noise.

use crate::cellcache::{
    assemble, miss_indices, CellCache, CellKey, Digest, PayloadReader, PayloadWriter,
};
use crate::exec::ExecPool;
use duplexity_net::{FaultPlan, RetryPolicy};
use duplexity_obs::{log_enabled, log_line};
use duplexity_queueing::des::{try_simulate_mg1_faulted, Mg1Options};
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// A named fault-injection policy — one row of the sweep.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Display name (also the `policy` key in [`FaultSweepPoint`]).
    pub name: String,
    /// The plan applied to every stall leg.
    pub plan: FaultPlan,
}

impl FaultPolicy {
    /// Builds a named policy.
    #[must_use]
    pub fn new(name: &str, plan: FaultPlan) -> Self {
        Self {
            name: name.to_string(),
            plan,
        }
    }
}

/// The default policy set: a fault-free reference plus the four failure
/// modes the tentpole models, at parameters chosen so every default grid
/// cell stays stable.
///
/// * `none` — the identity plan (pins the zero-fault golden contract);
/// * `drop-retry` — 5% leg drops, 10µs timeout, up to 4 attempts with
///   2→16µs bounded exponential backoff;
/// * `tied` — duplicate-and-race with 5% drops (no retry needed: both
///   copies must vanish to lose an event);
/// * `slow-replica` — 10% of legs land on a 5× degraded replica;
/// * `combined` — drops + retries + degradation together.
#[must_use]
pub fn default_policies() -> Vec<FaultPolicy> {
    let retry = RetryPolicy::new(4, 10.0, 2.0, 16.0);
    vec![
        FaultPolicy::new("none", FaultPlan::none()),
        FaultPolicy::new(
            "drop-retry",
            FaultPlan::none().with_drop(0.05).with_retry(retry),
        ),
        FaultPolicy::new(
            "tied",
            FaultPlan::none()
                .with_drop(0.05)
                .with_duplicate()
                .with_retry(retry),
        ),
        FaultPolicy::new(
            "slow-replica",
            FaultPlan::none().with_slow_replica(0.1, 5.0),
        ),
        FaultPolicy::new(
            "combined",
            FaultPlan::none()
                .with_drop(0.05)
                .with_retry(retry)
                .with_slow_replica(0.05, 3.0),
        ),
    ]
}

/// Grid and fidelity parameters for the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepOptions {
    /// Microservice under test (its stall leg is what faults hit).
    pub workload: Workload,
    /// Offered loads to evaluate.
    pub loads: Vec<f64>,
    /// Fault policies to compare.
    pub policies: Vec<FaultPolicy>,
    /// RNG seed.
    pub seed: u64,
    /// Queueing controls.
    pub queue: Mg1Options,
    /// Worker threads for the grid; `0` resolves `DUPLEXITY_THREADS` /
    /// available parallelism (see [`crate::exec`]). Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Content-addressed cell cache (default off). Cached cells skip the
    /// work list with results byte-identical to a cold run.
    pub cache: Option<CellCache>,
}

impl Default for FaultSweepOptions {
    fn default() -> Self {
        Self {
            workload: Workload::McRouter,
            loads: vec![0.3, 0.5, 0.7],
            policies: default_policies(),
            seed: 42,
            queue: Mg1Options::default(),
            threads: 0,
            cache: None,
        }
    }
}

/// One (policy, load) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepPoint {
    /// Policy name.
    pub policy: String,
    /// Offered load fraction.
    pub load: f64,
    /// Median sojourn, µs.
    pub p50_us: f64,
    /// 99th-percentile sojourn, µs (`inf` once the faulted queue
    /// saturates).
    pub p99_us: f64,
    /// Mean sojourn, µs.
    pub mean_us: f64,
    /// Mean attempts per stall event (1.0 under the identity plan).
    pub mean_attempts: f64,
    /// Dropped legs per issued attempt.
    pub drop_rate: f64,
    /// Events abandoned after the attempt cap, per event.
    pub fail_rate: f64,
    /// Whether the effective load drove this point past stability.
    pub saturated: bool,
}

/// Content-addressed cache keys for every (policy, load) cell of the
/// fault-sweep grid, in the driver's policy-major evaluation order. The
/// policy's *plan* is digested, not its display name: renaming a policy
/// relabels cached cells without recomputing them.
#[must_use]
pub fn cell_keys(opts: &FaultSweepOptions) -> Vec<CellKey> {
    opts.policies
        .iter()
        .flat_map(|policy| {
            opts.loads.iter().map(move |&load| {
                CellKey::build("fault_sweep", |w| {
                    opts.workload.digest(w);
                    policy.plan.digest(w);
                    w.field_f64("load", load);
                    w.field_u64("seed", opts.seed);
                    w.field("queue", &opts.queue);
                })
            })
        })
        .collect()
}

fn encode_point(p: &FaultSweepPoint) -> String {
    let mut w = PayloadWriter::new();
    w.f64("p50_us", p.p50_us);
    w.f64("p99_us", p.p99_us);
    w.f64("mean_us", p.mean_us);
    w.f64("mean_attempts", p.mean_attempts);
    w.f64("drop_rate", p.drop_rate);
    w.f64("fail_rate", p.fail_rate);
    w.bool("saturated", p.saturated);
    w.finish()
}

// Measured outputs only: the (policy, load) coordinates are rebuilt from
// the grid at assembly time.
fn decode_point(payload: &str) -> Option<(f64, f64, f64, f64, f64, f64, bool)> {
    let mut r = PayloadReader::new(payload);
    let p50_us = r.f64("p50_us")?;
    let p99_us = r.f64("p99_us")?;
    let mean_us = r.f64("mean_us")?;
    let mean_attempts = r.f64("mean_attempts")?;
    let drop_rate = r.f64("drop_rate")?;
    let fail_rate = r.f64("fail_rate")?;
    let saturated = r.bool("saturated")?;
    r.done().then_some((
        p50_us,
        p99_us,
        mean_us,
        mean_attempts,
        drop_rate,
        fail_rate,
        saturated,
    ))
}

/// Runs the fault sweep.
///
/// Every cell derives its queueing RNG from `(seed, load)` only — common
/// random numbers across policies — so for a given load all policies see
/// the same arrival process and raw leg-latency stream, and the grid is
/// bit-identical under [`ExecPool`] at any worker count.
///
/// # Panics
///
/// Panics if the options contain no loads or no policies.
#[must_use]
pub fn fault_sweep(opts: &FaultSweepOptions) -> Vec<FaultSweepPoint> {
    assert!(
        !opts.loads.is_empty() && !opts.policies.is_empty(),
        "empty fault sweep"
    );
    let model = opts.workload.service_model();
    let leg = opts.workload.stall_leg();
    let nominal = opts.workload.nominal_service_us();

    let pool = ExecPool::new(opts.threads);
    let grid: Vec<(usize, f64)> = (0..opts.policies.len())
        .flat_map(|pi| opts.loads.iter().map(move |&l| (pi, l)))
        .collect();
    let keys = cell_keys(opts);
    let hits = match &opts.cache {
        Some(cache) => cache.probe(&keys, decode_point),
        None => grid.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);
    let fresh = pool.run("fault_sweep/points", misses.len(), |j| {
        let (pi, load) = grid[misses[j]];
        let policy = &opts.policies[pi];
        let lambda = load / nominal;
        // Saturation guard on a policy-agnostic upper bound of the
        // effective service mean (timeouts, retries, degradation).
        let effective_mean =
            model.mean_compute_us() + policy.plan.effective_mean_bound_us(leg.mean_us());
        if lambda * effective_mean >= 0.95 {
            return FaultSweepPoint {
                policy: policy.name.clone(),
                load,
                p50_us: f64::INFINITY,
                p99_us: f64::INFINITY,
                mean_us: f64::INFINITY,
                mean_attempts: 0.0,
                drop_rate: 0.0,
                fail_rate: 0.0,
                saturated: true,
            };
        }
        let mut compute = |rng: &mut SimRng| model.sample_compute(rng);
        let mut qopts = opts.queue;
        // Common random numbers across policies at a given load.
        qopts.seed = derive_stream(opts.seed, 0xFA17 ^ (load * 1000.0) as u64);
        // The pre-guard above is a cheap bound; the pilot inside the DES is
        // the authoritative stability check, and its typed Unstable verdict
        // marks the cell saturated instead of killing the sweep.
        let Ok((r, tally)) =
            try_simulate_mg1_faulted(lambda, &mut compute, &leg, &policy.plan, &qopts)
        else {
            return FaultSweepPoint {
                policy: policy.name.clone(),
                load,
                p50_us: f64::INFINITY,
                p99_us: f64::INFINITY,
                mean_us: f64::INFINITY,
                mean_attempts: 0.0,
                drop_rate: 0.0,
                fail_rate: 0.0,
                saturated: true,
            };
        };
        let (mean_attempts, drop_rate, fail_rate) = if tally.events == 0 {
            (1.0, 0.0, 0.0)
        } else {
            (
                tally.attempts as f64 / tally.events as f64,
                tally.dropped_legs as f64 / tally.attempts.max(1) as f64,
                tally.failed as f64 / tally.events as f64,
            )
        };
        FaultSweepPoint {
            policy: policy.name.clone(),
            load,
            p50_us: r.p50_us,
            p99_us: r.tail_us,
            mean_us: r.mean_sojourn_us,
            mean_attempts,
            drop_rate,
            fail_rate,
            saturated: false,
        }
    });
    if let Some(cache) = &opts.cache {
        for (j, &i) in misses.iter().enumerate() {
            cache.store(&keys[i], &encode_point(&fresh[j]));
        }
    }
    let hit_points = hits
        .into_iter()
        .zip(&grid)
        .map(|(hit, &(pi, load))| {
            hit.map(
                |(p50_us, p99_us, mean_us, mean_attempts, drop_rate, fail_rate, saturated)| {
                    FaultSweepPoint {
                        policy: opts.policies[pi].name.clone(),
                        load,
                        p50_us,
                        p99_us,
                        mean_us,
                        mean_attempts,
                        drop_rate,
                        fail_rate,
                        saturated,
                    }
                },
            )
        })
        .collect();
    let points = assemble(hit_points, fresh);
    if log_enabled() {
        let saturated = points.iter().filter(|p| p.saturated).count();
        log_line(&format!(
            "fault_sweep: {} points ({} policies × {} loads) on {}, {} saturated",
            points.len(),
            opts.policies.len(),
            opts.loads.len(),
            opts.workload,
            saturated,
        ));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> FaultSweepOptions {
        FaultSweepOptions {
            loads: vec![0.3, 0.6],
            queue: Mg1Options {
                max_samples: 60_000,
                warmup: 1_000,
                ..Mg1Options::default()
            },
            ..FaultSweepOptions::default()
        }
    }

    #[test]
    fn policies_order_the_tail_sensibly() {
        let points = fault_sweep(&quick_opts());
        assert_eq!(points.len(), 10);
        let p99 = |name: &str, load: f64| {
            points
                .iter()
                .find(|p| p.policy == name && p.load == load)
                .unwrap()
                .p99_us
        };
        for load in [0.3, 0.6] {
            // Any injected fault worsens the tail vs the identity plan.
            assert!(p99("drop-retry", load) > p99("none", load));
            assert!(p99("slow-replica", load) > p99("none", load));
            // Tied requests beat waiting out timeouts at equal drop rate.
            assert!(
                p99("tied", load) < p99("drop-retry", load),
                "tied {} vs drop-retry {} at load {load}",
                p99("tied", load),
                p99("drop-retry", load)
            );
        }
    }

    #[test]
    fn identity_policy_reports_no_fault_activity() {
        let points = fault_sweep(&quick_opts());
        for p in points.iter().filter(|p| p.policy == "none") {
            assert!(!p.saturated);
            assert_eq!(p.mean_attempts, 1.0);
            assert_eq!(p.drop_rate, 0.0);
            assert_eq!(p.fail_rate, 0.0);
        }
        for p in points.iter().filter(|p| p.policy == "drop-retry") {
            assert!(p.mean_attempts > 1.0);
            assert!(
                (p.drop_rate - 0.05).abs() < 0.01,
                "drop rate {}",
                p.drop_rate
            );
        }
    }

    #[test]
    fn saturation_guard_trips_on_hopeless_grids() {
        let mut opts = quick_opts();
        opts.loads = vec![0.99];
        opts.policies = vec![FaultPolicy::new(
            "pathological",
            FaultPlan::none()
                .with_drop(0.5)
                .with_retry(RetryPolicy::new(8, 50.0, 10.0, 100.0)),
        )];
        let points = fault_sweep(&opts);
        assert!(points[0].saturated);
        assert!(points[0].p99_us.is_infinite());
    }
}
