//! Request-domain timeline: event-clock gauge series + DES self-profile
//! for a handful of cluster loads.
//!
//! The sweeps (`cluster_sweep`, `hedge_sweep`) report *endpoint* numbers —
//! one p99 per grid cell. This driver answers the "what happened along the
//! way" question the killer-microseconds story keeps raising: it runs the
//! duplication-aware cluster engine with a timeseries-enabled
//! [`Tracer`], collecting per-server queue depth, busy-server count,
//! hedges in flight, cumulative purges, and delivered utilization on the
//! pure event clock, plus the event-core self-profile (per-kind push/pop
//! counters, wheel occupancy and fast-forward accounting) in the slash-path
//! registry.
//!
//! Determinism: the observability layer draws zero RNG values, cells
//! derive their seeds from `(seed, load, servers)` alone, and per-cell
//! logs merge in load-index order under `load{l}/` prefixes — so the
//! artifact is byte-identical at any [`ExecPool`] worker count, which
//! `tests/obs_determinism.rs` holds it to.

use crate::cellcache::{miss_indices, CellCache, CellKey, PayloadReader, PayloadWriter};
use crate::exec::ExecPool;
use duplexity_obs::{log_enabled, log_line, Bin, Observation, Registry, TimeSeriesSet, Tracer};
use duplexity_queueing::cluster::{
    try_simulate_cluster_hedged, BalancerPolicy, ClusterOptions, DuplicationPolicy,
};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::eventcore::EventQueueKind;
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_workloads::Workload;

/// Stream label for per-cell seeds (keyed on load and cluster size only,
/// matching the sweep drivers' convention).
const TIMELINE_CELL_STREAM: u64 = 0x7173;

/// Cluster traces share the DES clock domain: 1000 ticks per simulated µs.
const TIMELINE_TICKS_PER_US: f64 = 1000.0;

/// Configuration for the timeline run: one (policy, plan, cluster size),
/// several loads, one gauge-bin width.
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Microservice under test.
    pub workload: Workload,
    /// Balancing policy.
    pub policy: BalancerPolicy,
    /// Duplication/hedging plan.
    pub plan: DuplicationPolicy,
    /// Servers behind the balancer.
    pub servers: usize,
    /// Per-server offered loads; one timeline cell per load.
    pub loads: Vec<f64>,
    /// Gauge bin width in simulated µs.
    pub bin_us: f64,
    /// RNG seed.
    pub seed: u64,
    /// Queueing controls (lifted per-cell to [`ClusterOptions`]).
    pub queue: Mg1Options,
    /// Worker threads; `0` resolves `DUPLEXITY_THREADS` / available
    /// parallelism. The artifact is bit-identical for every value.
    pub threads: usize,
    /// Future-event-set implementation for every cell.
    pub event_queue: EventQueueKind,
    /// Ring capacity for raw trace events. The timeline artifact uses
    /// only gauges and registry counters (which never drop), so a small
    /// cap merely bounds memory.
    pub trace_capacity: usize,
    /// Optional content-addressed cell cache; `None` (the default) runs
    /// every load cell fresh.
    pub cache: Option<CellCache>,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        Self {
            workload: Workload::Rsc,
            policy: BalancerPolicy::Jsq,
            plan: DuplicationPolicy::hedge(20.0),
            servers: 16,
            loads: vec![0.3, 0.7],
            bin_us: 1_000.0,
            seed: 42,
            queue: Mg1Options {
                max_samples: 200_000,
                ..Mg1Options::default()
            },
            threads: 0,
            event_queue: EventQueueKind::default(),
            trace_capacity: 1 << 10,
            cache: None,
        }
    }
}

/// Cache keys for every load cell, in grid (load) order. `trace_capacity`
/// is deliberately excluded: the artifact consumes only gauges and
/// registry counters, which never drop, so the ring cap cannot perturb a
/// cached payload. `Mg1Options::seed` is likewise excluded (each cell
/// overwrites it from the digested experiment seed).
#[must_use]
pub fn cell_keys(opts: &TimelineOptions) -> Vec<CellKey> {
    opts.loads
        .iter()
        .map(|&load| {
            CellKey::build("timeline", |w| {
                w.field("workload", &opts.workload);
                w.field("policy", &opts.policy);
                w.field("plan", &opts.plan);
                w.field_usize("servers", opts.servers);
                w.field_f64("load", load);
                w.field_f64("bin_us", opts.bin_us);
                w.field_u64("seed", opts.seed);
                w.field("queue", &opts.queue);
                w.field("event_queue", &opts.event_queue);
            })
        })
        .collect()
}

/// A reconstructed load cell: endpoint summary (minus the load
/// coordinate, which the grid supplies) plus the cell's gauge series and
/// registry, exactly as the live tracer would have produced them.
struct CachedTimelineCell {
    samples: usize,
    p99_us: f64,
    sketch_p99_us: f64,
    saturated: bool,
    series: Option<TimeSeriesSet>,
    registry: Registry,
}

fn encode_cell(cell: &TimelineCell, series: Option<&TimeSeriesSet>, registry: &Registry) -> String {
    let mut w = PayloadWriter::new();
    w.usize("samples", cell.samples);
    w.f64("p99_us", cell.p99_us);
    w.f64("sketch_p99_us", cell.sketch_p99_us);
    w.bool("saturated", cell.saturated);
    w.bool("has_series", series.is_some());
    if let Some(ts) = series {
        w.usize("series_count", ts.series().count());
        for (name, s) in ts.series() {
            w.str("name", name);
            let bins = s.bins();
            w.usize("bins", bins.len());
            for b in bins {
                w.u64("count", b.count);
                w.f64("sum", b.sum);
                w.f64("min", b.min);
                w.f64("max", b.max);
                w.f64("last", b.last);
            }
        }
    }
    w.usize("counters", registry.counters().count());
    for (path, v) in registry.counters() {
        w.u64("value", v);
        w.str("path", path);
    }
    w.usize("observations", registry.observations().count());
    for (path, o) in registry.observations() {
        w.u64("count", o.count);
        w.f64("sum", o.sum);
        w.f64("min", o.min);
        w.f64("max", o.max);
        w.str("path", path);
    }
    w.finish()
}

fn decode_cell(bin_us: f64, payload: &str) -> Option<CachedTimelineCell> {
    let mut r = PayloadReader::new(payload);
    let samples = r.usize("samples")?;
    let p99_us = r.f64("p99_us")?;
    let sketch_p99_us = r.f64("sketch_p99_us")?;
    let saturated = r.bool("saturated")?;
    let series = if r.bool("has_series")? {
        let mut ts = TimeSeriesSet::new(bin_us);
        for _ in 0..r.usize("series_count")? {
            let name = r.str("name")?.to_string();
            for idx in 0..r.usize("bins")? {
                let bin = Bin {
                    count: r.u64("count")?,
                    sum: r.f64("sum")?,
                    min: r.f64("min")?,
                    max: r.f64("max")?,
                    last: r.f64("last")?,
                };
                ts.insert_bin(&name, idx, bin);
            }
        }
        Some(ts)
    } else {
        None
    };
    let mut registry = Registry::default();
    for _ in 0..r.usize("counters")? {
        let v = r.u64("value")?;
        let path = r.str("path")?.to_string();
        registry.incr(&path, v);
    }
    for _ in 0..r.usize("observations")? {
        let o = Observation {
            count: r.u64("count")?,
            sum: r.f64("sum")?,
            min: r.f64("min")?,
            max: r.f64("max")?,
        };
        let path = r.str("path")?.to_string();
        registry.set_observation(&path, o);
    }
    r.done().then_some(CachedTimelineCell {
        samples,
        p99_us,
        sketch_p99_us,
        saturated,
        series,
        registry,
    })
}

/// Per-load endpoint summary riding along with the series.
#[derive(Debug, Clone)]
pub struct TimelineCell {
    /// Per-server offered load fraction.
    pub load: f64,
    /// Measured requests (0 for a saturated cell).
    pub samples: usize,
    /// Exact p99 sojourn from the sorted-sample estimator, µs.
    pub p99_us: f64,
    /// p99 sojourn from the streaming sketch, µs — within the sketch's
    /// documented relative accuracy of `p99_us`.
    pub sketch_p99_us: f64,
    /// Whether the cell saturated (pilot verdict).
    pub saturated: bool,
}

/// The merged timeline: gauge series and registry from every load cell,
/// prefixed `load{l}/`, plus the per-load endpoint summaries.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Gauge bin width, µs.
    pub bin_us: f64,
    /// Merged event-clock gauge series (`load0.3/cluster/busy_servers`,
    /// ...), in load-index order.
    pub series: TimeSeriesSet,
    /// Merged registry (per-kind event counters, event-queue profile,
    /// request counters), in load-index order.
    pub registry: Registry,
    /// Per-load summaries, in load order.
    pub cells: Vec<TimelineCell>,
}

impl Timeline {
    /// Deterministic JSON export: endpoint summaries, then the series and
    /// registry objects (both already deterministic). Pure string
    /// assembly — float formatting is Rust's shortest round-trip, so the
    /// bytes are platform- and worker-count-independent.
    #[must_use]
    pub fn to_json(&self) -> String {
        use duplexity_obs::registry::json_f64;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bin_us\": {},\n", json_f64(self.bin_us)));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    {{\"load\": {}, \"samples\": {}, \"p99_us\": {}, \"sketch_p99_us\": {}, \"saturated\": {}}}",
                json_f64(c.load),
                c.samples,
                json_f64(c.p99_us),
                json_f64(c.sketch_p99_us),
                c.saturated,
            ));
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"series\": {},\n",
            self.series.to_json().trim_end()
        ));
        out.push_str(&format!(
            "  \"registry\": {}\n",
            self.registry.to_json().trim_end()
        ));
        out.push_str("}\n");
        out
    }
}

/// Runs the timeline: one timeseries-traced cluster simulation per load,
/// merged in load-index order.
///
/// # Panics
///
/// Panics on an empty load list, a zero server count, or a non-positive
/// bin width.
#[must_use]
pub fn timeline(opts: &TimelineOptions) -> Timeline {
    assert!(!opts.loads.is_empty(), "empty timeline");
    assert!(opts.servers >= 1, "cluster needs at least one server");
    assert!(
        opts.bin_us.is_finite() && opts.bin_us > 0.0,
        "bin width must be positive"
    );
    let model = opts.workload.service_model();
    let nominal = opts.workload.nominal_service_us();

    let keys = cell_keys(opts);
    let hits = match opts.cache.as_ref() {
        Some(c) => c.probe(&keys, |payload| decode_cell(opts.bin_us, payload)),
        None => opts.loads.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);

    let pool = ExecPool::new(opts.threads);
    let fresh = pool.run("timeline/cells", misses.len(), |j| {
        let load = opts.loads[misses[j]];
        let lambda = opts.servers as f64 * load / nominal;
        let tracer = Tracer::enabled(opts.trace_capacity, TIMELINE_TICKS_PER_US)
            .with_timeseries(opts.bin_us);
        let mut service = |rng: &mut SimRng| model.sample_compute(rng) + model.sample_stall(rng);
        let mut copts = ClusterOptions::from_mg1(opts.servers, &opts.queue);
        copts.event_queue = opts.event_queue;
        copts.seed = derive_stream(
            opts.seed,
            TIMELINE_CELL_STREAM ^ ((load * 1000.0) as u64) ^ ((opts.servers as u64) << 32),
        );
        let mut balancer = opts.policy.build();
        let result = try_simulate_cluster_hedged(
            lambda,
            &mut service,
            balancer.as_mut(),
            &opts.plan,
            &copts,
            &tracer,
        );
        let log = tracer.take();
        let cell = match &result {
            Ok(r) => TimelineCell {
                load,
                samples: r.cluster.samples,
                p99_us: r.cluster.tail_us,
                sketch_p99_us: r.cluster.sketch.quantile(0.99).unwrap_or(0.0),
                saturated: false,
            },
            Err(_) => TimelineCell {
                load,
                samples: 0,
                p99_us: f64::INFINITY,
                sketch_p99_us: f64::INFINITY,
                saturated: true,
            },
        };
        (cell, log)
    });
    if let Some(c) = opts.cache.as_ref() {
        for ((cell, log), &i) in fresh.iter().zip(&misses) {
            c.store(
                &keys[i],
                &encode_cell(cell, log.timeseries.as_ref(), &log.registry),
            );
        }
    }

    // Merge in load-index order regardless of which cells came from the
    // cache, so cold, warm, and mixed runs assemble identical artifacts.
    let mut fresh = fresh.into_iter();
    let mut series = TimeSeriesSet::new(opts.bin_us);
    let mut registry = Registry::default();
    let mut summaries = Vec::with_capacity(opts.loads.len());
    for (&load, hit) in opts.loads.iter().zip(hits) {
        let prefix = format!("load{load}");
        match hit {
            Some(c) => {
                if let Some(ts) = &c.series {
                    series.merge_prefixed(&prefix, ts);
                }
                registry.merge_prefixed(&prefix, &c.registry);
                summaries.push(TimelineCell {
                    load,
                    samples: c.samples,
                    p99_us: c.p99_us,
                    sketch_p99_us: c.sketch_p99_us,
                    saturated: c.saturated,
                });
            }
            None => {
                let (cell, log) = fresh.next().expect("one fresh cell per miss");
                if let Some(ts) = &log.timeseries {
                    series.merge_prefixed(&prefix, ts);
                }
                registry.merge_prefixed(&prefix, &log.registry);
                summaries.push(cell);
            }
        }
    }
    if log_enabled() {
        log_line(&format!(
            "timeline: {} loads x {} servers ({}, {}, {}), {} gauge series",
            summaries.len(),
            opts.servers,
            opts.workload,
            opts.policy,
            opts.plan,
            series.series().count(),
        ));
    }
    Timeline {
        bin_us: opts.bin_us,
        series,
        registry,
        cells: summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> TimelineOptions {
        TimelineOptions {
            servers: 4,
            loads: vec![0.3, 0.6],
            queue: Mg1Options {
                max_samples: 5_000,
                warmup: 500,
                ..Mg1Options::default()
            },
            ..TimelineOptions::default()
        }
    }

    #[test]
    fn timeline_collects_gauges_and_profile_per_load() {
        let t = timeline(&quick_opts());
        assert_eq!(t.cells.len(), 2);
        for cell in &t.cells {
            assert!(!cell.saturated);
            let pre = format!("load{}", cell.load);
            assert!(t
                .series
                .get(&format!("{pre}/cluster/busy_servers"))
                .is_some());
            assert!(t.series.get(&format!("{pre}/cluster/in_flight")).is_some());
            assert!(t
                .series
                .get(&format!("{pre}/cluster/server/0/depth"))
                .is_some());
            assert!(t.registry.counter(&format!("{pre}/cluster/eventq/pushes")) > 0);
            assert_eq!(
                t.registry.counter(&format!("{pre}/cluster/eventq/pushes")),
                t.registry.counter(&format!("{pre}/cluster/eventq/pops")),
            );
            // The sketch's p99 stays within its documented bound of exact.
            let alpha = 0.01;
            assert!(
                (cell.sketch_p99_us - cell.p99_us).abs() <= alpha * cell.p99_us,
                "sketch {} vs exact {}",
                cell.sketch_p99_us,
                cell.p99_us
            );
        }
    }

    #[test]
    fn timeline_json_is_stable_and_parses() {
        let t = timeline(&quick_opts());
        let j = t.to_json();
        assert_eq!(j, t.to_json());
        let v = serde_json::parse_value(&j).expect("valid JSON");
        assert!(v.get_field("series").is_some());
        assert!(v.get_field("registry").is_some());
        assert!(v.get_field("cells").is_some());
    }

    #[test]
    fn saturated_loads_summarize_without_panicking() {
        let mut opts = quick_opts();
        opts.loads = vec![0.3, 1.2];
        let t = timeline(&opts);
        assert!(!t.cells[0].saturated);
        assert!(t.cells[1].saturated);
        assert!(t.cells[1].p99_us.is_infinite());
    }
}
