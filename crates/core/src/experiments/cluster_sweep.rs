//! Cluster-scale tail sweep: many dyads behind one load balancer.
//!
//! The paper evaluates single-dyad tails; real deployments run *farms* of
//! servers behind a balancer, and RackSched-style results (PAPERS.md) show
//! the balancing policy moves the microsecond tail as much as the
//! microarchitecture does. This driver lifts the Figure-5(d) methodology to
//! that setting: one saturated cycle-level calibration per design (exactly
//! as [`sweep`](crate::experiments::sweep) does), then a multi-server
//! queueing simulation per (design, policy, cluster size, load) cell via
//! [`try_simulate_cluster`], with common random numbers so the policy and
//! design axes are paired comparisons rather than sampling noise.
//!
//! Saturated cells — whether caught by the cheap pre-guard or by the DES
//! pilot's typed [`Unstable`](duplexity_queueing::des::Unstable) verdict —
//! render as `sat` instead of killing the grid.

use crate::cellcache::{
    assemble, miss_indices, CellCache, CellKey, Digest, PayloadReader, PayloadWriter,
};
use crate::exec::ExecPool;
use crate::server::ServerSim;
use duplexity_cpu::designs::Design;
use duplexity_net::{EventKind, FaultPlan};
use duplexity_obs::{log_enabled, log_line, Tracer};
use duplexity_queueing::cluster::{
    merge_replications, try_simulate_cluster, try_simulate_cluster_hedged, BalancerPolicy,
    ClusterEngine, ClusterOptions, ClusterResult, DuplicationPolicy,
};
use duplexity_queueing::des::Mg1Options;
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Grid and fidelity parameters for the cluster sweep.
#[derive(Debug, Clone)]
pub struct ClusterSweepOptions {
    /// Microservice under test.
    pub workload: Workload,
    /// Designs to sweep (must include [`Design::Baseline`], the slowdown
    /// reference).
    pub designs: Vec<Design>,
    /// Balancing policies to compare.
    pub policies: Vec<BalancerPolicy>,
    /// Cluster sizes (servers behind the balancer) to evaluate.
    pub server_counts: Vec<usize>,
    /// Per-server offered loads to evaluate (fractions of nominal
    /// capacity; aggregate arrival rate scales with the cluster size).
    pub loads: Vec<f64>,
    /// Cycle horizon for the per-design service calibration.
    pub calibration_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Queueing controls (lifted per-cell to [`ClusterOptions`]).
    pub queue: Mg1Options,
    /// Fault plan applied to each request's µs-scale stall leg
    /// ([`FaultPlan::none`] reproduces the fault-free sample path
    /// byte-for-byte).
    pub fault: FaultPlan,
    /// Worker threads for calibrations and grid cells; `0` resolves
    /// `DUPLEXITY_THREADS` / available parallelism (see [`crate::exec`]).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Simulation engine per cell: the event-driven engine on the timing
    /// wheel (default fast path), on the reference heap, or the legacy
    /// Lindley loop.
    pub engine: ClusterEngine,
    /// Independent replications per cell, run *within-cell parallel* on
    /// the pool (flattened into the grid's work list) with per-replication
    /// derived seeds and merged in replication order. `1` (the default)
    /// runs each cell's historical single pass bitwise; `R > 1` splits
    /// the per-cell sample budget `R` ways so even a tiny grid can keep
    /// every worker busy.
    pub replications: usize,
    /// Content-addressed cell cache (default off). Cached cells skip the
    /// work list — and designs whose cells all hit skip calibration —
    /// with results byte-identical to a cold run.
    pub cache: Option<CellCache>,
}

impl Default for ClusterSweepOptions {
    fn default() -> Self {
        Self {
            workload: Workload::McRouter,
            designs: vec![Design::Baseline, Design::Smt, Design::Duplexity],
            policies: vec![
                BalancerPolicy::Random,
                BalancerPolicy::RoundRobin,
                BalancerPolicy::PowerOfD(2),
                BalancerPolicy::Jsq,
            ],
            server_counts: vec![4, 16],
            loads: vec![0.3, 0.5, 0.7],
            calibration_cycles: 2_000_000,
            seed: 42,
            queue: Mg1Options {
                max_samples: 300_000,
                ..Mg1Options::default()
            },
            fault: FaultPlan::none(),
            threads: 0,
            engine: ClusterEngine::default(),
            replications: 1,
            cache: None,
        }
    }
}

/// One (design, policy, cluster size, load) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSweepPoint {
    /// Design.
    pub design: Design,
    /// Balancing policy name (e.g. `jsq`, `power_of_2`).
    pub policy: String,
    /// Servers behind the balancer.
    pub servers: usize,
    /// Per-server offered load fraction.
    pub load: f64,
    /// 99th-percentile sojourn, µs (`inf` once the cell saturates).
    pub p99_us: f64,
    /// Median sojourn, µs.
    pub p50_us: f64,
    /// Mean sojourn, µs.
    pub mean_us: f64,
    /// Mean queueing delay, µs.
    pub mean_wait_us: f64,
    /// Mean per-server busy fraction.
    pub utilization: f64,
    /// Measured requests.
    pub samples: usize,
    /// Whether the CI stopping rule was met before the sample cap.
    pub converged: bool,
    /// Whether this cell saturated (pre-guard or DES pilot verdict).
    pub saturated: bool,
}

fn saturated_point(
    design: Design,
    policy: BalancerPolicy,
    servers: usize,
    load: f64,
) -> ClusterSweepPoint {
    ClusterSweepPoint {
        design,
        policy: policy.to_string(),
        servers,
        load,
        p99_us: f64::INFINITY,
        p50_us: f64::INFINITY,
        mean_us: f64::INFINITY,
        mean_wait_us: f64::INFINITY,
        utilization: 1.0,
        samples: 0,
        converged: false,
        saturated: true,
    }
}

/// Content-addressed cache keys for every (design, policy, cluster size,
/// load) cell of the cluster-sweep grid, in the driver's lexicographic
/// evaluation order. Replication count is digested — it splits the
/// per-cell sample budget and re-derives seeds, so `R` and `1` runs are
/// different results — but thread count is not.
#[must_use]
pub fn cell_keys(opts: &ClusterSweepOptions) -> Vec<CellKey> {
    let mut keys = Vec::new();
    for &design in &opts.designs {
        for &policy in &opts.policies {
            for &servers in &opts.server_counts {
                for &load in &opts.loads {
                    keys.push(CellKey::build("cluster_sweep", |w| {
                        opts.workload.digest(w);
                        design.digest(w);
                        policy.digest(w);
                        w.field_usize("servers", servers);
                        w.field_f64("load", load);
                        w.field_u64("calibration_cycles", opts.calibration_cycles);
                        w.field_u64("seed", opts.seed);
                        w.field("queue", &opts.queue);
                        w.field("fault", &opts.fault);
                        w.field("engine", &opts.engine);
                        w.field_usize("replications", opts.replications.max(1));
                    }));
                }
            }
        }
    }
    keys
}

fn encode_point(p: &ClusterSweepPoint) -> String {
    let mut w = PayloadWriter::new();
    w.f64("p99_us", p.p99_us);
    w.f64("p50_us", p.p50_us);
    w.f64("mean_us", p.mean_us);
    w.f64("mean_wait_us", p.mean_wait_us);
    w.f64("utilization", p.utilization);
    w.usize("samples", p.samples);
    w.bool("converged", p.converged);
    w.bool("saturated", p.saturated);
    w.finish()
}

// Measured outputs only: the (design, policy, servers, load) coordinates
// are rebuilt from the grid at assembly time.
struct CachedPoint {
    p99_us: f64,
    p50_us: f64,
    mean_us: f64,
    mean_wait_us: f64,
    utilization: f64,
    samples: usize,
    converged: bool,
    saturated: bool,
}

fn decode_point(payload: &str) -> Option<CachedPoint> {
    let mut r = PayloadReader::new(payload);
    let p = CachedPoint {
        p99_us: r.f64("p99_us")?,
        p50_us: r.f64("p50_us")?,
        mean_us: r.f64("mean_us")?,
        mean_wait_us: r.f64("mean_wait_us")?,
        utilization: r.f64("utilization")?,
        samples: r.usize("samples")?,
        converged: r.bool("converged")?,
        saturated: r.bool("saturated")?,
    };
    r.done().then_some(p)
}

/// Runs the cluster sweep: one saturated calibration per design, then a
/// multi-server queueing simulation per (design, policy, cluster size,
/// load) cell.
///
/// Every cell derives its queueing RNG from `(seed, load, servers)` only —
/// common random numbers across designs *and* policies — so for a given
/// (load, cluster size) all policies see the same marked point process and
/// the per-policy tail columns are paired comparisons. The grid is
/// bit-identical under [`ExecPool`] at any worker count.
///
/// # Panics
///
/// Panics if the options contain no loads, designs, policies, or server
/// counts, contain a zero server count, or omit [`Design::Baseline`] (the
/// slowdown reference).
#[must_use]
pub fn cluster_sweep(opts: &ClusterSweepOptions) -> Vec<ClusterSweepPoint> {
    assert!(
        !opts.loads.is_empty()
            && !opts.designs.is_empty()
            && !opts.policies.is_empty()
            && !opts.server_counts.is_empty(),
        "empty cluster sweep"
    );
    assert!(
        opts.designs.contains(&Design::Baseline),
        "baseline required as the slowdown reference"
    );
    assert!(
        opts.server_counts.iter().all(|&n| n >= 1),
        "cluster sizes must be >= 1"
    );
    let model = opts.workload.service_model();
    let nominal = opts.workload.nominal_service_us();
    let stall = model.mean_stall_us();

    let pool = ExecPool::new(opts.threads);

    // Grid in (design, policy, servers, load) lexicographic order; each
    // cell is independent so the pool slots are index-addressed.
    let grid: Vec<(usize, usize, usize, f64)> = (0..opts.designs.len())
        .flat_map(|di| {
            let policies = &opts.policies;
            let counts = &opts.server_counts;
            let loads = &opts.loads;
            (0..policies.len()).flat_map(move |pi| {
                counts
                    .iter()
                    .flat_map(move |&n| loads.iter().map(move |&l| (di, pi, n, l)))
            })
        })
        .collect();
    let keys = cell_keys(opts);
    let hits = match &opts.cache {
        Some(cache) => cache.probe(&keys, decode_point),
        None => grid.iter().map(|_| None).collect(),
    };
    let misses = miss_indices(&hits);

    // Same calibration as the latency-load sweep: one saturated cycle sim
    // per design, slowdown = compute inflation vs the baseline dyad. Only
    // designs with a missed cell calibrate (plus the baseline, which
    // anchors every slowdown): each calibration is a pure function of
    // (design, workload, horizon, seed), so a subset run is bit-identical.
    let saturated_service = |design: Design| -> Option<f64> {
        let m = ServerSim::new(design, opts.workload)
            .saturated()
            .horizon_cycles(opts.calibration_cycles)
            .seed(derive_stream(opts.seed, 0x53E9))
            .run();
        if m.request_latencies_us.len() < 10 {
            return None;
        }
        Some(m.request_latencies_us.iter().sum::<f64>() / m.request_latencies_us.len() as f64)
    };
    let mut needed = vec![false; opts.designs.len()];
    for &i in &misses {
        needed[grid[i].0] = true;
    }
    let base_idx = opts
        .designs
        .iter()
        .position(|&d| d == Design::Baseline)
        .expect("asserted above");
    if !misses.is_empty() {
        needed[base_idx] = true;
    }
    let needed_idx: Vec<usize> = (0..opts.designs.len()).filter(|&i| needed[i]).collect();
    let calibrated = pool.run("cluster_sweep/calibrate", needed_idx.len(), |j| {
        saturated_service(opts.designs[needed_idx[j]])
    });
    let mut services: Vec<Option<f64>> = vec![None; opts.designs.len()];
    for (j, &di) in needed_idx.iter().enumerate() {
        services[di] = calibrated[j];
    }
    let base_service = services[base_idx];
    let slowdowns: Vec<f64> = services
        .iter()
        .map(|mine| match (base_service, *mine) {
            (Some(b), Some(m)) => {
                let (bc, mc) = ((b - stall).max(0.05), (m - stall).max(0.05));
                (mc / bc).clamp(1.0, 6.0)
            }
            _ => 1.0,
        })
        .collect();

    // Replications flatten into the pool's work list (cell-major, so a
    // cell's replications are contiguous and merge in replication order):
    // ExecPool does not nest, and flattening is what lets a small grid
    // with many replications use every worker. Only missed cells enter
    // the work list.
    let reps = opts.replications.max(1);
    let rep_samples = opts.queue.max_samples.div_ceil(reps);
    let runs: Vec<Option<ClusterResult>> =
        pool.run("cluster_sweep/points", misses.len() * reps, |w| {
            let (di, pi, servers, load) = grid[misses[w / reps]];
            let rep = w % reps;
            let policy = opts.policies[pi];
            let slowdown = slowdowns[di];
            // Aggregate arrivals scale with the farm: each server is offered
            // `load` of its nominal capacity.
            let lambda = servers as f64 * load / nominal;
            let scaled_mean =
                model.mean_compute_us() * slowdown + opts.fault.effective_mean_bound_us(stall);
            if load / nominal * scaled_mean >= 0.95 {
                return None;
            }
            let scaled = model.scale_compute(slowdown);
            let fault = opts.fault;
            let mut service = |rng: &mut SimRng| {
                // Split sampling keeps the identity plan's RNG stream identical
                // to the historical `sample_parts` path (golden contract).
                let c = scaled.sample_compute(rng);
                if fault.is_none() {
                    c + scaled.sample_stall(rng)
                } else {
                    c + fault
                        .sample_event(EventKind::RemoteMemory, rng, |r| scaled.sample_stall(r))
                        .latency_us
                }
            };
            let mut copts = ClusterOptions::from_mg1(servers, &opts.queue);
            copts.max_samples = rep_samples;
            // Common random numbers across designs and policies at a given
            // (load, cluster size): the marked point process is shared, and
            // each policy's private balancer stream is derived inside the
            // simulator. A lone replication uses the cell seed directly (the
            // historical stream); R > 1 derives per-replication sub-streams.
            let cell_seed = derive_stream(
                opts.seed,
                0xC105 ^ ((load * 1000.0) as u64) ^ ((servers as u64) << 32),
            );
            copts.seed = if reps == 1 {
                cell_seed
            } else {
                derive_stream(cell_seed, 1 + rep as u64)
            };
            let mut balancer = policy.build();
            // The pre-guard above is a cheap bound; the DES pilot is the
            // authoritative stability check, and its typed Unstable verdict
            // marks the cell saturated instead of killing the sweep.
            match opts.engine {
                ClusterEngine::Lindley => try_simulate_cluster(
                    lambda,
                    &mut service,
                    balancer.as_mut(),
                    &copts,
                    &Tracer::disabled(),
                )
                .ok(),
                ClusterEngine::Event(kind) => {
                    copts.event_queue = kind;
                    try_simulate_cluster_hedged(
                        lambda,
                        &mut service,
                        balancer.as_mut(),
                        &DuplicationPolicy::none(),
                        &copts,
                        &Tracer::disabled(),
                    )
                    .ok()
                    .map(|h| h.cluster)
                }
            }
        });

    // Assemble missed cells from their replications (consumed cell-major,
    // matching the flattened work list), write them back, then interleave
    // with cached hits in grid order.
    let mut run_iter = runs.into_iter();
    let fresh: Vec<ClusterSweepPoint> = misses
        .iter()
        .map(|&i| {
            let (di, pi, servers, load) = grid[i];
            let design = opts.designs[di];
            let policy = opts.policies[pi];
            let mut parts = Vec::with_capacity(reps);
            let mut saturated = false;
            for _ in 0..reps {
                match run_iter.next().expect("one run per (cell, replication)") {
                    Some(r) => parts.push(r),
                    None => saturated = true,
                }
            }
            if saturated {
                return saturated_point(design, policy, servers, load);
            }
            // A lone replication passes through untouched (bitwise the
            // historical cell); pooled replications merge in replication
            // order.
            let r = if parts.len() == 1 {
                parts.pop().expect("one replication")
            } else {
                merge_replications(parts, opts.queue.quantile, opts.queue.confidence)
            };
            ClusterSweepPoint {
                design,
                policy: policy.to_string(),
                servers,
                load,
                p99_us: r.tail_us,
                p50_us: r.p50_us,
                mean_us: r.mean_sojourn_us,
                mean_wait_us: r.mean_wait_us,
                utilization: r.utilization,
                samples: r.samples,
                converged: r.converged,
                saturated: false,
            }
        })
        .collect();
    if let Some(cache) = &opts.cache {
        for (j, &i) in misses.iter().enumerate() {
            cache.store(&keys[i], &encode_point(&fresh[j]));
        }
    }
    let hit_points = hits
        .into_iter()
        .zip(&grid)
        .map(|(hit, &(di, pi, servers, load))| {
            hit.map(|c| ClusterSweepPoint {
                design: opts.designs[di],
                policy: opts.policies[pi].to_string(),
                servers,
                load,
                p99_us: c.p99_us,
                p50_us: c.p50_us,
                mean_us: c.mean_us,
                mean_wait_us: c.mean_wait_us,
                utilization: c.utilization,
                samples: c.samples,
                converged: c.converged,
                saturated: c.saturated,
            })
        })
        .collect();
    let points = assemble(hit_points, fresh);
    if log_enabled() {
        let saturated = points.iter().filter(|p| p.saturated).count();
        log_line(&format!(
            "cluster_sweep: {} points ({} designs × {} policies × {} sizes × {} loads) on {}, {} saturated",
            points.len(),
            opts.designs.len(),
            opts.policies.len(),
            opts.server_counts.len(),
            opts.loads.len(),
            opts.workload,
            saturated,
        ));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ClusterSweepOptions {
        ClusterSweepOptions {
            designs: vec![Design::Baseline, Design::Duplexity],
            policies: vec![BalancerPolicy::Random, BalancerPolicy::Jsq],
            server_counts: vec![4],
            loads: vec![0.4, 0.7],
            calibration_cycles: 800_000,
            queue: Mg1Options {
                max_samples: 80_000,
                warmup: 1_000,
                ..Mg1Options::default()
            },
            ..ClusterSweepOptions::default()
        }
    }

    #[test]
    fn jsq_beats_random_at_every_cell() {
        let points = cluster_sweep(&quick_opts());
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(!p.saturated, "unexpected saturation at {p:?}");
        }
        for design in [Design::Baseline, Design::Duplexity] {
            for load in [0.4, 0.7] {
                let at = |name: &str| {
                    points
                        .iter()
                        .find(|p| p.design == design && p.policy == name && p.load == load)
                        .unwrap()
                        .p99_us
                };
                assert!(
                    at("jsq") <= at("random"),
                    "{design} @{load}: jsq {} vs random {}",
                    at("jsq"),
                    at("random")
                );
            }
        }
    }

    #[test]
    fn saturated_cells_render_instead_of_panicking() {
        let mut opts = quick_opts();
        opts.designs = vec![Design::Baseline];
        opts.policies = vec![BalancerPolicy::Jsq];
        opts.loads = vec![0.5, 0.99];
        let points = cluster_sweep(&opts);
        assert_eq!(points.len(), 2);
        assert!(!points[0].saturated);
        assert!(points[1].saturated, "load 0.99 must report saturation");
        assert!(points[1].p99_us.is_infinite());
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let opts = quick_opts();
        let points = cluster_sweep(&opts);
        for p in points.iter().filter(|p| !p.saturated) {
            assert!(
                p.utilization > p.load * 0.6 && p.utilization < (p.load * 1.6).min(1.0),
                "{p:?}"
            );
        }
    }
}
