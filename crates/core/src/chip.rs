//! Chip-level simulation: several dyads sharing one NIC port.
//!
//! Figure 4(c) shows the Duplexity server processor as a sea of dyads; §VIII
//! checks that the shared interconnect can feed them all. This module scales
//! the single-dyad simulation out to a chip: `n` dyads run independently
//! (Table I gives each core private L1s and a private LLC slice, so dyads
//! couple only through the NIC), their remote-operation rates are summed
//! against one FDR 4× port, and the M/D/1 queueing delay at the port's IOPS
//! engine is reported so oversubscription is visible rather than silent.
//!
//! Dyads are simulated on separate OS threads — the simulations are
//! deterministic per dyad seed, so the result is independent of scheduling.

use crate::server::ServerSim;
use duplexity_cpu::designs::{Design, DesignMetrics};
use duplexity_net::NicModel;
use duplexity_stats::rng::derive_stream;
use duplexity_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Configuration of a chip-scale run.
#[derive(Debug, Clone, Copy)]
pub struct ChipConfig {
    /// Number of dyads on the chip (Fig. 4(c)).
    pub dyads: usize,
    /// The design occupying every latency-critical slot.
    pub design: Design,
    /// The microservice served by every master-thread.
    pub workload: Workload,
    /// Offered load per dyad.
    pub load: f64,
    /// Cycle horizon per dyad.
    pub horizon_cycles: u64,
    /// Base seed; dyad `i` runs with an independent derived stream.
    pub seed: u64,
    /// The shared NIC.
    pub nic: NicModel,
}

/// One slot of a heterogeneous chip: a design serving a microservice at a
/// load (§IV: a data-center-scale scheduler may assign different services to
/// different dyads).
#[derive(Debug, Clone, Copy)]
pub struct DyadAssignment {
    /// Core organization of the slot.
    pub design: Design,
    /// Microservice pinned to the slot's master-thread.
    pub workload: Workload,
    /// Offered load for this slot.
    pub load: f64,
}

impl ChipConfig {
    /// A 14-dyad FDR-4× chip (§VIII's sharing bound), 50% load.
    #[must_use]
    pub fn paper_scale(design: Design, workload: Workload) -> Self {
        Self {
            dyads: 14,
            design,
            workload,
            load: 0.5,
            horizon_cycles: 1_500_000,
            seed: 42,
            nic: NicModel::fdr_4x(),
        }
    }
}

/// Aggregate results of a chip-scale run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipMetrics {
    /// Per-dyad cycle-simulation metrics, in dyad order.
    pub per_dyad: Vec<DesignMetrics>,
    /// Mean master-core utilization across dyads.
    pub mean_utilization: f64,
    /// Aggregate batch throughput (micro-ops per µs) across the chip.
    pub batch_ops_per_us: f64,
    /// Aggregate remote operations per second offered to the NIC.
    pub nic_ops_per_second: f64,
    /// Fraction of the NIC's binding budget consumed.
    pub nic_utilization: f64,
    /// Mean M/D/1 queueing delay at the NIC's IOPS engine, µs.
    pub nic_queueing_delay_us: f64,
    /// All completed request latencies across dyads, µs.
    pub pooled_request_latencies_us: Vec<f64>,
}

impl ChipMetrics {
    /// The pooled p99 request latency, µs; `None` with too few requests.
    #[must_use]
    pub fn pooled_p99_us(&self) -> Option<f64> {
        if self.pooled_request_latencies_us.len() < 100 {
            return None;
        }
        let mut v = self.pooled_request_latencies_us.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((v.len() as f64) * 0.99).ceil() as usize;
        Some(v[rank.clamp(1, v.len()) - 1])
    }

    /// True if the offered remote traffic saturates the NIC port.
    #[must_use]
    pub fn nic_saturated(&self) -> bool {
        self.nic_utilization >= 1.0
    }
}

/// Internal aggregation parameters shared by the homogeneous and mixed
/// entry points.
#[derive(Debug, Clone, Copy)]
struct AggregateInputs {
    dyads: usize,
    nic: NicModel,
}

/// Runs `cfg.dyads` independent dyad simulations in parallel and aggregates
/// them against the shared NIC.
///
/// # Panics
///
/// Panics if `cfg.dyads == 0` or a worker thread panics.
#[must_use]
pub fn simulate_chip(cfg: &ChipConfig) -> ChipMetrics {
    assert!(cfg.dyads > 0, "a chip needs at least one dyad");
    let slots: Vec<DyadAssignment> = (0..cfg.dyads)
        .map(|_| DyadAssignment {
            design: cfg.design,
            workload: cfg.workload,
            load: cfg.load,
        })
        .collect();
    simulate_mixed_chip(&slots, cfg.horizon_cycles, cfg.seed, cfg.nic)
}

/// Runs a *heterogeneous* chip: one dyad per assignment, simulated in
/// parallel, aggregated against the shared NIC.
///
/// # Panics
///
/// Panics if `slots` is empty or a worker thread panics.
#[must_use]
pub fn simulate_mixed_chip(
    slots: &[DyadAssignment],
    horizon_cycles: u64,
    seed: u64,
    nic: NicModel,
) -> ChipMetrics {
    assert!(!slots.is_empty(), "a chip needs at least one dyad");
    let mut per_dyad: Vec<Option<DesignMetrics>> = Vec::new();
    per_dyad.resize_with(slots.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            let slot = *slot;
            handles.push(scope.spawn(move || {
                ServerSim::new(slot.design, slot.workload)
                    .load(slot.load)
                    .horizon_cycles(horizon_cycles)
                    .seed(derive_stream(seed, 0xC41C + i as u64))
                    .run()
            }));
        }
        for (out, handle) in per_dyad.iter_mut().zip(handles) {
            *out = Some(handle.join().expect("dyad simulation panicked"));
        }
    });
    let per_dyad: Vec<DesignMetrics> = per_dyad.into_iter().map(|m| m.expect("filled")).collect();
    let cfg = AggregateInputs {
        dyads: slots.len(),
        nic,
    };

    let mean_utilization =
        per_dyad.iter().map(|m| m.utilization(4)).sum::<f64>() / cfg.dyads as f64;
    let batch_ops_per_us = per_dyad
        .iter()
        .map(|m| (m.colocated_retired + m.lender_retired) as f64 / m.wall_us().max(1e-9))
        .sum();
    let nic_ops_per_second = per_dyad
        .iter()
        .map(|m| (m.remote_ops_master + m.remote_ops_batch) as f64 / m.wall_us().max(1e-9) * 1e6)
        .sum();
    let pooled_request_latencies_us = per_dyad
        .iter()
        .flat_map(|m| m.request_latencies_us.iter().copied())
        .collect();

    ChipMetrics {
        mean_utilization,
        batch_ops_per_us,
        nic_ops_per_second,
        nic_utilization: cfg.nic.utilization(nic_ops_per_second, 64.0),
        nic_queueing_delay_us: cfg.nic.queueing_delay_us(nic_ops_per_second),
        pooled_request_latencies_us,
        per_dyad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(design: Design, dyads: usize) -> ChipConfig {
        ChipConfig {
            dyads,
            design,
            workload: Workload::FlannLl,
            load: 0.5,
            horizon_cycles: 500_000,
            seed: 7,
            nic: NicModel::fdr_4x(),
        }
    }

    #[test]
    fn chip_aggregates_scale_with_dyad_count() {
        let two = simulate_chip(&small(Design::Duplexity, 2));
        let four = simulate_chip(&small(Design::Duplexity, 4));
        assert_eq!(two.per_dyad.len(), 2);
        assert_eq!(four.per_dyad.len(), 4);
        // Remote traffic roughly doubles with dyad count.
        let ratio = four.nic_ops_per_second / two.nic_ops_per_second.max(1.0);
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
        // Utilization is a per-dyad mean, not a sum.
        assert!((two.mean_utilization - four.mean_utilization).abs() < 0.15);
    }

    #[test]
    fn fdr_port_sharing_bound_is_near_the_papers() {
        // §VIII: per-dyad traffic lands around 7% of one FDR port, so the
        // sharing bound is in the low teens. Our calibration puts each dyad
        // at ~7-8%, so 8 dyads fit comfortably and 20 saturate.
        let eight = simulate_chip(&ChipConfig {
            dyads: 8,
            horizon_cycles: 400_000,
            ..ChipConfig::paper_scale(Design::Duplexity, Workload::FlannLl)
        });
        assert!(
            !eight.nic_saturated(),
            "nic at {:.1}%",
            eight.nic_utilization * 100.0
        );
        assert!(
            eight.nic_utilization > 0.3,
            "traffic too low to be plausible"
        );
        assert!(eight.nic_queueing_delay_us < 0.1);
        let per_dyad = eight.nic_utilization / 8.0;
        assert!(
            (0.04..0.12).contains(&per_dyad),
            "per-dyad share {per_dyad} far from the paper's 7.1%"
        );

        // Oversubscription is reported, not hidden.
        let twenty = simulate_chip(&ChipConfig {
            dyads: 20,
            horizon_cycles: 300_000,
            ..ChipConfig::paper_scale(Design::Duplexity, Workload::FlannLl)
        });
        assert!(twenty.nic_saturated());
        assert!(twenty.nic_queueing_delay_us.is_infinite());
    }

    #[test]
    fn dyads_are_decorrelated_but_deterministic() {
        let a = simulate_chip(&small(Design::Duplexity, 3));
        let b = simulate_chip(&small(Design::Duplexity, 3));
        // Deterministic across runs (including the threaded fan-out).
        assert_eq!(a.per_dyad[0].master_retired, b.per_dyad[0].master_retired);
        assert_eq!(a.pooled_request_latencies_us, b.pooled_request_latencies_us);
        // Different dyads see different arrival sample paths.
        assert_ne!(a.per_dyad[0].master_retired, a.per_dyad[1].master_retired);
    }

    #[test]
    fn baseline_chip_offers_less_nic_traffic_than_duplexity() {
        let base = simulate_chip(&small(Design::Baseline, 2));
        let dup = simulate_chip(&small(Design::Duplexity, 2));
        assert!(dup.nic_ops_per_second > base.nic_ops_per_second);
        assert!(dup.batch_ops_per_us > base.batch_ops_per_us);
    }

    #[test]
    fn pooled_p99_needs_enough_samples() {
        let m = simulate_chip(&small(Design::Baseline, 1));
        // 500k cycles of FLANN-LL at 50% load -> tens of requests only.
        if m.pooled_request_latencies_us.len() >= 100 {
            assert!(m.pooled_p99_us().is_some());
        } else {
            assert!(m.pooled_p99_us().is_none());
        }
    }
}

#[cfg(test)]
mod mixed_tests {
    use super::*;

    /// A mixed chip: Duplexity dyads for the stall-heavy services, a plain
    /// baseline for the stall-free one.
    #[test]
    fn mixed_chip_runs_heterogeneous_slots() {
        let slots = [
            DyadAssignment {
                design: Design::Duplexity,
                workload: Workload::FlannLl,
                load: 0.5,
            },
            DyadAssignment {
                design: Design::Duplexity,
                workload: Workload::Rsc,
                load: 0.3,
            },
            DyadAssignment {
                design: Design::Baseline,
                workload: Workload::WordStem,
                load: 0.7,
            },
        ];
        let m = simulate_mixed_chip(&slots, 500_000, 11, NicModel::fdr_4x());
        assert_eq!(m.per_dyad.len(), 3);
        // The Duplexity slots carry batch work; the baseline slot does not.
        assert!(m.per_dyad[0].colocated_retired > 0);
        assert!(m.per_dyad[1].colocated_retired > 0);
        assert_eq!(m.per_dyad[2].colocated_retired, 0);
        // WordStem issues no master-thread remotes.
        assert_eq!(m.per_dyad[2].remote_ops_master, 0);
        assert!(m.nic_utilization > 0.0 && m.nic_utilization < 1.0);
    }

    /// The homogeneous entry point is exactly a mixed chip with identical
    /// slots.
    #[test]
    fn homogeneous_is_special_case_of_mixed() {
        let cfg = ChipConfig {
            dyads: 2,
            design: Design::Duplexity,
            workload: Workload::McRouter,
            load: 0.5,
            horizon_cycles: 300_000,
            seed: 4,
            nic: NicModel::fdr_4x(),
        };
        let a = simulate_chip(&cfg);
        let slots = [DyadAssignment {
            design: cfg.design,
            workload: cfg.workload,
            load: cfg.load,
        }; 2];
        let b = simulate_mixed_chip(&slots, cfg.horizon_cycles, cfg.seed, cfg.nic);
        assert_eq!(a.per_dyad[0].master_retired, b.per_dyad[0].master_retired);
        assert_eq!(a.nic_ops_per_second, b.nic_ops_per_second);
    }
}
