//! # Duplexity
//!
//! A full-system reproduction of **"Enhancing Server Efficiency in the Face
//! of Killer Microseconds"** (Mirhosseini, Sriraman, Wenisch — HPCA 2019).
//!
//! Modern data-center events — remote memory reads, fast-storage accesses,
//! inter-request gaps in high-throughput microservices — last single-digit
//! *microseconds*: too long for out-of-order execution to hide, too short to
//! amortize an OS context switch. Duplexity's answer is the **dyad**: a
//! latency-optimized, *morphable* **master-core** paired with a
//! throughput-optimized, hierarchically multithreaded (HSMT) **lender-core**.
//! When the master-thread stalls or idles, the master-core morphs into an
//! 8-context in-order engine and *borrows* filler-threads from the lender's
//! virtual-context run queue — while keeping the master-thread's caches,
//! TLBs, predictors and registers untouched so that its tail latency
//! survives.
//!
//! This crate is the top of the workspace: it wires the cycle-level CPU
//! models (`duplexity-cpu`), workload models (`duplexity-workloads`),
//! BigHouse-style queueing (`duplexity-queueing`), the area/power model
//! (`duplexity-power`) and the NIC model (`duplexity-net`) into the paper's
//! experiments — one driver per table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use duplexity::{Design, ServerSim, Workload};
//!
//! // Simulate a Duplexity dyad serving McRouter at 50% load for 1M cycles.
//! let sim = ServerSim::new(Design::Duplexity, Workload::McRouter)
//!     .load(0.5)
//!     .horizon_cycles(1_000_000)
//!     .seed(7);
//! let m = sim.run();
//! assert!(m.utilization(4) > 0.0);
//! ```
//!
//! ## Experiment index
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 1(a) utilization surface | [`experiments::fig1::fig1a`] |
//! | Fig. 1(b) idle-period CDFs | [`experiments::fig1::fig1b`] |
//! | Fig. 1(c) SMT thread sweep | [`experiments::fig1::fig1c`] |
//! | Fig. 2(a) OoO vs InO threads | [`experiments::fig2::fig2a`] |
//! | Fig. 2(b) virtual-context model | [`experiments::fig2::fig2b`] |
//! | Table I / Table II | [`experiments::tables`] |
//! | Fig. 5(a)–(f) | [`experiments::fig5::run_fig5`] |
//! | Fig. 6 NIC utilization | [`experiments::fig6::fig6`] |
//! | Fault-policy tail sweep (extension) | [`experiments::fault_sweep::fault_sweep`] |
//! | Cluster balancing sweep (extension) | [`experiments::cluster_sweep::cluster_sweep`] |
//! | Duplication/hedging sweep (extension) | [`experiments::hedge_sweep::hedge_sweep`] |
//! | Two-level rack sweep (extension) | [`experiments::rack_sweep::rack_sweep`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellcache;
pub mod chip;
pub mod exec;
pub mod experiments;
pub mod report;
pub mod scheduler;
pub mod server;

pub use cellcache::{digest_of_digests, CellCache, CellKey, Digest, DigestWriter};
pub use chip::{simulate_chip, simulate_mixed_chip, ChipConfig, ChipMetrics, DyadAssignment};
pub use duplexity_cpu::designs::{Design, DesignMetrics};
pub use duplexity_net::{Event, EventKind, EventSource, FaultPlan, LatencyDist, RetryPolicy};
pub use duplexity_obs::{
    chrome_trace_json, PoolReport, Registry, TraceEvent, TraceLog, Tracer, WorkerLoad,
};
pub use duplexity_queueing::cluster::{BalancerPolicy, DupMode, DuplicationPolicy};
pub use duplexity_queueing::rack::{Coordination, RackPlan, StealPolicy};
pub use duplexity_workloads::Workload;
pub use exec::ExecPool;
pub use experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions, ClusterSweepPoint};
pub use experiments::fault_sweep::{
    default_policies, fault_sweep, FaultPolicy, FaultSweepOptions, FaultSweepPoint,
};
pub use experiments::fig5::{run_fig5, run_fig5_traced, Fig5Options, Fig5Run, TraceConfig};
pub use experiments::hedge_sweep::{hedge_sweep, HedgeSweepOptions, HedgeSweepPoint};
pub use experiments::rack_sweep::{rack_sweep, RackSweepOptions, RackSweepPoint};
pub use experiments::timeline::{timeline, Timeline, TimelineCell, TimelineOptions};
pub use scheduler::{
    provision_dyad_adaptively, recommend_contexts, AdaptiveProvisioner, LiveProvisionSchedule,
    ProvisionerConfig,
};
pub use server::{CustomSim, ServerSim};
