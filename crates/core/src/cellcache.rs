//! Content-addressed, on-disk cache for simulation-cell results.
//!
//! Every experiment grid in this workspace is a pure function of its
//! options: a cell's output is fully determined by `(options, seed,
//! coordinates)`, never by the worker count, wall-clock, or host. That
//! purity is what the determinism test suite enforces — and it is exactly
//! the property a content-addressed cache needs. This module turns it
//! into an incremental-re-run substrate: each driver digests every grid
//! cell's inputs into a stable [`CellKey`], probes the cache *before*
//! building its [`ExecPool`](crate::exec::ExecPool) work list, flattens
//! only the misses into the pool, writes fresh results back, and
//! reassembles in grid order. Cold, warm, and mixed runs therefore
//! produce byte-identical artifacts at any worker count.
//!
//! ## Keying contract
//!
//! A [`CellKey`] is an FNV-1a-128 digest over a canonical field-by-field
//! encoding (the [`Digest`] trait): every field contributes its name, a
//! type tag, and its exact value bytes (`f64` via [`f64::to_bits`], so
//! `-0.0`, `inf`, and NaN payloads are all distinct), every struct
//! contributes a per-struct tag, and every key folds in
//! [`CACHE_SCHEMA_VERSION`] plus the driver's name. Changing any digested
//! option, any coordinate, the seed, or the cache format therefore
//! changes the key; two runs that share a key share a result.
//!
//! Deliberately **excluded** from every digest, mirroring the
//! [`RunManifest`](duplexity_obs::RunManifest) requested-inputs-only
//! rule: resolved worker-thread counts (results are bit-identical for
//! every value) and anything wall-clock. Also excluded: the template
//! [`Mg1Options::seed`], which every driver overwrites with a per-cell
//! stream derived from the experiment seed.
//!
//! ## Storage contract
//!
//! One file per key under the cache directory (`--cache <dir>` or
//! `DUPLEXITY_CACHE`; default off), written atomically via
//! tmp-write+rename so a crashed or concurrent run can never publish a
//! torn entry. Each file carries a versioned envelope (magic line, key
//! echo, payload byte length); a corrupt, truncated, or
//! version-mismatched entry degrades to a miss with a stderr warning
//! (gated behind the verbose `DUPLEXITY_LOG` level, like all obs
//! bookkeeping) — the cache can make a run faster, never wrong. There is
//! no eviction:
//! entries are invalidated by *keying* (stale keys are simply never
//! probed again), and the directory can be deleted wholesale at any
//! time.
//!
//! Cache-hit counters ([`CellCache::registry`]) are observability, like
//! [`PoolReport`](duplexity_obs::PoolReport) wall-clock data: they are
//! reported to stderr / bench JSON but never folded into deterministic
//! artifacts, because a warm run's counters differ from a cold run's.

use duplexity_cpu::designs::{Design, Stepping};
use duplexity_net::{FaultPlan, RetryPolicy};
use duplexity_obs::logx::log_verbose;
use duplexity_obs::Registry;
use duplexity_queueing::cluster::{BalancerPolicy, ClusterEngine, DupMode, DuplicationPolicy};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::eventcore::EventQueueKind;
use duplexity_queueing::rack::{Coordination, RackPlan, StealPolicy};
use duplexity_workloads::Workload;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version of the on-disk entry format *and* of the digest schema. Bump
/// whenever the envelope layout, a payload encoding, or the canonical
/// digest of any option struct changes; old entries then miss (by key,
/// and by envelope check for entries probed under the old scheme).
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Magic first line of every cache entry.
const MAGIC: &str = "duplexity-cell";

/// Environment variable naming the cache directory when `--cache` is not
/// given.
pub const CACHE_ENV: &str = "DUPLEXITY_CACHE";

/// One corrupt/stale/unwritable-entry warning on stderr, gated behind the
/// verbose `DUPLEXITY_LOG` level so 8-worker sweeps do not interleave
/// garbage by default. Never stdout, never artifacts: a warning can
/// change nothing but a miss counter.
fn cache_warn(msg: std::fmt::Arguments<'_>) {
    if log_verbose() {
        eprintln!("[duplexity] cellcache: {msg}");
    }
}

// FNV-1a, 128-bit variant (offset basis and prime per the FNV spec).
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Canonical field-by-field hasher behind [`CellKey`]s.
///
/// Each helper folds the field *name*, a one-byte type tag, and the
/// exact value bytes, so reordering fields, renaming them, or moving a
/// value between types all change the digest.
#[derive(Debug, Clone)]
pub struct DigestWriter {
    state: u128,
}

impl Default for DigestWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestWriter {
    /// A fresh writer folding in the schema version.
    #[must_use]
    pub fn new() -> Self {
        let mut w = Self { state: FNV_OFFSET };
        w.absorb(b"schema");
        w.absorb(&CACHE_SCHEMA_VERSION.to_le_bytes());
        w
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        // Length-delimit every absorbed chunk so ("ab","c") never
        // collides with ("a","bc").
        self.state ^= bytes.len() as u128;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a per-struct tag (call once at the top of every
    /// [`Digest::digest`] impl).
    pub fn tag(&mut self, tag: &str) {
        self.absorb(b"#");
        self.absorb(tag.as_bytes());
    }

    /// Folds a `u64` field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.absorb(name.as_bytes());
        self.absorb(b"u");
        self.absorb(&v.to_le_bytes());
    }

    /// Folds a `usize` field.
    pub fn field_usize(&mut self, name: &str, v: usize) {
        self.field_u64(name, v as u64);
    }

    /// Folds an `f64` field by its exact bit pattern.
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.absorb(name.as_bytes());
        self.absorb(b"f");
        self.absorb(&v.to_bits().to_le_bytes());
    }

    /// Folds a `bool` field.
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.absorb(name.as_bytes());
        self.absorb(b"b");
        self.absorb(&[u8::from(v)]);
    }

    /// Folds a string field.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.absorb(name.as_bytes());
        self.absorb(b"s");
        self.absorb(v.as_bytes());
    }

    /// Folds a nested [`Digest`] field.
    pub fn field(&mut self, name: &str, v: &impl Digest) {
        self.absorb(name.as_bytes());
        self.absorb(b"{");
        v.digest(self);
        self.absorb(b"}");
    }

    fn hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// Canonical, schema-versioned hashing of a value's identity-relevant
/// fields into a [`DigestWriter`].
pub trait Digest {
    /// Folds `self` into `w` (start with [`DigestWriter::tag`]).
    fn digest(&self, w: &mut DigestWriter);
}

/// The content address of one simulation cell: 32 hex digits of
/// FNV-1a-128 over the schema version, the driver name, and every
/// digested input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    hex: String,
}

impl CellKey {
    /// Builds a key for `driver` from the fields folded by `f`.
    #[must_use]
    pub fn build(driver: &str, f: impl FnOnce(&mut DigestWriter)) -> Self {
        let mut w = DigestWriter::new();
        w.field_str("driver", driver);
        f(&mut w);
        Self { hex: w.hex() }
    }

    /// The 32-hex-digit digest (also the entry's file stem).
    #[must_use]
    pub fn hex(&self) -> &str {
        &self.hex
    }
}

/// One digest over an ordered list of cell keys — the grid's identity,
/// recorded in each artifact's `RunManifest` sidecar as `cache_digest`.
/// A pure function of the run's requested inputs (cold and warm runs
/// agree), and any change to any cell's key changes it.
#[must_use]
pub fn digest_of_digests(keys: &[CellKey]) -> String {
    let mut w = DigestWriter::new();
    w.tag("grid");
    w.field_usize("cells", keys.len());
    for k in keys {
        w.field_str("cell", k.hex());
    }
    w.hex()
}

/// Hit/miss/byte counters shared by every clone of a [`CellCache`].
#[derive(Debug, Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A content-addressed, on-disk store of simulation-cell payloads.
///
/// Cloning is cheap and clones share their counters, so a cache can ride
/// inside several drivers' option structs while the caller reads one
/// combined hit/miss tally at the end. All methods degrade gracefully:
/// an unreadable entry is a miss, an unwritable store is a warning —
/// the cache is an accelerator, never a correctness dependency.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
    stats: Arc<CacheStats>,
}

impl CellCache {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            stats: Arc::default(),
        }
    }

    /// The cache from the `DUPLEXITY_CACHE` environment variable, if set
    /// and non-empty.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var(CACHE_ENV) {
            Ok(dir) if !dir.is_empty() => Some(Self::new(dir)),
            _ => None,
        }
    }

    /// Resolves the cache from an explicit `--cache` value, falling back
    /// to the environment; `None` disables caching (the default).
    #[must_use]
    pub fn resolve(flag: Option<&str>) -> Option<Self> {
        match flag {
            Some(dir) if !dir.is_empty() => Some(Self::new(dir)),
            _ => Self::from_env(),
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CellKey) -> PathBuf {
        self.dir.join(format!("{}.cell", key.hex()))
    }

    /// Loads the payload stored under `key`, or `None` on a miss. Any
    /// malformed entry — wrong magic, stale version, key mismatch (a
    /// digest collision or a renamed file), or truncated payload — is a
    /// miss with a stderr warning; a simply absent entry is a quiet miss.
    #[must_use]
    pub fn load(&self, key: &CellKey) -> Option<String> {
        let path = self.entry_path(key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(e) => {
                cache_warn(format_args!(
                    "unreadable entry {}: {e} (miss)",
                    path.display()
                ));
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_envelope(&raw, key) {
            Ok(payload) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(raw.len() as u64, Ordering::Relaxed);
                Some(payload)
            }
            Err(why) => {
                cache_warn(format_args!("{why} in {} (miss)", path.display()));
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probes every key, decoding hits with `decode`; slot `i` of the
    /// result is `Some` iff key `i` hit *and* decoded. A payload that
    /// fails to decode (schema drift without a version bump) demotes to
    /// a miss with a warning rather than an error.
    #[must_use]
    pub fn probe<T>(&self, keys: &[CellKey], decode: impl Fn(&str) -> Option<T>) -> Vec<Option<T>> {
        keys.iter()
            .map(|key| {
                let payload = self.load(key)?;
                let decoded = decode(&payload);
                if decoded.is_none() {
                    cache_warn(format_args!(
                        "undecodable payload for {} (miss)",
                        self.entry_path(key).display()
                    ));
                    // Reclassify the envelope-level hit.
                    self.stats.hits.fetch_sub(1, Ordering::Relaxed);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                }
                decoded
            })
            .collect()
    }

    /// Stores `payload` under `key` atomically (tmp-write + rename).
    /// Failures warn and continue: an unwritable cache never fails a run.
    pub fn store(&self, key: &CellKey, payload: &str) {
        let entry = envelope(key, payload);
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            cache_warn(format_args!("cannot create {}: {e}", self.dir.display()));
            return;
        }
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{}", key.hex(), std::process::id()));
        let path = self.entry_path(key);
        let res = std::fs::write(&tmp, &entry).and_then(|()| std::fs::rename(&tmp, &path));
        match res {
            Ok(()) => {
                self.stats
                    .bytes_written
                    .fetch_add(entry.len() as u64, Ordering::Relaxed);
            }
            Err(e) => {
                cache_warn(format_args!("cannot write {}: {e}", path.display()));
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Cache hits so far (across every clone).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (across every clone).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    /// Envelope bytes read on hits.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.stats.bytes_read.load(Ordering::Relaxed)
    }

    /// Envelope bytes written on stores.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.stats.bytes_written.load(Ordering::Relaxed)
    }

    /// The counters as a [`Registry`] (`cache/hits`, `cache/misses`,
    /// `cache/bytes_read`, `cache/bytes_written`). Observability only:
    /// a warm run's counters differ from a cold run's, so — like
    /// wall-clock pool reports — they must never be folded into a
    /// deterministic artifact.
    #[must_use]
    pub fn registry(&self) -> Registry {
        let mut r = Registry::default();
        r.incr("cache/hits", self.hits());
        r.incr("cache/misses", self.misses());
        r.incr("cache/bytes_read", self.bytes_read());
        r.incr("cache/bytes_written", self.bytes_written());
        r
    }

    /// One stderr-ready summary line.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "cellcache: {} hits, {} misses, {} bytes read, {} bytes written ({})",
            self.hits(),
            self.misses(),
            self.bytes_read(),
            self.bytes_written(),
            self.dir.display()
        )
    }
}

fn envelope(key: &CellKey, payload: &str) -> String {
    format!(
        "{MAGIC} v{CACHE_SCHEMA_VERSION}\nkey {}\nlen {}\n{payload}",
        key.hex(),
        payload.len()
    )
}

fn parse_envelope(raw: &str, key: &CellKey) -> Result<String, String> {
    let mut rest = raw;
    let mut line = |what: &str| -> Result<&str, String> {
        let (l, r) = rest
            .split_once('\n')
            .ok_or_else(|| format!("truncated envelope ({what} line missing)"))?;
        rest = r;
        Ok(l)
    };
    let magic = line("magic")?;
    let expected = format!("{MAGIC} v{CACHE_SCHEMA_VERSION}");
    if magic != expected {
        return Err(format!(
            "version/magic mismatch (found {magic:?}, want {expected:?})"
        ));
    }
    let key_line = line("key")?;
    if key_line != format!("key {}", key.hex()) {
        return Err(format!("key mismatch ({key_line:?})"));
    }
    let len_line = line("len")?;
    let len: usize = len_line
        .strip_prefix("len ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("malformed length line ({len_line:?})"))?;
    if rest.len() != len {
        return Err(format!(
            "truncated payload ({} bytes, envelope says {len})",
            rest.len()
        ));
    }
    Ok(rest.to_string())
}

/// Merges cached hits and freshly computed misses back into grid order:
/// `fresh[j]` fills the `j`-th `None` slot of `hits`.
///
/// # Panics
///
/// Panics if `fresh` does not have exactly one element per `None` slot.
#[must_use]
pub fn assemble<T>(hits: Vec<Option<T>>, fresh: Vec<T>) -> Vec<T> {
    let mut fresh = fresh.into_iter();
    let out: Vec<T> = hits
        .into_iter()
        .map(|slot| match slot {
            Some(v) => v,
            None => fresh.next().expect("one fresh result per miss"),
        })
        .collect();
    assert!(fresh.next().is_none(), "more fresh results than misses");
    out
}

/// Indices of the miss slots of a probe result, in grid order.
#[must_use]
pub fn miss_indices<T>(hits: &[Option<T>]) -> Vec<usize> {
    hits.iter()
        .enumerate()
        .filter(|(_, h)| h.is_none())
        .map(|(i, _)| i)
        .collect()
}

// ---------------------------------------------------------------------------
// Bit-exact payload encoding.
//
// The workspace's JSON layer deliberately renders non-finite floats as
// `null` (fine for exports, lossy for round-trips) — and saturated cells
// carry `inf` tails. Cache payloads therefore use a trivial line-based
// `key value` encoding with `f64` as the hex of `to_bits()`: bitwise
// round-trips for every value, including ±inf and -0.0.
// ---------------------------------------------------------------------------

/// Writes a cache payload: one `name value` line per field, `f64`s as
/// bit-pattern hex.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: String,
}

impl PayloadWriter {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn line(&mut self, name: &str, value: &str) {
        debug_assert!(!name.contains([' ', '\n']), "payload name {name:?}");
        debug_assert!(!value.contains('\n'), "payload value {value:?}");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(value);
        self.buf.push('\n');
    }

    /// Writes a `u64` field.
    pub fn u64(&mut self, name: &str, v: u64) {
        self.line(name, &v.to_string());
    }

    /// Writes a `usize` field.
    pub fn usize(&mut self, name: &str, v: usize) {
        self.line(name, &v.to_string());
    }

    /// Writes a `bool` field.
    pub fn bool(&mut self, name: &str, v: bool) {
        self.line(name, if v { "1" } else { "0" });
    }

    /// Writes an `f64` field as 16 hex digits of its bit pattern.
    pub fn f64(&mut self, name: &str, v: f64) {
        self.line(name, &format!("{:016x}", v.to_bits()));
    }

    /// Writes a string field (single line; the value may contain spaces).
    pub fn str(&mut self, name: &str, v: &str) {
        self.line(name, v);
    }

    /// The payload text.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Strict sequential reader for [`PayloadWriter`] output: fields must be
/// read back in exactly the order they were written (any drift returns
/// `None`, which the cache treats as a miss).
#[derive(Debug)]
pub struct PayloadReader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `payload`.
    #[must_use]
    pub fn new(payload: &'a str) -> Self {
        Self {
            lines: payload.lines(),
        }
    }

    fn next(&mut self, name: &str) -> Option<&'a str> {
        let line = self.lines.next()?;
        let (n, v) = line.split_once(' ')?;
        (n == name).then_some(v)
    }

    /// Reads back a `u64` field.
    pub fn u64(&mut self, name: &str) -> Option<u64> {
        self.next(name)?.parse().ok()
    }

    /// Reads back a `usize` field.
    pub fn usize(&mut self, name: &str) -> Option<usize> {
        self.next(name)?.parse().ok()
    }

    /// Reads back a `bool` field.
    pub fn bool(&mut self, name: &str) -> Option<bool> {
        match self.next(name)? {
            "1" => Some(true),
            "0" => Some(false),
            _ => None,
        }
    }

    /// Reads back an `f64` field bit-exactly.
    pub fn f64(&mut self, name: &str) -> Option<f64> {
        let bits = u64::from_str_radix(self.next(name)?, 16).ok()?;
        Some(f64::from_bits(bits))
    }

    /// Reads back a string field.
    pub fn str(&mut self, name: &str) -> Option<&'a str> {
        self.next(name)
    }

    /// True when every line has been consumed (call last: trailing
    /// garbage means schema drift and should demote to a miss).
    pub fn done(&mut self) -> bool {
        self.lines.next().is_none()
    }
}

// ---------------------------------------------------------------------------
// Digest impls for the shared option vocabulary. Coordinate-only enums
// digest their stable names; parameterized structs digest every
// result-relevant field.
// ---------------------------------------------------------------------------

impl Digest for Workload {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("workload");
        w.field_str("name", self.name());
    }
}

impl Digest for Design {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("design");
        w.field_str("name", self.name());
    }
}

impl Digest for Stepping {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("stepping");
        w.field_str(
            "kind",
            match self {
                Stepping::Naive => "naive",
                Stepping::FastForward => "fast_forward",
            },
        );
    }
}

impl Digest for RetryPolicy {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("retry_policy");
        w.field_u64("max_attempts", u64::from(self.max_attempts));
        w.field_f64("timeout_us", self.timeout_us);
        w.field_f64("backoff_base_us", self.backoff_base_us);
        w.field_f64("backoff_cap_us", self.backoff_cap_us);
    }
}

impl Digest for FaultPlan {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("fault_plan");
        w.field_f64("drop_prob", self.drop_prob);
        w.field("retry", &self.retry);
        w.field_bool("duplicate", self.duplicate);
        w.field_f64("slow_prob", self.slow_prob);
        w.field_f64("slow_factor", self.slow_factor);
    }
}

impl Digest for Mg1Options {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("mg1_options");
        w.field_f64("quantile", self.quantile);
        w.field_f64("confidence", self.confidence);
        w.field_f64("max_relative_error", self.max_relative_error);
        w.field_usize("warmup", self.warmup);
        w.field_usize("max_samples", self.max_samples);
        w.field_usize("check_every", self.check_every);
        // `seed` is deliberately excluded: every driver overwrites it
        // with a per-cell stream derived from the experiment seed, so
        // the template value never reaches a simulation.
    }
}

impl Digest for BalancerPolicy {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("balancer_policy");
        // The Display name is injective over the variants (PowerOfD
        // embeds its probe count).
        w.field_str("name", &self.to_string());
    }
}

impl Digest for DupMode {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("dup_mode");
        match self {
            DupMode::None => w.field_str("kind", "none"),
            DupMode::Duplicate { copies } => {
                w.field_str("kind", "duplicate");
                w.field_usize("copies", *copies);
            }
            DupMode::Hedge { deadline_us } => {
                w.field_str("kind", "hedge");
                w.field_f64("deadline_us", *deadline_us);
            }
        }
    }
}

impl Digest for DuplicationPolicy {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("duplication_policy");
        w.field("mode", &self.mode);
        w.field_bool("purge", self.purge);
        w.field_bool("low_priority", self.low_priority);
    }
}

impl Digest for EventQueueKind {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("event_queue_kind");
        w.field_str("name", self.name());
    }
}

impl Digest for ClusterEngine {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("cluster_engine");
        match self {
            ClusterEngine::Lindley => w.field_str("kind", "lindley"),
            ClusterEngine::Event(kind) => {
                w.field_str("kind", "event");
                w.field("queue", kind);
            }
        }
    }
}

impl Digest for Coordination {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("coordination");
        // The label is injective over the variants (`central` / `dist{k}`).
        w.field_str("name", &self.label());
    }
}

impl Digest for StealPolicy {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("steal_policy");
        w.field_usize("probes", self.probes);
        w.field_u64("min_queue", u64::from(self.min_queue));
    }
}

impl Digest for RackPlan {
    fn digest(&self, w: &mut DigestWriter) {
        w.tag("rack_plan");
        w.field("coordination", &self.coordination);
        w.field_f64("delta_us", self.delta_us);
        w.field("steal", &self.steal);
        w.field_usize("tenants", self.tenants);
        w.field_f64("skew", self.skew);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "duplexity-cellcache-test-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> CellKey {
        CellKey::build("test", |w| w.field_u64("n", n))
    }

    #[test]
    fn keys_are_stable_and_field_sensitive() {
        assert_eq!(key(1), key(1));
        assert_ne!(key(1), key(2));
        assert_ne!(
            CellKey::build("a", |w| w.field_u64("n", 1)),
            CellKey::build("b", |w| w.field_u64("n", 1)),
        );
        assert_ne!(
            CellKey::build("t", |w| w.field_u64("x", 1)),
            CellKey::build("t", |w| w.field_u64("y", 1)),
            "field names must participate in the digest"
        );
        assert_ne!(
            CellKey::build("t", |w| w.field_f64("x", 0.0)),
            CellKey::build("t", |w| w.field_f64("x", -0.0)),
            "f64 digests are bit-exact"
        );
        assert_eq!(key(7).hex().len(), 32);
        assert!(key(7).hex().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = CellCache::new(tmp_dir("roundtrip"));
        let k = key(3);
        assert_eq!(cache.load(&k), None);
        cache.store(&k, "a 1\nb 2\n");
        assert_eq!(cache.load(&k).as_deref(), Some("a 1\nb 2\n"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(cache.bytes_written() > 0 && cache.bytes_read() > 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_truncated_and_stale_entries_degrade_to_misses() {
        let cache = CellCache::new(tmp_dir("corrupt"));
        let k = key(9);
        cache.store(&k, "x 42\n");
        let path = cache.dir().join(format!("{}.cell", k.hex()));

        // Truncation.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        assert_eq!(cache.load(&k), None);

        // Stale version.
        std::fs::write(&path, full.replacen("-cell v", "-cell v9", 1)).unwrap();
        assert_eq!(cache.load(&k), None);

        // Arbitrary corruption.
        std::fs::write(&path, "not a cache entry").unwrap();
        assert_eq!(cache.load(&k), None);

        // Repair by re-storing.
        cache.store(&k, "x 42\n");
        assert_eq!(cache.load(&k).as_deref(), Some("x 42\n"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn payload_round_trips_bit_exactly() {
        let mut w = PayloadWriter::new();
        w.f64("inf", f64::INFINITY);
        w.f64("ninf", f64::NEG_INFINITY);
        w.f64("neg0", -0.0);
        w.f64("pi", std::f64::consts::PI);
        w.u64("n", u64::MAX);
        w.bool("t", true);
        w.str("s", "power_of_2 with spaces");
        let text = w.finish();
        let mut r = PayloadReader::new(&text);
        assert_eq!(r.f64("inf"), Some(f64::INFINITY));
        assert_eq!(r.f64("ninf"), Some(f64::NEG_INFINITY));
        assert_eq!(r.f64("neg0").map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.f64("pi"), Some(std::f64::consts::PI));
        assert_eq!(r.u64("n"), Some(u64::MAX));
        assert_eq!(r.bool("t"), Some(true));
        assert_eq!(r.str("s"), Some("power_of_2 with spaces"));
        assert!(r.done());
    }

    #[test]
    fn reader_rejects_reordered_or_trailing_fields() {
        let mut w = PayloadWriter::new();
        w.u64("a", 1);
        w.u64("b", 2);
        let text = w.finish();
        let mut r = PayloadReader::new(&text);
        assert_eq!(r.u64("b"), None, "out-of-order read must fail");
        let mut r = PayloadReader::new(&text);
        assert_eq!(r.u64("a"), Some(1));
        assert!(!r.done(), "unconsumed fields must be detected");
    }

    #[test]
    fn assemble_interleaves_hits_and_misses() {
        let hits = vec![Some(10), None, Some(30), None];
        assert_eq!(miss_indices(&hits), vec![1, 3]);
        assert_eq!(assemble(hits, vec![20, 40]), vec![10, 20, 30, 40]);
    }

    #[test]
    fn digest_of_digests_tracks_every_cell() {
        let a = digest_of_digests(&[key(1), key(2)]);
        assert_eq!(a, digest_of_digests(&[key(1), key(2)]));
        assert_ne!(a, digest_of_digests(&[key(2), key(1)]), "order matters");
        assert_ne!(a, digest_of_digests(&[key(1)]));
    }
}
